/**
 * @file
 * Minimal leveled logging.
 *
 * The library is quiet by default (kWarn); benches and examples can raise
 * verbosity to trace placement decisions and per-layer timing.  Output goes
 * to stderr so bench stdout stays machine-parseable.
 */
#ifndef HELM_COMMON_LOG_H
#define HELM_COMMON_LOG_H

#include <sstream>
#include <string>

namespace helm {

enum class LogLevel
{
    kTrace = 0,
    kDebug = 1,
    kInfo = 2,
    kWarn = 3,
    kError = 4,
    kOff = 5,
};

/** Global log threshold; messages below it are dropped. */
LogLevel log_level();
void set_log_level(LogLevel level);

/** Parse "trace"/"debug"/"info"/"warn"/"error"/"off"; defaults to kWarn. */
LogLevel parse_log_level(const std::string &name);

namespace detail {
void log_emit(LogLevel level, const char *file, int line,
              const std::string &message);
} // namespace detail

/**
 * Stream-style log statement: HELM_LOG(kInfo) << "x = " << x;
 * The message is only formatted when the level is enabled.
 */
#define HELM_LOG(level)                                                     \
    for (bool helm_log_once_ =                                              \
             (::helm::LogLevel::level >= ::helm::log_level());              \
         helm_log_once_; helm_log_once_ = false)                            \
    ::helm::detail::LogLine(::helm::LogLevel::level, __FILE__, __LINE__)

namespace detail {

/** Accumulates one log line and emits it on destruction. */
class LogLine
{
  public:
    LogLine(LogLevel level, const char *file, int line)
        : level_(level), file_(file), line_(line)
    {}

    ~LogLine() { log_emit(level_, file_, line_, stream_.str()); }

    LogLine(const LogLine &) = delete;
    LogLine &operator=(const LogLine &) = delete;

    template <typename T>
    LogLine &
    operator<<(const T &value)
    {
        stream_ << value;
        return *this;
    }

  private:
    LogLevel level_;
    const char *file_;
    int line_;
    std::ostringstream stream_;
};

} // namespace detail
} // namespace helm

#endif // HELM_COMMON_LOG_H
