#include "common/args.h"

#include <cstdlib>
#include <sstream>

namespace helm {

ArgParser::ArgParser(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description))
{
}

void
ArgParser::add_option(const std::string &name,
                      const std::string &description,
                      const std::string &default_value)
{
    HELM_ASSERT(options_.find(name) == options_.end(),
                "duplicate option declaration");
    Option opt;
    opt.description = description;
    opt.default_value = default_value;
    opt.value = default_value;
    options_.emplace(name, std::move(opt));
    order_.push_back(name);
}

void
ArgParser::add_switch(const std::string &name,
                      const std::string &description)
{
    HELM_ASSERT(options_.find(name) == options_.end(),
                "duplicate option declaration");
    Option opt;
    opt.description = description;
    opt.is_switch = true;
    options_.emplace(name, std::move(opt));
    order_.push_back(name);
}

Status
ArgParser::parse(int argc, const char *const *argv)
{
    std::vector<std::string> args;
    for (int i = 1; i < argc; ++i)
        args.emplace_back(argv[i]);
    return parse(args);
}

Status
ArgParser::parse(const std::vector<std::string> &args)
{
    for (std::size_t i = 0; i < args.size(); ++i) {
        const std::string &arg = args[i];
        if (arg.rfind("--", 0) != 0) {
            positionals_.push_back(arg);
            continue;
        }
        std::string name = arg.substr(2);
        std::string inline_value;
        bool has_inline = false;
        const std::size_t eq = name.find('=');
        if (eq != std::string::npos) {
            inline_value = name.substr(eq + 1);
            name = name.substr(0, eq);
            has_inline = true;
        }
        auto it = options_.find(name);
        if (it == options_.end())
            return Status::invalid_argument("unknown flag --" + name);
        Option &opt = it->second;
        opt.set = true;
        if (opt.is_switch) {
            if (has_inline) {
                return Status::invalid_argument(
                    "switch --" + name + " takes no value");
            }
            opt.value = "true";
            continue;
        }
        if (has_inline) {
            opt.value = inline_value;
        } else {
            if (i + 1 >= args.size()) {
                return Status::invalid_argument("flag --" + name +
                                                " needs a value");
            }
            opt.value = args[++i];
        }
    }
    return Status::ok();
}

std::string
ArgParser::get(const std::string &name) const
{
    auto it = options_.find(name);
    HELM_ASSERT(it != options_.end(), "undeclared option queried");
    return it->second.value;
}

bool
ArgParser::is_set(const std::string &name) const
{
    auto it = options_.find(name);
    HELM_ASSERT(it != options_.end(), "undeclared option queried");
    return it->second.set;
}

std::uint64_t
ArgParser::get_u64(const std::string &name) const
{
    const std::string value = get(name);
    char *end = nullptr;
    const unsigned long long parsed =
        std::strtoull(value.c_str(), &end, 10);
    if (end == value.c_str() || *end != '\0')
        return 0;
    return parsed;
}

double
ArgParser::get_double(const std::string &name) const
{
    const std::string value = get(name);
    char *end = nullptr;
    const double parsed = std::strtod(value.c_str(), &end);
    if (end == value.c_str())
        return 0.0;
    return parsed;
}

std::string
ArgParser::help() const
{
    std::ostringstream out;
    out << program_ << " — " << description_ << "\n\noptions:\n";
    for (const std::string &name : order_) {
        const Option &opt = options_.at(name);
        out << "  --" << name;
        if (!opt.is_switch) {
            out << " <value>";
            if (!opt.default_value.empty())
                out << " (default: " << opt.default_value << ")";
        }
        out << "\n      " << opt.description << "\n";
    }
    return out.str();
}

} // namespace helm
