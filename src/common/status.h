/**
 * @file
 * Lightweight Status / Result<T> error-propagation types.
 *
 * helm-sim is a library first: invalid user input (a policy that does not
 * sum to 100 %, a batch that cannot fit on the GPU) must be reportable
 * without aborting the process.  Status carries an error code and message;
 * Result<T> couples a Status with a value.  Programming errors (broken
 * invariants inside the simulator) still use HELM_ASSERT, mirroring the
 * gem5 fatal()/panic() split.
 */
#ifndef HELM_COMMON_STATUS_H
#define HELM_COMMON_STATUS_H

#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <utility>

namespace helm {

/** Error categories for Status. */
enum class StatusCode
{
    kOk = 0,
    kInvalidArgument,   //!< caller supplied bad input
    kOutOfRange,        //!< index/percentage outside the legal range
    kCapacityExceeded,  //!< requested allocation exceeds a device capacity
    kFailedPrecondition,//!< object not in the right state for the call
    kNotFound,          //!< lookup missed
    kInternal,          //!< invariant violation that was caught gracefully
};

/** Human-readable name of a StatusCode. */
const char *status_code_name(StatusCode code);

/**
 * Outcome of a fallible operation: a code plus an explanatory message.
 */
class Status
{
  public:
    /** Default: success. */
    Status() = default;

    Status(StatusCode code, std::string message)
        : code_(code), message_(std::move(message))
    {}

    static Status ok() { return Status(); }

    static Status
    invalid_argument(std::string msg)
    {
        return Status(StatusCode::kInvalidArgument, std::move(msg));
    }
    static Status
    out_of_range(std::string msg)
    {
        return Status(StatusCode::kOutOfRange, std::move(msg));
    }
    static Status
    capacity_exceeded(std::string msg)
    {
        return Status(StatusCode::kCapacityExceeded, std::move(msg));
    }
    static Status
    failed_precondition(std::string msg)
    {
        return Status(StatusCode::kFailedPrecondition, std::move(msg));
    }
    static Status
    not_found(std::string msg)
    {
        return Status(StatusCode::kNotFound, std::move(msg));
    }
    static Status
    internal(std::string msg)
    {
        return Status(StatusCode::kInternal, std::move(msg));
    }

    bool is_ok() const { return code_ == StatusCode::kOk; }
    StatusCode code() const { return code_; }
    const std::string &message() const { return message_; }

    /** "OK" or "<code>: <message>". */
    std::string to_string() const;

  private:
    StatusCode code_ = StatusCode::kOk;
    std::string message_;
};

/**
 * Value-or-Status.  A deliberately small subset of std::expected (which is
 * C++23) sufficient for this codebase.
 */
template <typename T>
class Result
{
  public:
    /** Implicit from a value: success. */
    Result(T value) : value_(std::move(value)) {}

    /** Implicit from a non-OK status: failure. */
    Result(Status status) : status_(std::move(status))
    {
        if (status_.is_ok()) {
            // A Result built from a Status must describe a failure.
            status_ = Status::internal(
                "Result constructed from OK status without a value");
        }
    }

    bool is_ok() const { return value_.has_value(); }
    explicit operator bool() const { return is_ok(); }

    const Status &status() const { return status_; }

    /** Access the value; asserts on failure results. */
    const T &
    value() const &
    {
        check_has_value();
        return *value_;
    }
    T &
    value() &
    {
        check_has_value();
        return *value_;
    }
    T &&
    value() &&
    {
        check_has_value();
        return std::move(*value_);
    }

    const T &operator*() const & { return value(); }
    T &operator*() & { return value(); }
    const T *operator->() const { return &value(); }
    T *operator->() { return &value(); }

    /** Value if present, otherwise @p fallback. */
    T
    value_or(T fallback) const
    {
        return value_.has_value() ? *value_ : std::move(fallback);
    }

  private:
    void
    check_has_value() const
    {
        if (!value_.has_value()) {
            std::fprintf(stderr,
                         "helm: Result::value() on error result: %s\n",
                         status_.to_string().c_str());
            std::abort();
        }
    }

    std::optional<T> value_;
    Status status_;
};

/**
 * Internal invariant check.  Active in all build types: the simulator's
 * results are meaningless if its invariants do not hold, so we never
 * compile these out.
 */
#define HELM_ASSERT(cond, msg)                                              \
    do {                                                                    \
        if (!(cond)) {                                                      \
            std::fprintf(stderr, "helm: assertion failed at %s:%d: %s\n",   \
                         __FILE__, __LINE__, (msg));                        \
            std::abort();                                                   \
        }                                                                   \
    } while (0)

/** Early-return helper for Status-returning functions. */
#define HELM_RETURN_IF_ERROR(expr)                                          \
    do {                                                                    \
        ::helm::Status helm_status_ = (expr);                               \
        if (!helm_status_.is_ok())                                          \
            return helm_status_;                                            \
    } while (0)

} // namespace helm

#endif // HELM_COMMON_STATUS_H
