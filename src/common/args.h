/**
 * @file
 * Minimal command-line argument parser for the tools and examples.
 *
 * Supports `--name value`, `--name=value`, boolean switches, typed
 * accessors with defaults, positional arguments, and generated help —
 * enough for helmsim's subcommands without an external dependency.
 */
#ifndef HELM_COMMON_ARGS_H
#define HELM_COMMON_ARGS_H

#include <map>
#include <string>
#include <vector>

#include "common/status.h"

namespace helm {

/**
 * Declarative flag set + parser.  Declare options, parse argv, read
 * typed values.  Unknown flags are errors; positionals are collected in
 * order.
 */
class ArgParser
{
  public:
    /**
     * @param program Name shown in help.
     * @param description One-line summary shown in help.
     */
    ArgParser(std::string program, std::string description);

    /** Declare a value option (`--name <value>` / `--name=<value>`). */
    void add_option(const std::string &name,
                    const std::string &description,
                    const std::string &default_value = "");

    /** Declare a boolean switch (`--name`, no value). */
    void add_switch(const std::string &name,
                    const std::string &description);

    /**
     * Parse arguments (argv[0] is skipped).  On failure the parser
     * state is unspecified; report the error and show help().
     */
    Status parse(int argc, const char *const *argv);

    /** Parse from a vector (tests). */
    Status parse(const std::vector<std::string> &args);

    /** Value of an option (its default if never set). */
    std::string get(const std::string &name) const;

    /** True when a switch was given (or an option explicitly set). */
    bool is_set(const std::string &name) const;

    /** Typed accessors; fall back to the default on parse failure. */
    std::uint64_t get_u64(const std::string &name) const;
    double get_double(const std::string &name) const;

    /** Positional arguments, in order. */
    const std::vector<std::string> &positionals() const
    {
        return positionals_;
    }

    /** Rendered usage text. */
    std::string help() const;

  private:
    struct Option
    {
        std::string description;
        std::string value;
        std::string default_value;
        bool is_switch = false;
        bool set = false;
    };

    std::string program_;
    std::string description_;
    std::map<std::string, Option> options_;
    std::vector<std::string> order_; //!< declaration order for help
    std::vector<std::string> positionals_;
};

} // namespace helm

#endif // HELM_COMMON_ARGS_H
