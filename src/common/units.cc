#include "common/units.h"

#include <array>
#include <cstdio>

namespace helm {

namespace {

std::string
format_double(double value, const char *suffix)
{
    char buf[64];
    if (value >= 100.0) {
        std::snprintf(buf, sizeof(buf), "%.0f %s", value, suffix);
    } else if (value >= 10.0) {
        std::snprintf(buf, sizeof(buf), "%.1f %s", value, suffix);
    } else {
        std::snprintf(buf, sizeof(buf), "%.2f %s", value, suffix);
    }
    return buf;
}

} // namespace

std::string
format_bytes(Bytes bytes)
{
    static constexpr std::array<const char *, 5> suffixes = {
        "B", "KiB", "MiB", "GiB", "TiB"};
    double value = static_cast<double>(bytes);
    std::size_t idx = 0;
    while (value >= 1024.0 && idx + 1 < suffixes.size()) {
        value /= 1024.0;
        ++idx;
    }
    if (idx == 0) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%llu B",
                      static_cast<unsigned long long>(bytes));
        return buf;
    }
    return format_double(value, suffixes[idx]);
}

std::string
format_seconds(Seconds s)
{
    if (s < 0.0)
        return "-" + format_seconds(-s);
    if (s < 1e-6)
        return format_double(s * 1e9, "ns");
    if (s < 1e-3)
        return format_double(s * 1e6, "us");
    if (s < 1.0)
        return format_double(s * 1e3, "ms");
    return format_double(s, "s");
}

std::string
format_bandwidth(Bandwidth bw)
{
    double gbps = bw.as_gb_per_s();
    if (gbps < 0.001)
        return format_double(bw.raw() / static_cast<double>(kMB), "MB/s");
    return format_double(gbps, "GB/s");
}

} // namespace helm
