#include "common/summary.h"

#include <algorithm>
#include <cmath>

namespace helm {

Summary
summarize(const std::vector<double> &values)
{
    Summary s;
    if (values.empty())
        return s;
    s.count = values.size();
    s.min = values.front();
    s.max = values.front();
    double sum = 0.0;
    for (double v : values) {
        sum += v;
        s.min = std::min(s.min, v);
        s.max = std::max(s.max, v);
    }
    s.mean = sum / static_cast<double>(s.count);
    double var = 0.0;
    for (double v : values) {
        const double d = v - s.mean;
        var += d * d;
    }
    s.stddev = std::sqrt(var / static_cast<double>(s.count));
    return s;
}

double
mean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double sum = 0.0;
    for (double v : values)
        sum += v;
    return sum / static_cast<double>(values.size());
}

double
mean_discarding_first(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    if (values.size() == 1)
        return values.front();
    double sum = 0.0;
    for (std::size_t i = 1; i < values.size(); ++i)
        sum += values[i];
    return sum / static_cast<double>(values.size() - 1);
}

double
percentile(std::vector<double> values, double p)
{
    if (values.empty())
        return 0.0;
    p = std::clamp(p, 0.0, 100.0);
    std::sort(values.begin(), values.end());
    const double rank = p / 100.0 * static_cast<double>(values.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(rank);
    const std::size_t hi = std::min(lo + 1, values.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return values[lo] + (values[hi] - values[lo]) * frac;
}

double
percentile_nearest_rank(std::vector<double> values, double p)
{
    if (values.empty())
        return 0.0;
    p = std::clamp(p, 0.0, 100.0);
    std::sort(values.begin(), values.end());
    const double exact = p / 100.0 * static_cast<double>(values.size());
    std::size_t rank = static_cast<std::size_t>(std::ceil(exact));
    rank = std::clamp<std::size_t>(rank, 1, values.size());
    return values[rank - 1];
}

double
relative_delta(double a, double b)
{
    return b == 0.0 ? 0.0 : (a - b) / b;
}

} // namespace helm
