#include "common/rng.h"

#include <cmath>

#include "common/status.h"

namespace helm {

namespace {

std::uint64_t
splitmix64(std::uint64_t &state)
{
    state += 0x9E3779B97F4A7C15ull;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t s = seed;
    for (auto &word : state_)
        word = splitmix64(s);
}

std::uint64_t
Rng::next_u64()
{
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
}

std::uint64_t
Rng::next_below(std::uint64_t bound)
{
    HELM_ASSERT(bound > 0, "next_below requires bound > 0");
    // Lemire's nearly-divisionless method.
    std::uint64_t x = next_u64();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    std::uint64_t l = static_cast<std::uint64_t>(m);
    if (l < bound) {
        std::uint64_t t = -bound % bound;
        while (l < t) {
            x = next_u64();
            m = static_cast<__uint128_t>(x) * bound;
            l = static_cast<std::uint64_t>(m);
        }
    }
    return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t
Rng::next_in_range(std::int64_t lo, std::int64_t hi)
{
    HELM_ASSERT(lo <= hi, "next_in_range requires lo <= hi");
    std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    if (span == 0) // full 64-bit range
        return static_cast<std::int64_t>(next_u64());
    return lo + static_cast<std::int64_t>(next_below(span));
}

double
Rng::next_double()
{
    // 53 random mantissa bits -> [0, 1).
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double
Rng::next_gaussian()
{
    if (have_cached_gaussian_) {
        have_cached_gaussian_ = false;
        return cached_gaussian_;
    }
    // Box-Muller; avoid log(0) by nudging u1 away from zero.
    double u1 = next_double();
    double u2 = next_double();
    if (u1 < 1e-300)
        u1 = 1e-300;
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * M_PI * u2;
    cached_gaussian_ = r * std::sin(theta);
    have_cached_gaussian_ = true;
    return r * std::cos(theta);
}

} // namespace helm
