/**
 * @file
 * Strong-ish unit helpers used throughout helm-sim.
 *
 * The simulator deals almost exclusively in three physical quantities:
 * byte counts, time intervals, and bandwidths.  We keep byte counts as
 * unsigned 64-bit integers (sizes are exact) and time/bandwidth as doubles
 * (they are products of a calibrated analytical model).  This header
 * provides conversion constants, parsing, and human-readable formatting so
 * the rest of the code never hand-rolls `1024.0 * 1024.0 * ...`
 * expressions.
 */
#ifndef HELM_COMMON_UNITS_H
#define HELM_COMMON_UNITS_H

#include <cstdint>
#include <string>

namespace helm {

/** Exact byte count. */
using Bytes = std::uint64_t;

/** Time interval in seconds. */
using Seconds = double;

/** Binary (IEC) size constants. */
inline constexpr Bytes kKiB = 1024ull;
inline constexpr Bytes kMiB = 1024ull * kKiB;
inline constexpr Bytes kGiB = 1024ull * kMiB;
inline constexpr Bytes kTiB = 1024ull * kGiB;

/** Decimal (SI) size constants, used for bandwidth denominators. */
inline constexpr Bytes kKB = 1000ull;
inline constexpr Bytes kMB = 1000ull * kKB;
inline constexpr Bytes kGB = 1000ull * kMB;
inline constexpr Bytes kTB = 1000ull * kGB;

/** Time constants. */
inline constexpr Seconds kUsec = 1e-6;
inline constexpr Seconds kMsec = 1e-3;

/**
 * Bandwidth in bytes per second.
 *
 * A tiny value type rather than a bare double so that call sites read
 * `Bandwidth::gb_per_s(28.0)` instead of a magic `28e9`.  All arithmetic
 * needed by the simulator (min/scale/transfer-time) is provided here.
 */
class Bandwidth
{
  public:
    constexpr Bandwidth() = default;

    /** Construct from raw bytes/second. */
    static constexpr Bandwidth
    bytes_per_s(double bps)
    {
        Bandwidth b;
        b.bps_ = bps;
        return b;
    }

    /** Construct from GB/s (decimal, as memory vendors quote). */
    static constexpr Bandwidth
    gb_per_s(double gbps)
    {
        return bytes_per_s(gbps * static_cast<double>(kGB));
    }

    /** Construct from MB/s. */
    static constexpr Bandwidth
    mb_per_s(double mbps)
    {
        return bytes_per_s(mbps * static_cast<double>(kMB));
    }

    constexpr double raw() const { return bps_; }
    constexpr double as_gb_per_s() const { return bps_ / static_cast<double>(kGB); }
    constexpr bool is_zero() const { return bps_ <= 0.0; }

    /** Seconds needed to move @p bytes at this bandwidth. */
    constexpr Seconds
    transfer_time(Bytes bytes) const
    {
        return bps_ > 0.0 ? static_cast<double>(bytes) / bps_ : 0.0;
    }

    /** Scale bandwidth by a unitless factor (efficiency, sharing, ...). */
    constexpr Bandwidth
    scaled(double factor) const
    {
        return bytes_per_s(bps_ * factor);
    }

    friend constexpr bool
    operator==(Bandwidth a, Bandwidth b)
    {
        return a.bps_ == b.bps_;
    }
    friend constexpr bool
    operator<(Bandwidth a, Bandwidth b)
    {
        return a.bps_ < b.bps_;
    }
    friend constexpr bool
    operator>(Bandwidth a, Bandwidth b)
    {
        return a.bps_ > b.bps_;
    }
    friend constexpr bool
    operator<=(Bandwidth a, Bandwidth b)
    {
        return a.bps_ <= b.bps_;
    }
    friend constexpr bool
    operator>=(Bandwidth a, Bandwidth b)
    {
        return a.bps_ >= b.bps_;
    }

  private:
    double bps_ = 0.0;
};

/** Slower of two links in series (e.g. host memory feeding PCIe). */
constexpr Bandwidth
min_bw(Bandwidth a, Bandwidth b)
{
    return a < b ? a : b;
}

/** Faster of two links. */
constexpr Bandwidth
max_bw(Bandwidth a, Bandwidth b)
{
    return a > b ? a : b;
}

/** Render a byte count as e.g. "3.38 GiB" / "47.98 MiB" / "512 B". */
std::string format_bytes(Bytes bytes);

/** Render a time as e.g. "12.4 ms" / "3.1 s" / "830 us". */
std::string format_seconds(Seconds s);

/** Render a bandwidth as e.g. "24.53 GB/s". */
std::string format_bandwidth(Bandwidth bw);

} // namespace helm

#endif // HELM_COMMON_UNITS_H
