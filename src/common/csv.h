/**
 * @file
 * CSV emission for bench output.
 *
 * Every paper-reproduction bench prints a human-readable table plus an
 * optional machine-readable CSV block so the figures can be re-plotted.
 * CsvWriter handles quoting and enforces a consistent column count.
 */
#ifndef HELM_COMMON_CSV_H
#define HELM_COMMON_CSV_H

#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

namespace helm {

/**
 * Streams rows of comma-separated values with RFC-4180-style quoting.
 * The header row fixes the column count; subsequent rows must match.
 */
class CsvWriter
{
  public:
    /** @param out Sink stream; must outlive the writer. */
    explicit CsvWriter(std::ostream &out) : out_(out) {}

    /** Emit the header row and lock the column count. */
    void header(const std::vector<std::string> &columns);

    /** Emit one data row; column count must match the header. */
    void row(const std::vector<std::string> &values);

    /** Convenience: format doubles with fixed precision then emit. */
    void row_numeric(const std::string &key,
                     const std::vector<double> &values, int precision = 4);

    std::size_t rows_written() const { return rows_; }

    /** Quote a single field if it contains comma/quote/newline. */
    static std::string escape(const std::string &field);

  private:
    void emit(const std::vector<std::string> &values);

    std::ostream &out_;
    std::size_t columns_ = 0;
    std::size_t rows_ = 0;
    bool header_written_ = false;
};

/** Format a double with @p precision digits after the decimal point. */
std::string format_fixed(double value, int precision);

} // namespace helm

#endif // HELM_COMMON_CSV_H
