/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * The workload generator and the property tests need reproducible
 * randomness that is stable across platforms and standard-library
 * versions, so we ship a SplitMix64 seeder plus xoshiro256** rather than
 * relying on std::mt19937's distribution implementations.
 */
#ifndef HELM_COMMON_RNG_H
#define HELM_COMMON_RNG_H

#include <cstdint>

namespace helm {

/**
 * xoshiro256** by Blackman & Vigna: fast, high-quality, 256-bit state.
 * Seeded via SplitMix64 so that any 64-bit seed yields a good state.
 */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

    /** Uniform 64-bit value. */
    std::uint64_t next_u64();

    /** Uniform in [0, bound) without modulo bias (Lemire's method). */
    std::uint64_t next_below(std::uint64_t bound);

    /** Uniform in [lo, hi] inclusive. */
    std::int64_t next_in_range(std::int64_t lo, std::int64_t hi);

    /** Uniform double in [0, 1). */
    double next_double();

    /** Standard normal via Box-Muller (deterministic pairing). */
    double next_gaussian();

  private:
    std::uint64_t state_[4];
    bool have_cached_gaussian_ = false;
    double cached_gaussian_ = 0.0;
};

} // namespace helm

#endif // HELM_COMMON_RNG_H
