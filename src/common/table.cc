#include "common/table.h"

#include <algorithm>
#include <sstream>

namespace helm {

void
AsciiTable::set_header(std::vector<std::string> header)
{
    header_ = std::move(header);
}

void
AsciiTable::add_row(std::vector<std::string> row)
{
    rows_.push_back(std::move(row));
}

void
AsciiTable::align_right(std::size_t index)
{
    if (right_aligned_.size() <= index)
        right_aligned_.resize(index + 1, false);
    right_aligned_[index] = true;
}

void
AsciiTable::align_right_from(std::size_t first_index)
{
    std::size_t cols = header_.size();
    for (const auto &row : rows_)
        cols = std::max(cols, row.size());
    for (std::size_t i = first_index; i < cols; ++i)
        align_right(i);
}

void
AsciiTable::print(std::ostream &out) const
{
    // Compute column widths across header and body.
    std::vector<std::size_t> widths;
    auto grow = [&](const std::vector<std::string> &row) {
        if (widths.size() < row.size())
            widths.resize(row.size(), 0);
        for (std::size_t i = 0; i < row.size(); ++i)
            widths[i] = std::max(widths[i], row[i].size());
    };
    grow(header_);
    for (const auto &row : rows_)
        grow(row);

    auto emit_row = [&](const std::vector<std::string> &row) {
        for (std::size_t i = 0; i < widths.size(); ++i) {
            const std::string cell = i < row.size() ? row[i] : "";
            bool right = i < right_aligned_.size() && right_aligned_[i];
            std::size_t pad = widths[i] - cell.size();
            out << (i ? "  " : "");
            if (right)
                out << std::string(pad, ' ') << cell;
            else
                out << cell << std::string(pad, ' ');
        }
        out << '\n';
    };

    if (!title_.empty())
        out << title_ << '\n';
    if (!header_.empty()) {
        emit_row(header_);
        std::size_t total = 0;
        for (std::size_t w : widths)
            total += w;
        total += widths.empty() ? 0 : 2 * (widths.size() - 1);
        out << std::string(total, '-') << '\n';
    }
    for (const auto &row : rows_)
        emit_row(row);
}

std::string
AsciiTable::to_string() const
{
    std::ostringstream oss;
    print(oss);
    return oss.str();
}

} // namespace helm
