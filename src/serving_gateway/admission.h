/**
 * @file
 * Admission control for the serving gateway: bounded accept queues,
 * session caps, and context budgets, with typed reject reasons.
 *
 * A production front end sheds load *before* it reaches the expensive
 * backends, and the operator needs to know why each request was turned
 * away — a full accept queue (transient overload) calls for different
 * remediation than a context overflow (client misuse) or a backend
 * shed (capacity).  Every rejection therefore carries a RejectReason,
 * counted per reason here and exported as the
 * `helm_gateway_requests_shed_total{reason=...}` metric family.
 */
#ifndef HELM_SERVING_GATEWAY_ADMISSION_H
#define HELM_SERVING_GATEWAY_ADMISSION_H

#include <array>
#include <cstdint>
#include <optional>

#include "common/status.h"

namespace helm::gateway {

/** Why the gateway refused a session or a turn. */
enum class RejectReason
{
    /** The target replica's accept queue was at its bound. */
    kAcceptQueueFull,
    /** Opening the session would exceed the concurrent-session cap. */
    kSessionLimit,
    /** The turn's accumulated context would exceed the context cap. */
    kContextOverflow,
    /** The backend itself shed the dispatched request. */
    kBackendShed,
};

inline constexpr std::size_t kRejectReasonCount = 4;

/** Printable name ("accept_queue_full", ... metric label values). */
const char *reject_reason_name(RejectReason reason);

/** Admission knobs of one gateway. */
struct AdmissionConfig
{
    /** Accepted-but-undispatched turns allowed per replica; arrivals
     *  beyond this are shed (kAcceptQueueFull). */
    std::uint64_t accept_queue = 256;
    /** Concurrently open sessions allowed (kSessionLimit beyond). */
    std::uint64_t max_sessions = 65536;
    /** Per-session context budget in tokens: accumulated prompt +
     *  generated history plus the new turn must fit. */
    std::uint64_t max_context = 4096;
    /**
     * Context growth is rounded up to this many tokens before the
     * budget check and before the backend sees the prompt.  Coarse
     * blocks keep the set of distinct batch shapes small, so the
     * backends' memoized batch simulation stays hot across a
     * million-turn run.
     */
    std::uint64_t context_block = 64;

    /** Field-range checks; errors name the `helmsim gateway` flag. */
    Status validate() const;
};

/**
 * The admission decisions, pure and replica-agnostic: the Gateway asks,
 * this class answers and counts.  Kept separate so the policy is unit
 * testable without simulating a backend.
 */
class AdmissionControl
{
  public:
    explicit AdmissionControl(AdmissionConfig config)
        : config_(config)
    {}

    /** May another session open right now? */
    bool
    admit_session(std::uint64_t active_sessions) const
    {
        return active_sessions < config_.max_sessions;
    }

    /** May a turn join a replica queue this deep? */
    bool
    admit_turn(std::uint64_t replica_queue_depth) const
    {
        return replica_queue_depth < config_.accept_queue;
    }

    /**
     * Charge a new turn against a session's context budget: the
     * backend-visible prompt is (context + new prompt) rounded up to
     * the context block.  nullopt when it would exceed max_context —
     * the caller sheds with kContextOverflow.
     */
    std::optional<std::uint64_t>
    charge_context(std::uint64_t context_tokens,
                   std::uint64_t prompt_tokens) const;

    /** Count one rejection for the stats/metrics export. */
    void
    count_reject(RejectReason reason)
    {
        ++rejects_[static_cast<std::size_t>(reason)];
    }

    /** Rejections by reason, RejectReason declaration order. */
    const std::array<std::uint64_t, kRejectReasonCount> &
    rejects() const
    {
        return rejects_;
    }

    const AdmissionConfig &config() const { return config_; }

  private:
    AdmissionConfig config_;
    std::array<std::uint64_t, kRejectReasonCount> rejects_{};
};

} // namespace helm::gateway

#endif // HELM_SERVING_GATEWAY_ADMISSION_H
