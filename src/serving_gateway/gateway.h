/**
 * @file
 * The serving gateway: sessions, streaming, admission, and routing in
 * front of a set of `runtime::ServingBackend` replicas.
 *
 * The backends are *offline* engines — submit a stream, serve() it to
 * completion, read a report — while clients are *online*: they open
 * sessions, send a turn, watch tokens stream back, think, and send the
 * next turn.  The gateway bridges the two on the DES clock with a
 * dispatch-window model:
 *
 *  1. accepted turns queue per replica (sessions are routed once, at
 *     open, and stay sticky);
 *  2. when a replica is idle and turns are queued, the gateway forms a
 *     dispatch window (up to the replica's batch ceiling), submits it
 *     to the backend with arrival 0, and runs one serve();
 *  3. the report's per-request timings are mapped back onto the
 *     simulation clock — token k of a turn dispatched at time T is
 *     delivered at T + ttft + k*tbt, the turn completes at T + e2e —
 *     and the replica stays busy until T + makespan;
 *  4. each delivery fires the turn's StreamSink, where the closed-loop
 *     driver's clients live.
 *
 * Because the backend memoizes batch simulation by shape and the
 * admission layer rounds context to coarse blocks, a million-turn run
 * pays the engine cost once per distinct window shape and replays it
 * from the memo everywhere else — that is what makes closed-loop
 * million-request driving feasible on one core.
 */
#ifndef HELM_SERVING_GATEWAY_GATEWAY_H
#define HELM_SERVING_GATEWAY_GATEWAY_H

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "common/status.h"
#include "common/units.h"
#include "runtime/backend.h"
#include "serving_gateway/admission.h"
#include "serving_gateway/router.h"
#include "serving_gateway/session.h"
#include "serving_gateway/streaming.h"
#include "sim/simulator.h"

namespace helm::runtime {
struct RequestMetrics;
}

namespace helm::telemetry {
class ServingMonitor;
}

namespace helm::tracing {
class Tracer;
}

namespace helm::gateway {

/** Everything the gateway itself is configured by. */
struct GatewayConfig
{
    AdmissionConfig admission;
    RouterPolicy router = RouterPolicy::kRoundRobin;
    /** Turns per dispatch window; 0 = the replica's effective batch
     *  ceiling. */
    std::uint64_t dispatch_batch = 0;
    /** Deliver every token as its own stream event; false coalesces to
     *  first token + completion (fewer DES events for huge runs —
     *  client-edge TTFT/TBT/E2E metrics are identical). */
    bool per_token_stream = true;

    Status validate() const;
};

/** Aggregate gateway-side accounting (admission rejects live in
 *  AdmissionControl::rejects()). */
struct GatewayStats
{
    std::uint64_t turns_submitted = 0; //!< submit_turn calls
    std::uint64_t turns_accepted = 0;  //!< passed admission
    std::uint64_t turns_completed = 0;
    std::uint64_t turns_shed = 0; //!< all reasons, open + turn rejects
    std::uint64_t tokens_delivered = 0;
    std::uint64_t dispatch_windows = 0; //!< serve() calls
    std::uint64_t backend_batches = 0;  //!< batches formed inside them
    std::uint64_t peak_accept_depth = 0;
    std::vector<std::uint64_t> routed_per_replica;
    std::vector<Seconds> busy_seconds_per_replica;
};

/**
 * Optional observability sinks.  Both pointers may be null (the
 * default — zero overhead, byte-identical output); when set they must
 * outlive the gateway.  The tracer receives one "turn" trace per
 * completed or backend-shed turn; the monitor receives completion,
 * shed, and queue-depth signals on the sim clock.
 */
struct GatewayObservability
{
    tracing::Tracer *tracer = nullptr;
    telemetry::ServingMonitor *monitor = nullptr;
};

/** Outcome of open_session(). */
struct OpenOutcome
{
    SessionId session = kInvalidSession;
    bool admitted = false;
    RejectReason reason = RejectReason::kSessionLimit;
};

/** Outcome of submit_turn(). */
struct SubmitOutcome
{
    TurnId turn = 0;
    bool admitted = false;
    RejectReason reason = RejectReason::kAcceptQueueFull;
};

/**
 * The gateway.  Owns no backends and no simulator — both outlive it —
 * but owns all session/turn state between a client and a replica.
 * All entry points must be called on the simulation clock (i.e. from
 * inside DES callbacks, or before the first sim.run()).
 */
class Gateway
{
  public:
    Gateway(sim::Simulator &sim, GatewayConfig config,
            std::vector<runtime::ServingBackend *> replicas);

    /** Open a session; routes it to a replica when admitted. */
    OpenOutcome open_session();

    /**
     * Submit one turn on an open session.  On acceptance the turn's
     * context-grown prompt is charged against the session budget, the
     * turn joins its replica's queue, and @p sink receives kAccepted
     * now plus the token/completion (or shed) events later.  On
     * rejection only the outcome reports the reason; the sink is not
     * retained.
     */
    SubmitOutcome submit_turn(SessionId session,
                              std::uint64_t prompt_tokens,
                              std::uint64_t output_tokens,
                              StreamSink sink);

    /** Close a session (stale handles are ignored).  In-flight turns
     *  of the session still deliver to their sinks. */
    void close_session(SessionId id);

    const GatewayStats &stats() const { return stats_; }
    const AdmissionControl &admission() const { return admission_; }
    const SessionTable &sessions() const { return sessions_; }
    std::uint32_t replica_count() const
    {
        return static_cast<std::uint32_t>(replicas_.size());
    }

    /** First backend failure, if any; dispatch stops after one. */
    const Status &health() const { return health_; }

    /** Attach tracing / time-series sinks (see GatewayObservability). */
    void set_observability(GatewayObservability obs) { obs_ = obs; }

  private:
    /** One accepted-but-undispatched turn. */
    struct PendingTurn
    {
        TurnId id = 0;
        SessionId session = kInvalidSession;
        std::uint64_t prompt_tokens = 0; //!< context-grown, rounded
        std::uint64_t output_tokens = 0;
        Seconds submitted = 0.0;
        StreamSink sink;
    };

    struct Replica
    {
        runtime::ServingBackend *backend = nullptr;
        std::deque<PendingTurn> queue;
        std::uint64_t window = 1; //!< dispatch-window turn cap
        bool busy = false;
        bool dispatch_scheduled = false;
        std::uint64_t inflight = 0; //!< dispatched, not completed
    };

    /** Shared state of one turn's token-delivery chain. */
    struct DeliveryState;

    /**
     * One turn of a fast-forwarded dispatch window (the step-cache
     * stream path).  Instead of one DES event per token, the whole
     * window schedules one event per *distinct completion time*; that
     * event replays each turn's token stream back-to-back with the
     * exact per-token timestamps the event chain would have produced
     * (StreamEvent::time carries the delivery time, so a sink that
     * reads event times observes a byte-identical stream).  Token
     * callbacks therefore fire while the simulator clock sits at the
     * completion time — sinks must treat kFirstToken/kToken as
     * passive notifications (every in-tree sink does; the closed-loop
     * driver acts only on turn boundaries).  `--no-step-cache`
     * restores true-time per-token delivery.
     */
    struct FastDelivery
    {
        StreamSink sink;
        TurnMetrics metrics;
    };

    /** Arm a time-0 dispatch event for an idle replica with work. */
    void maybe_schedule_dispatch(std::uint32_t r);
    /** Form a window, serve it, and map the report onto the clock. */
    void dispatch(std::uint32_t r);
    /** Client-edge metrics of one dispatched turn (report mapping). */
    TurnMetrics turn_metrics_for(const PendingTurn &turn,
                                 const runtime::RequestMetrics &metrics,
                                 Seconds dispatched) const;
    /** Schedule one turn's token/completion deliveries. */
    void schedule_deliveries(std::uint32_t r, PendingTurn &&turn,
                             const runtime::RequestMetrics &metrics,
                             Seconds dispatched);
    /** Group a window's turns by completion time and schedule one
     *  replay event per distinct time (step-cache stream path). */
    void fast_forward_window(std::uint32_t r,
                             std::vector<FastDelivery> &&batch);
    /** Replay one turn's token stream and retire it (fast path). */
    void replay_turn(std::uint32_t r, FastDelivery &delivery);
    /** Deliver token @p token and chain the next delivery. */
    void deliver_token(std::uint32_t r,
                       const std::shared_ptr<DeliveryState> &state,
                       std::uint64_t token);
    /** Deliver kCompleted and retire the turn. */
    void complete_turn(std::uint32_t r,
                       const std::shared_ptr<DeliveryState> &state);
    /** Emit a shed event (and count it) for a turn or an open. */
    void shed_turn(PendingTurn &&turn, RejectReason reason);
    ReplicaLoad load_of(const Replica &replica) const;
    /** Observability taps (no-ops when obs_ members are null). */
    void observe_completed(std::uint32_t r, const TurnMetrics &metrics);
    void observe_shed(const PendingTurn &turn, RejectReason reason);
    void observe_admission_shed();

    sim::Simulator &sim_;
    GatewayConfig config_;
    AdmissionControl admission_;
    ReplicaRouter router_;
    SessionTable sessions_;
    std::vector<Replica> replicas_;
    GatewayStats stats_;
    GatewayObservability obs_;
    TurnId next_turn_ = 1;
    Status health_ = Status::ok();
};

} // namespace helm::gateway

#endif // HELM_SERVING_GATEWAY_GATEWAY_H
