#include "serving_gateway/router.h"

namespace helm::gateway {

const char *
router_policy_name(RouterPolicy policy)
{
    switch (policy) {
    case RouterPolicy::kRoundRobin:
        return "rr";
    case RouterPolicy::kLeastLoaded:
        return "least";
    case RouterPolicy::kHashAffinity:
        return "hash";
    }
    return "unknown";
}

Result<RouterPolicy>
parse_router_policy(const std::string &name)
{
    if (name == "rr" || name == "round-robin")
        return RouterPolicy::kRoundRobin;
    if (name == "least" || name == "least-loaded")
        return RouterPolicy::kLeastLoaded;
    if (name == "hash" || name == "hash-affinity")
        return RouterPolicy::kHashAffinity;
    return Status::invalid_argument("unknown router policy '" + name +
                                    "' (expected rr | least | hash)");
}

ReplicaRouter::ReplicaRouter(RouterPolicy policy, std::uint32_t replicas)
    : policy_(policy), replicas_(replicas)
{
    HELM_ASSERT(replicas_ > 0, "router needs at least one replica");
}

namespace {

/** SplitMix64 finalizer: scrambles sequential session ids so hash
 *  affinity spreads instead of striping. */
std::uint64_t
mix(std::uint64_t x)
{
    x += 0x9E3779B97F4A7C15ull;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    return x ^ (x >> 31);
}

} // namespace

std::uint32_t
ReplicaRouter::route(SessionId session,
                     const std::vector<ReplicaLoad> &loads)
{
    HELM_ASSERT(loads.size() == replicas_,
                "router consulted with a mismatched replica set");
    switch (policy_) {
    case RouterPolicy::kRoundRobin: {
        const std::uint32_t pick = next_;
        next_ = (next_ + 1) % replicas_;
        return pick;
    }
    case RouterPolicy::kLeastLoaded: {
        std::uint32_t best = 0;
        std::uint64_t best_load = loads[0].queued + loads[0].inflight;
        for (std::uint32_t r = 1; r < replicas_; ++r) {
            const std::uint64_t load =
                loads[r].queued + loads[r].inflight;
            if (load < best_load) {
                best = r;
                best_load = load;
            }
        }
        return best;
    }
    case RouterPolicy::kHashAffinity:
        return static_cast<std::uint32_t>(mix(session) % replicas_);
    }
    return 0;
}

} // namespace helm::gateway
