#include "serving_gateway/admission.h"

namespace helm::gateway {

const char *
reject_reason_name(RejectReason reason)
{
    switch (reason) {
    case RejectReason::kAcceptQueueFull:
        return "accept_queue_full";
    case RejectReason::kSessionLimit:
        return "session_limit";
    case RejectReason::kContextOverflow:
        return "context_overflow";
    case RejectReason::kBackendShed:
        return "backend_shed";
    }
    return "unknown";
}

Status
AdmissionConfig::validate() const
{
    if (accept_queue == 0)
        return Status::invalid_argument(
            "accept queue bound must be >= 1 (--accept-queue)");
    if (max_sessions == 0)
        return Status::invalid_argument(
            "session cap must be >= 1 (--max-sessions)");
    if (context_block == 0)
        return Status::invalid_argument(
            "context block must be >= 1 (--context-block)");
    if (max_context < context_block)
        return Status::invalid_argument(
            "context cap must hold at least one context block "
            "(--max-context >= --context-block)");
    return Status::ok();
}

std::optional<std::uint64_t>
AdmissionControl::charge_context(std::uint64_t context_tokens,
                                 std::uint64_t prompt_tokens) const
{
    const std::uint64_t raw = context_tokens + prompt_tokens;
    const std::uint64_t block = config_.context_block;
    const std::uint64_t padded = (raw + block - 1) / block * block;
    if (padded > config_.max_context)
        return std::nullopt;
    return padded;
}

} // namespace helm::gateway
