/**
 * @file
 * Client sessions: multi-turn conversations with context accounting.
 *
 * A session is the unit of stickiness and of context growth: every
 * turn's prompt rides on the accumulated conversation (previous
 * prompts + generated tokens), so the backend-visible request grows
 * turn over turn until the admission layer's context cap closes the
 * conversation.  Sessions are routed to a replica once, at open, and
 * stay there — KV locality in a real serving system — so the Session
 * records its replica and the router is consulted only on open.
 *
 * SessionTable stores sessions in a slab with an intrusive free list
 * and generation-checked handles — the same discipline as the DES
 * kernel's event slab (sim/simulator.h) — so a million sequential
 * sessions reuse a handful of cache-hot slots and a stale SessionId
 * can never reach another client's session.
 */
#ifndef HELM_SERVING_GATEWAY_SESSION_H
#define HELM_SERVING_GATEWAY_SESSION_H

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "common/units.h"

namespace helm::gateway {

/** Opaque session handle; 0 is never a valid session. */
using SessionId = std::uint64_t;

inline constexpr SessionId kInvalidSession = 0;

/** One open conversation. */
struct Session
{
    SessionId id = kInvalidSession;
    /** Replica the session is sticky to (index into the gateway's
     *  replica set), fixed at open. */
    std::uint32_t replica = 0;
    /** Accumulated conversation tokens (block-rounded prompts +
     *  generated outputs of every accepted turn). */
    std::uint64_t context_tokens = 0;
    std::uint64_t turns_submitted = 0;
    std::uint64_t turns_completed = 0;
    std::uint64_t turns_shed = 0;
    /** Turns accepted (or dispatched) and not yet completed/shed. */
    std::uint64_t inflight = 0;
    Seconds opened_at = 0.0;
};

/** Slab of sessions with generation-checked handles. */
class SessionTable
{
  public:
    /** Open a session sticky to @p replica; returns its handle. */
    SessionId open(std::uint32_t replica, Seconds now);

    /** The session behind a handle, or nullptr when the handle is
     *  stale (closed, or a reused slot). */
    Session *find(SessionId id);
    const Session *find(SessionId id) const;

    /** Close a session; stale handles are ignored (idempotent). */
    void close(SessionId id);

    std::uint64_t active() const { return active_; }
    std::uint64_t opened_total() const { return opened_; }
    std::uint64_t closed_total() const { return closed_; }

  private:
    static constexpr std::uint32_t kNoFreeSlot = 0xffffffffu;

    struct Slot
    {
        Session session;
        std::uint32_t generation = 1;
        std::uint32_t next_free = kNoFreeSlot;
    };

    std::vector<Slot> slots_;
    std::uint32_t free_head_ = kNoFreeSlot;
    std::uint64_t active_ = 0;
    std::uint64_t opened_ = 0;
    std::uint64_t closed_ = 0;
};

} // namespace helm::gateway

#endif // HELM_SERVING_GATEWAY_SESSION_H
