#include "serving_gateway/gateway.h"

#include "runtime/scheduler.h"
#include "runtime/step_cache.h"
#include "telemetry/monitor.h"
#include "tracing/synthesize.h"
#include "tracing/tracer.h"

#include <algorithm>
#include <memory>
#include <unordered_map>
#include <utility>

namespace helm::gateway {

Status
GatewayConfig::validate() const
{
    return admission.validate();
}

Gateway::Gateway(sim::Simulator &sim, GatewayConfig config,
                 std::vector<runtime::ServingBackend *> replicas)
    : sim_(sim), config_(config), admission_(config.admission),
      router_(config.router, static_cast<std::uint32_t>(replicas.size()))
{
    HELM_ASSERT(!replicas.empty(), "gateway needs at least one replica");
    replicas_.resize(replicas.size());
    for (std::size_t r = 0; r < replicas.size(); ++r) {
        HELM_ASSERT(replicas[r] != nullptr,
                    "gateway replica backend must not be null");
        replicas_[r].backend = replicas[r];
        replicas_[r].window =
            config_.dispatch_batch != 0
                ? config_.dispatch_batch
                : std::max<std::uint64_t>(
                      1, replicas[r]->effective_max_batch());
    }
    stats_.routed_per_replica.assign(replicas.size(), 0);
    stats_.busy_seconds_per_replica.assign(replicas.size(), 0.0);
}

// ---- Observability taps --------------------------------------------
// All three are no-ops when the corresponding obs_ member is null, so
// an unobserved gateway run stays byte-identical and pays only a
// pointer test per turn.

void
Gateway::observe_completed(std::uint32_t r, const TurnMetrics &metrics)
{
    if (obs_.monitor != nullptr)
        obs_.monitor->on_completed(sim_.now(), metrics.output_tokens,
                                   metrics.ttft);
    if (obs_.tracer == nullptr)
        return;
    const tracing::OutlierFlags flags; // retention competes on TBT
    if (!obs_.tracer->should_build(flags, metrics.tbt)) {
        obs_.tracer->observe(tracing::kTurnTraceSpans, flags);
        return;
    }
    tracing::TurnTraceInput input;
    input.turn_id = metrics.turn;
    input.session = metrics.session;
    input.replica = r;
    input.prompt_tokens = metrics.prompt_tokens;
    input.output_tokens = metrics.output_tokens;
    input.submitted = metrics.submitted;
    input.dispatched = metrics.dispatched;
    input.first_token = metrics.first_token;
    input.completed = metrics.completed;
    input.tbt = metrics.tbt;
    obs_.tracer->finish(tracing::build_turn_trace(
        input, obs_.tracer->config().max_spans_per_trace));
}

void
Gateway::observe_shed(const PendingTurn &turn, RejectReason reason)
{
    if (obs_.monitor != nullptr)
        obs_.monitor->on_shed(sim_.now());
    if (obs_.tracer == nullptr)
        return;
    obs_.tracer->finish(tracing::build_shed_turn_trace(
        turn.id, turn.session, turn.submitted, sim_.now(),
        reject_reason_name(reason),
        obs_.tracer->config().max_spans_per_trace));
}

void
Gateway::observe_admission_shed()
{
    // Rejected before a turn id existed: count it, build nothing.
    if (obs_.monitor != nullptr)
        obs_.monitor->on_shed(sim_.now());
    if (obs_.tracer != nullptr) {
        tracing::OutlierFlags flags;
        flags.shed = true;
        obs_.tracer->observe(1, flags);
    }
}

OpenOutcome
Gateway::open_session()
{
    OpenOutcome outcome;
    if (!admission_.admit_session(sessions_.active())) {
        admission_.count_reject(RejectReason::kSessionLimit);
        ++stats_.turns_shed;
        observe_admission_shed();
        outcome.reason = RejectReason::kSessionLimit;
        return outcome;
    }
    std::vector<ReplicaLoad> loads;
    loads.reserve(replicas_.size());
    for (const Replica &replica : replicas_)
        loads.push_back(load_of(replica));
    // Hash affinity needs the id before routing; open first, route on
    // the fresh handle.
    const SessionId id = sessions_.open(0, sim_.now());
    Session *session = sessions_.find(id);
    session->replica = router_.route(id, loads);
    outcome.session = id;
    outcome.admitted = true;
    return outcome;
}

SubmitOutcome
Gateway::submit_turn(SessionId session_id, std::uint64_t prompt_tokens,
                     std::uint64_t output_tokens, StreamSink sink)
{
    HELM_ASSERT(prompt_tokens >= 1 && output_tokens >= 1,
                "a turn needs at least one prompt and one output token");
    SubmitOutcome outcome;
    ++stats_.turns_submitted;
    Session *session = sessions_.find(session_id);
    if (session == nullptr) {
        // Closed or stale handle: the session cap is the nearest truth.
        admission_.count_reject(RejectReason::kSessionLimit);
        ++stats_.turns_shed;
        observe_admission_shed();
        outcome.reason = RejectReason::kSessionLimit;
        return outcome;
    }
    const auto padded_prompt =
        admission_.charge_context(session->context_tokens, prompt_tokens);
    if (!padded_prompt.has_value()) {
        admission_.count_reject(RejectReason::kContextOverflow);
        ++stats_.turns_shed;
        ++session->turns_shed;
        observe_admission_shed();
        outcome.reason = RejectReason::kContextOverflow;
        return outcome;
    }
    Replica &replica = replicas_[session->replica];
    if (!admission_.admit_turn(replica.queue.size())) {
        admission_.count_reject(RejectReason::kAcceptQueueFull);
        ++stats_.turns_shed;
        ++session->turns_shed;
        observe_admission_shed();
        outcome.reason = RejectReason::kAcceptQueueFull;
        return outcome;
    }

    PendingTurn turn;
    turn.id = next_turn_++;
    turn.session = session_id;
    turn.prompt_tokens = *padded_prompt;
    turn.output_tokens = output_tokens;
    turn.submitted = sim_.now();
    turn.sink = std::move(sink);

    session->context_tokens = *padded_prompt + output_tokens;
    ++session->turns_submitted;
    ++session->inflight;
    ++stats_.turns_accepted;
    ++stats_.routed_per_replica[session->replica];
    replica.queue.push_back(std::move(turn));
    stats_.peak_accept_depth =
        std::max<std::uint64_t>(stats_.peak_accept_depth,
                                replica.queue.size());
    if (obs_.monitor != nullptr)
        obs_.monitor->on_queue_depth(
            sim_.now(), static_cast<double>(replica.queue.size()));

    outcome.turn = replica.queue.back().id;
    outcome.admitted = true;
    if (replica.queue.back().sink) {
        StreamEvent event;
        event.kind = StreamEvent::Kind::kAccepted;
        event.turn = outcome.turn;
        event.session = session_id;
        event.time = sim_.now();
        replica.queue.back().sink(event);
    }
    maybe_schedule_dispatch(session->replica);
    return outcome;
}

void
Gateway::close_session(SessionId id)
{
    sessions_.close(id);
}

void
Gateway::maybe_schedule_dispatch(std::uint32_t r)
{
    Replica &replica = replicas_[r];
    if (replica.busy || replica.dispatch_scheduled ||
        replica.queue.empty() || !health_.is_ok())
        return;
    replica.dispatch_scheduled = true;
    // Delay 0: every turn accepted at this timestamp joins the window.
    sim_.schedule(0.0, [this, r] { dispatch(r); });
}

void
Gateway::dispatch(std::uint32_t r)
{
    Replica &replica = replicas_[r];
    replica.dispatch_scheduled = false;
    if (replica.busy || replica.queue.empty() || !health_.is_ok())
        return;

    const std::size_t count = std::min<std::size_t>(
        replica.queue.size(), replica.window);
    std::vector<PendingTurn> window;
    window.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        window.push_back(std::move(replica.queue.front()));
        replica.queue.pop_front();
    }

    for (const PendingTurn &turn : window) {
        workload::TimedRequest timed;
        timed.request.id = turn.id;
        timed.request.prompt_tokens = turn.prompt_tokens;
        timed.request.output_tokens = turn.output_tokens;
        timed.arrival = 0.0;
        const Status submitted = replica.backend->submit(timed);
        if (!submitted.is_ok()) {
            health_ = submitted;
            for (PendingTurn &shed : window)
                shed_turn(std::move(shed), RejectReason::kBackendShed);
            return;
        }
    }
    auto report = replica.backend->serve();
    if (!report.is_ok()) {
        health_ = report.status();
        for (PendingTurn &shed : window)
            shed_turn(std::move(shed), RejectReason::kBackendShed);
        return;
    }

    const Seconds now = sim_.now();
    ++stats_.dispatch_windows;
    stats_.backend_batches += report->batches_formed;
    stats_.busy_seconds_per_replica[r] += report->makespan;

    std::unordered_map<TurnId, PendingTurn> by_id;
    by_id.reserve(window.size());
    for (PendingTurn &turn : window)
        by_id.emplace(turn.id, std::move(turn));
    const bool fast = runtime::step_cache_enabled();
    std::vector<FastDelivery> fast_batch;
    if (fast)
        fast_batch.reserve(report->requests.size());
    for (const runtime::RequestMetrics &metrics : report->requests) {
        auto it = by_id.find(metrics.id);
        if (it == by_id.end())
            continue;
        ++replica.inflight;
        if (fast) {
            FastDelivery delivery;
            delivery.sink = std::move(it->second.sink);
            delivery.metrics = turn_metrics_for(it->second, metrics, now);
            fast_batch.push_back(std::move(delivery));
        } else {
            schedule_deliveries(r, std::move(it->second), metrics, now);
        }
        by_id.erase(it);
    }
    if (fast)
        fast_forward_window(r, std::move(fast_batch));
    // Whatever the backend did not complete, it shed.
    for (auto &left : by_id)
        shed_turn(std::move(left.second), RejectReason::kBackendShed);

    replica.busy = true;
    sim_.schedule(report->makespan, [this, r] {
        replicas_[r].busy = false;
        maybe_schedule_dispatch(r);
    });
}

struct Gateway::DeliveryState
{
    StreamSink sink;
    TurnMetrics metrics;
};

TurnMetrics
Gateway::turn_metrics_for(const PendingTurn &turn,
                          const runtime::RequestMetrics &metrics,
                          Seconds dispatched) const
{
    TurnMetrics m;
    m.turn = turn.id;
    m.session = turn.session;
    m.prompt_tokens = turn.prompt_tokens;
    m.output_tokens = turn.output_tokens;
    m.submitted = turn.submitted;
    m.dispatched = dispatched;
    m.first_token = dispatched + metrics.ttft;
    m.completed = dispatched + metrics.e2e_latency;
    m.queue_wait = dispatched - turn.submitted;
    m.ttft = m.first_token - turn.submitted;
    m.tbt = metrics.tbt;
    m.e2e = m.completed - turn.submitted;
    return m;
}

void
Gateway::schedule_deliveries(std::uint32_t r, PendingTurn &&turn,
                             const runtime::RequestMetrics &metrics,
                             Seconds dispatched)
{
    auto state = std::make_shared<DeliveryState>();
    state->sink = std::move(turn.sink);
    state->metrics = turn_metrics_for(turn, metrics, dispatched);
    const TurnMetrics &m = state->metrics;

    // The chain: token 0 at first_token, then either every token
    // (spaced tbt, final one pinned to the exact completion time) or a
    // straight jump to completion when coalescing.
    sim_.schedule_at(std::max(m.first_token, sim_.now()),
                     [this, r, state] { deliver_token(r, state, 0); });
}

void
Gateway::fast_forward_window(std::uint32_t r,
                             std::vector<FastDelivery> &&batch)
{
    // Turns arrive in report order; at equal completion times the slow
    // path's per-turn chains retire them in that same order, so a
    // stable sort by completion time reproduces the retire order while
    // letting every turn that completes at one timestamp share a
    // single DES event.
    std::stable_sort(batch.begin(), batch.end(),
                     [](const FastDelivery &a, const FastDelivery &b) {
                         return a.metrics.completed < b.metrics.completed;
                     });
    auto shared =
        std::make_shared<std::vector<FastDelivery>>(std::move(batch));
    std::size_t begin = 0;
    while (begin < shared->size()) {
        const Seconds at = (*shared)[begin].metrics.completed;
        std::size_t end = begin + 1;
        while (end < shared->size() &&
               (*shared)[end].metrics.completed == at)
            ++end;
        sim_.schedule_at(at, [this, r, shared, begin, end] {
            for (std::size_t i = begin; i < end; ++i)
                replay_turn(r, (*shared)[i]);
        });
        begin = end;
    }
}

void
Gateway::replay_turn(std::uint32_t r, FastDelivery &delivery)
{
    const TurnMetrics &m = delivery.metrics;
    if (delivery.sink) {
        // Replay the token stream the delivery chain would have fired,
        // with arithmetically identical timestamps (see FastDelivery).
        StreamEvent event;
        event.kind = StreamEvent::Kind::kFirstToken;
        event.turn = m.turn;
        event.session = m.session;
        event.token_index = 0;
        event.time = std::max(m.first_token, m.dispatched);
        delivery.sink(event);
        if (config_.per_token_stream) {
            event.kind = StreamEvent::Kind::kToken;
            Seconds prev = event.time;
            const std::uint64_t tokens = m.output_tokens;
            for (std::uint64_t token = 1; token < tokens; ++token) {
                Seconds at = token + 1 == tokens
                                 ? m.completed
                                 : m.first_token +
                                       static_cast<double>(token) * m.tbt;
                at = std::min(at, m.completed);
                at = std::max(at, prev);
                event.token_index = token;
                event.time = at;
                delivery.sink(event);
                prev = at;
            }
        }
    }
    runtime::step_cache().note_stream_hit();

    // Retire the turn: bookkeeping identical to complete_turn().
    Replica &replica = replicas_[r];
    HELM_ASSERT(replica.inflight > 0,
                "turn completion without a dispatched turn in flight");
    --replica.inflight;
    ++stats_.turns_completed;
    stats_.tokens_delivered += m.output_tokens;
    if (Session *session = sessions_.find(m.session)) {
        ++session->turns_completed;
        --session->inflight;
    }
    if (delivery.sink) {
        StreamEvent event;
        event.kind = StreamEvent::Kind::kCompleted;
        event.turn = m.turn;
        event.session = m.session;
        event.token_index =
            m.output_tokens > 0 ? m.output_tokens - 1 : 0;
        event.time = sim_.now();
        event.metrics = &delivery.metrics;
        delivery.sink(event);
    }
    observe_completed(r, m);
}

void
Gateway::deliver_token(std::uint32_t r,
                       const std::shared_ptr<DeliveryState> &state,
                       std::uint64_t token)
{
    const TurnMetrics &m = state->metrics;
    if (state->sink) {
        StreamEvent event;
        event.kind = token == 0 ? StreamEvent::Kind::kFirstToken
                                : StreamEvent::Kind::kToken;
        event.turn = m.turn;
        event.session = m.session;
        event.token_index = token;
        event.time = sim_.now();
        state->sink(event);
    }
    const std::uint64_t tokens = m.output_tokens;
    if (config_.per_token_stream && token + 1 < tokens) {
        // Middle tokens pace at tbt; the last token lands exactly at
        // the completion time (clamped monotone against rounding).
        Seconds next = token + 2 == tokens
                           ? m.completed
                           : m.first_token +
                                 static_cast<double>(token + 1) * m.tbt;
        next = std::min(next, m.completed);
        next = std::max(next, sim_.now());
        sim_.schedule_at(next, [this, r, state, token] {
            deliver_token(r, state, token + 1);
        });
        return;
    }
    // Last delivered token (or coalescing): complete the turn.
    const Seconds at = std::max(m.completed, sim_.now());
    sim_.schedule_at(at, [this, r, state] { complete_turn(r, state); });
}

void
Gateway::complete_turn(std::uint32_t r,
                       const std::shared_ptr<DeliveryState> &state)
{
    const TurnMetrics &m = state->metrics;
    Replica &replica = replicas_[r];
    HELM_ASSERT(replica.inflight > 0,
                "turn completion without a dispatched turn in flight");
    --replica.inflight;
    ++stats_.turns_completed;
    stats_.tokens_delivered += m.output_tokens;
    if (Session *session = sessions_.find(m.session)) {
        ++session->turns_completed;
        --session->inflight;
    }
    if (state->sink) {
        StreamEvent event;
        event.kind = StreamEvent::Kind::kCompleted;
        event.turn = m.turn;
        event.session = m.session;
        event.token_index =
            m.output_tokens > 0 ? m.output_tokens - 1 : 0;
        event.time = sim_.now();
        event.metrics = &state->metrics;
        state->sink(event);
    }
    observe_completed(r, m);
}

void
Gateway::shed_turn(PendingTurn &&turn, RejectReason reason)
{
    admission_.count_reject(reason);
    ++stats_.turns_shed;
    if (Session *session = sessions_.find(turn.session)) {
        ++session->turns_shed;
        --session->inflight;
    }
    if (turn.sink) {
        StreamEvent event;
        event.kind = StreamEvent::Kind::kShed;
        event.turn = turn.id;
        event.session = turn.session;
        event.time = sim_.now();
        event.reason = reason;
        turn.sink(event);
    }
    observe_shed(turn, reason);
}

ReplicaLoad
Gateway::load_of(const Replica &replica) const
{
    ReplicaLoad load;
    load.queued = replica.queue.size();
    load.inflight = replica.inflight;
    load.busy = replica.busy;
    return load;
}

} // namespace helm::gateway
