/**
 * @file
 * Closed-loop client driver: the load generator behind
 * `helmsim gateway`.
 *
 * Open-loop arrival streams (workload/arrival.h) model clients who
 * send regardless of the system's state.  Real chat traffic is closed
 * loop: a client sends a turn, streams the answer, thinks, and only
 * then sends the next turn — so the offered load self-throttles under
 * slowdown, and admission rejects convert into retries after a think
 * time instead of an ever-growing queue.  This driver simulates N such
 * clients against a Gateway until a target number of turns completes
 * (the CI gate drives one million), entirely on the DES clock, and
 * reports client-edge latency samples plus the raw host-side
 * events/sec the run sustained.
 */
#ifndef HELM_SERVING_GATEWAY_DRIVER_H
#define HELM_SERVING_GATEWAY_DRIVER_H

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "common/units.h"
#include "serving_gateway/gateway.h"

namespace helm::gateway {

/** Client population and termination knobs. */
struct DriverConfig
{
    /** Concurrent closed-loop clients. */
    std::uint64_t clients = 256;
    /** Completed turns to reach before clients park; the run drains
     *  in-flight work after, so completions end >= this. */
    std::uint64_t target_requests = 10000;
    /** Turns per session before the client closes it and opens a new
     *  conversation. */
    std::uint64_t turns_per_session = 4;
    /** Mean think time between a completion and the next turn
     *  (exponential). */
    Seconds mean_think = 0.25;
    /** New prompt tokens per turn (context growth is the gateway's). */
    std::uint64_t prompt_tokens = 128;
    std::uint64_t output_tokens = 21;
    std::uint64_t seed = 42;
    /**
     * Retry budget: the run aborts issuing once total attempts
     * (opens + submits, including retries) exceed target_requests
     * times this factor — the livelock guard when the gateway sheds
     * everything.
     */
    std::uint64_t max_attempts_factor = 4;

    Status validate() const;
};

/** What one closed-loop run did. */
struct DriverReport
{
    std::uint64_t clients = 0;
    std::uint64_t target_requests = 0;
    std::uint64_t completed = 0; //!< turns fully streamed
    std::uint64_t attempts = 0;  //!< opens + submits, incl. retries
    std::uint64_t retries = 0;   //!< re-submits after a shed
    std::uint64_t parked_on_budget = 0; //!< clients that hit the guard
    Seconds sim_makespan = 0.0;  //!< virtual time the run spanned
    std::uint64_t events_executed = 0; //!< DES events the run fired
    double wall_seconds = 0.0;         //!< host time inside sim.run()
    double events_per_second = 0.0;    //!< events_executed / wall
    double requests_per_second = 0.0;  //!< completed / wall
    /** Client-edge samples, completion order (reduce with
     *  helm::percentile_nearest_rank). */
    std::vector<double> ttft;
    std::vector<double> tbt;
    std::vector<double> e2e;
    std::vector<double> queue_wait;
};

/**
 * Run the closed loop to completion: seeds @p clients think-timers,
 * drives @p gateway until the target is reached and in-flight turns
 * drain, and returns the report.  Fails when the gateway reports a
 * backend failure (Gateway::health()).
 */
Result<DriverReport> run_closed_loop(sim::Simulator &sim,
                                     Gateway &gateway,
                                     const DriverConfig &config);

} // namespace helm::gateway

#endif // HELM_SERVING_GATEWAY_DRIVER_H
