/**
 * @file
 * Replica routing: which backend a new session lands on.
 *
 * The gateway is session-sticky (KV locality), so routing is decided
 * once per session, at open.  Three policies:
 *
 *  - round-robin:   rotate through replicas; uniform by construction;
 *  - least-loaded:  pick the replica with the fewest queued + in-flight
 *                   turns (ties to the lowest index) — adapts to slow
 *                   replicas and skewed session lengths;
 *  - hash-affinity: a deterministic hash of the SessionId — stateless
 *                   and stable (the same session id always maps to the
 *                   same replica), the policy a distributed front end
 *                   without shared routing state would use.
 *
 * Distinct from cluster/router.h, which routes *requests* across GPUs
 * inside one ClusterServer; this router places *sessions* across whole
 * ServingBackend replicas in front of that.
 */
#ifndef HELM_SERVING_GATEWAY_ROUTER_H
#define HELM_SERVING_GATEWAY_ROUTER_H

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "serving_gateway/session.h"

namespace helm::gateway {

/** Session-placement policy. */
enum class RouterPolicy
{
    kRoundRobin,
    kLeastLoaded,
    kHashAffinity,
};

/** Printable name ("rr", "least", "hash") — the CLI spelling. */
const char *router_policy_name(RouterPolicy policy);

/** Parse a policy name as `helmsim gateway --router` spells it. */
Result<RouterPolicy> parse_router_policy(const std::string &name);

/** What the router may inspect about one replica. */
struct ReplicaLoad
{
    /** Accepted-but-undispatched turns in the replica's queue. */
    std::uint64_t queued = 0;
    /** Dispatched-but-uncompleted turns. */
    std::uint64_t inflight = 0;
    /** Serving a dispatch window right now. */
    bool busy = false;
};

/** Stateful session router over a fixed replica set. */
class ReplicaRouter
{
  public:
    ReplicaRouter(RouterPolicy policy, std::uint32_t replicas);

    /** The replica for a newly opened session.  @p loads must have
     *  one entry per replica. */
    std::uint32_t route(SessionId session,
                        const std::vector<ReplicaLoad> &loads);

    RouterPolicy policy() const { return policy_; }

  private:
    RouterPolicy policy_;
    std::uint32_t replicas_;
    std::uint32_t next_ = 0; //!< round-robin cursor
};

} // namespace helm::gateway

#endif // HELM_SERVING_GATEWAY_ROUTER_H
