#include "serving_gateway/driver.h"

#include <chrono>
#include <cmath>

#include "common/rng.h"

namespace helm::gateway {

Status
DriverConfig::validate() const
{
    if (clients == 0)
        return Status::invalid_argument(
            "closed loop needs at least one client (--clients)");
    if (target_requests == 0)
        return Status::invalid_argument(
            "target must be >= 1 completed request (--requests)");
    if (turns_per_session == 0)
        return Status::invalid_argument(
            "sessions need at least one turn (--turns)");
    if (mean_think < 0.0)
        return Status::invalid_argument(
            "think time must be >= 0 (--think-ms)");
    if (prompt_tokens == 0 || output_tokens == 0)
        return Status::invalid_argument(
            "turns need >= 1 prompt and output token "
            "(--prompt-tokens/--output-tokens)");
    if (max_attempts_factor == 0)
        return Status::invalid_argument(
            "attempt budget factor must be >= 1 "
            "(--max-attempts-factor)");
    return Status::ok();
}

namespace {

/** The whole closed loop; lives on run_closed_loop's stack. */
struct ClosedLoop
{
    sim::Simulator &sim;
    Gateway &gateway;
    const DriverConfig &config;
    Rng rng;
    DriverReport report;
    std::uint64_t attempt_budget = 0;

    struct Client
    {
        SessionId session = kInvalidSession;
        std::uint64_t turn_in_session = 0;
        bool parked = false;
    };
    std::vector<Client> clients;

    ClosedLoop(sim::Simulator &s, Gateway &g, const DriverConfig &c)
        : sim(s), gateway(g), config(c), rng(c.seed)
    {
        clients.resize(c.clients);
        attempt_budget = c.target_requests * c.max_attempts_factor;
        report.clients = c.clients;
        report.target_requests = c.target_requests;
        const std::uint64_t reserve =
            c.target_requests < (1u << 24) ? c.target_requests : 0;
        report.ttft.reserve(reserve);
        report.tbt.reserve(reserve);
        report.e2e.reserve(reserve);
        report.queue_wait.reserve(reserve);
    }

    Seconds
    think()
    {
        if (config.mean_think <= 0.0)
            return 0.0;
        return -config.mean_think * std::log1p(-rng.next_double());
    }

    bool
    target_reached() const
    {
        return report.completed >= config.target_requests;
    }

    void
    park(std::size_t c, bool on_budget)
    {
        Client &client = clients[c];
        if (client.parked)
            return;
        client.parked = true;
        if (on_budget)
            ++report.parked_on_budget;
        if (client.session != kInvalidSession) {
            gateway.close_session(client.session);
            client.session = kInvalidSession;
        }
    }

    /** A client is ready to issue its next turn (or park). */
    void
    act(std::size_t c)
    {
        Client &client = clients[c];
        if (client.parked)
            return;
        if (target_reached()) {
            park(c, false);
            return;
        }
        if (report.attempts >= attempt_budget) {
            park(c, true);
            return;
        }
        if (client.session == kInvalidSession) {
            ++report.attempts;
            const OpenOutcome opened = gateway.open_session();
            if (!opened.admitted) {
                retry_later(c);
                return;
            }
            client.session = opened.session;
            client.turn_in_session = 0;
        }
        ++report.attempts;
        const SubmitOutcome submitted = gateway.submit_turn(
            client.session, config.prompt_tokens, config.output_tokens,
            [this, c](const StreamEvent &event) { on_stream(c, event); });
        if (!submitted.admitted)
            on_reject(c, submitted.reason);
    }

    void
    retry_later(std::size_t c)
    {
        ++report.retries;
        sim.schedule(think(), [this, c] { act(c); });
    }

    /** Synchronous admission rejects (queue full, context, session). */
    void
    on_reject(std::size_t c, RejectReason reason)
    {
        Client &client = clients[c];
        if (reason == RejectReason::kContextOverflow ||
            reason == RejectReason::kSessionLimit) {
            // The conversation cannot continue: start a fresh one.
            if (client.session != kInvalidSession) {
                gateway.close_session(client.session);
                client.session = kInvalidSession;
            }
        }
        retry_later(c);
    }

    void
    on_stream(std::size_t c, const StreamEvent &event)
    {
        switch (event.kind) {
        case StreamEvent::Kind::kAccepted:
        case StreamEvent::Kind::kFirstToken:
        case StreamEvent::Kind::kToken:
            return; // clients only act on turn boundaries
        case StreamEvent::Kind::kShed:
            // Asynchronous shed (the backend refused the dispatched
            // turn): same remediation as a synchronous reject.
            on_reject(c, event.reason);
            return;
        case StreamEvent::Kind::kCompleted:
            break;
        }
        Client &client = clients[c];
        ++report.completed;
        const TurnMetrics &m = *event.metrics;
        report.ttft.push_back(m.ttft);
        report.tbt.push_back(m.tbt);
        report.e2e.push_back(m.e2e);
        report.queue_wait.push_back(m.queue_wait);
        ++client.turn_in_session;
        if (client.turn_in_session >= config.turns_per_session &&
            client.session != kInvalidSession) {
            gateway.close_session(client.session);
            client.session = kInvalidSession;
        }
        sim.schedule(think(), [this, c] { act(c); });
    }
};

} // namespace

Result<DriverReport>
run_closed_loop(sim::Simulator &sim, Gateway &gateway,
                const DriverConfig &config)
{
    HELM_RETURN_IF_ERROR(config.validate());

    ClosedLoop loop(sim, gateway, config);
    const Seconds started = sim.now();
    const std::uint64_t events_before = sim.events_executed();
    // Stagger client starts across one think time so the first
    // dispatch window is not a single synchronized megabatch.
    for (std::size_t c = 0; c < loop.clients.size(); ++c)
        sim.schedule(loop.think(), [&loop, c] { loop.act(c); });

    const auto wall_start = std::chrono::steady_clock::now();
    sim.run();
    const auto wall_end = std::chrono::steady_clock::now();

    if (!gateway.health().is_ok())
        return gateway.health();

    loop.report.sim_makespan = sim.now() - started;
    loop.report.events_executed = sim.events_executed() - events_before;
    loop.report.wall_seconds =
        std::chrono::duration<double>(wall_end - wall_start).count();
    if (loop.report.wall_seconds > 0.0) {
        loop.report.events_per_second =
            static_cast<double>(loop.report.events_executed) /
            loop.report.wall_seconds;
        loop.report.requests_per_second =
            static_cast<double>(loop.report.completed) /
            loop.report.wall_seconds;
    }
    return std::move(loop.report);
}

} // namespace helm::gateway
