/**
 * @file
 * Per-token streaming delivery: what a gateway client observes.
 *
 * LLM serving is judged at the client edge — time to *first* token and
 * the cadence of the tokens after it — not at the scheduler's batch
 * boundary.  The gateway therefore replays each completed turn's token
 * timeline onto the simulation clock and delivers it through a
 * StreamSink callback: accept, first token, every subsequent token,
 * and completion (or a typed shed).  The TurnMetrics handed to the
 * completion event measure TTFT/TBT/E2E from the client's submit time,
 * so gateway queueing is included — the number a user would measure
 * with a stopwatch, not the number the batch scheduler brags about.
 */
#ifndef HELM_SERVING_GATEWAY_STREAMING_H
#define HELM_SERVING_GATEWAY_STREAMING_H

#include <cstdint>
#include <functional>

#include "common/units.h"
#include "serving_gateway/admission.h"
#include "serving_gateway/session.h"

namespace helm::gateway {

/** Opaque turn handle; 0 is never a valid turn. */
using TurnId = std::uint64_t;

/** Client-edge timings of one completed turn. */
struct TurnMetrics
{
    TurnId turn = 0;
    SessionId session = kInvalidSession;
    /** Backend-visible prompt (context + new tokens, block-rounded). */
    std::uint64_t prompt_tokens = 0;
    std::uint64_t output_tokens = 0;
    Seconds submitted = 0.0;   //!< client submit time
    Seconds dispatched = 0.0;  //!< dispatch-window launch time
    Seconds first_token = 0.0; //!< absolute first-token time
    Seconds completed = 0.0;   //!< absolute last-token time
    Seconds queue_wait = 0.0;  //!< submitted -> dispatched
    Seconds ttft = 0.0;        //!< submitted -> first token (client edge)
    Seconds tbt = 0.0;         //!< mean time between tokens
    Seconds e2e = 0.0;         //!< submitted -> completed (client edge)
};

/** One delivery on a turn's stream. */
struct StreamEvent
{
    enum class Kind
    {
        kAccepted,   //!< the turn passed admission and joined a queue
        kFirstToken, //!< token 0 arrived (TTFT edge)
        kToken,      //!< a subsequent token arrived
        kCompleted,  //!< all tokens delivered; metrics attached
        kShed,       //!< rejected; reason attached
    };

    Kind kind = Kind::kAccepted;
    TurnId turn = 0;
    SessionId session = kInvalidSession;
    /** kFirstToken/kToken: 0-based index of the delivered token. */
    std::uint64_t token_index = 0;
    /** Simulation time of the delivery. */
    Seconds time = 0.0;
    /** kShed only. */
    RejectReason reason = RejectReason::kBackendShed;
    /** kCompleted only; valid for the duration of the callback. */
    const TurnMetrics *metrics = nullptr;
};

/**
 * Per-turn delivery callback, invoked on the simulation clock.  May
 * submit new turns / open sessions from inside the callback (the
 * closed-loop driver does exactly that); must not block.
 */
using StreamSink = std::function<void(const StreamEvent &)>;

} // namespace helm::gateway

#endif // HELM_SERVING_GATEWAY_STREAMING_H
