#include "serving_gateway/instrument.h"

#include <string>

namespace helm::gateway {

void
record_gateway(telemetry::MetricsRegistry &registry,
               const Gateway &gateway, const DriverReport &report)
{
    const GatewayStats &stats = gateway.stats();
    const SessionTable &sessions = gateway.sessions();

    registry
        .counter("helm_gateway_sessions_opened_total", {},
                 "Sessions the gateway admitted")
        .add(static_cast<double>(sessions.opened_total()));
    registry
        .counter("helm_gateway_sessions_closed_total", {},
                 "Sessions closed by their clients")
        .add(static_cast<double>(sessions.closed_total()));
    registry
        .gauge("helm_gateway_sessions_active", {},
               "Sessions open when the run ended")
        .set(static_cast<double>(sessions.active()));

    registry
        .counter("helm_gateway_requests_submitted_total", {},
                 "Turns clients submitted (before admission)")
        .add(static_cast<double>(stats.turns_submitted));
    registry
        .counter("helm_gateway_requests_accepted_total", {},
                 "Turns that passed admission")
        .add(static_cast<double>(stats.turns_accepted));
    registry
        .counter("helm_gateway_requests_completed_total", {},
                 "Turns fully streamed back to their clients")
        .add(static_cast<double>(stats.turns_completed));

    const auto &rejects = gateway.admission().rejects();
    for (std::size_t i = 0; i < kRejectReasonCount; ++i) {
        registry
            .counter("helm_gateway_requests_shed_total",
                     {{"reason", reject_reason_name(
                                     static_cast<RejectReason>(i))}},
                     "Turns and session opens shed, by typed reason")
            .add(static_cast<double>(rejects[i]));
    }

    for (std::size_t r = 0; r < stats.routed_per_replica.size(); ++r) {
        const telemetry::Labels labels{{"replica", std::to_string(r)}};
        registry
            .counter("helm_gateway_requests_routed_total", labels,
                     "Accepted turns per backend replica")
            .add(static_cast<double>(stats.routed_per_replica[r]));
        registry
            .counter("helm_gateway_replica_busy_seconds", labels,
                     "Virtual seconds each replica spent serving "
                     "dispatch windows")
            .add(stats.busy_seconds_per_replica[r]);
    }

    registry
        .counter("helm_gateway_dispatch_windows_total", {},
                 "serve() calls the gateway issued")
        .add(static_cast<double>(stats.dispatch_windows));
    registry
        .counter("helm_gateway_backend_batches_total", {},
                 "Batches the backends formed inside dispatch windows")
        .add(static_cast<double>(stats.backend_batches));
    registry
        .counter("helm_gateway_tokens_delivered_total", {},
                 "Tokens streamed to clients")
        .add(static_cast<double>(stats.tokens_delivered));
    registry
        .gauge("helm_gateway_accept_queue_peak", {},
               "Peak accepted-but-undispatched turns on one replica")
        .set(static_cast<double>(stats.peak_accept_depth));

    const auto buckets = telemetry::default_latency_buckets();
    struct EdgeFamily
    {
        const char *name;
        const char *help;
        const std::vector<double> *samples;
    };
    const EdgeFamily families[] = {
        {"helm_gateway_ttft_seconds",
         "Client-edge time to first token (includes gateway queueing)",
         &report.ttft},
        {"helm_gateway_tbt_seconds",
         "Client-edge mean time between tokens", &report.tbt},
        {"helm_gateway_e2e_seconds",
         "Client-edge end-to-end turn latency", &report.e2e},
        {"helm_gateway_queue_wait_seconds",
         "Accept-to-dispatch wait inside the gateway",
         &report.queue_wait},
    };
    for (const EdgeFamily &family : families) {
        auto &histogram =
            registry.histogram(family.name, {}, buckets, family.help);
        for (const double sample : *family.samples)
            histogram.observe(sample);
    }

    registry
        .gauge("helm_gateway_driver_clients", {},
               "Closed-loop clients the driver simulated")
        .set(static_cast<double>(report.clients));
    registry
        .counter("helm_gateway_driver_attempts_total", {},
                 "Session opens + turn submits, including retries")
        .add(static_cast<double>(report.attempts));
    registry
        .counter("helm_gateway_driver_retries_total", {},
                 "Turns re-issued after a shed or failed open")
        .add(static_cast<double>(report.retries));
    registry
        .gauge("helm_gateway_driver_makespan_seconds", {},
               "Virtual time the closed-loop run spanned")
        .set(report.sim_makespan);
    registry
        .gauge("helm_gateway_driver_events_per_second", {},
               "Host-side DES events/sec the run sustained")
        .set(report.events_per_second);
    registry
        .gauge("helm_gateway_driver_requests_per_second", {},
               "Host-side completed requests/sec the run sustained")
        .set(report.requests_per_second);
}

} // namespace helm::gateway
