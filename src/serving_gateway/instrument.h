/**
 * @file
 * Gateway telemetry: the `helm_gateway_*` metric families.
 *
 * One recording call turns a Gateway's stats and a DriverReport into
 * registry samples, so `helmsim gateway --metrics-out/--prom-out`
 * exports exactly what the stdout table printed — and CI can gate the
 * million-request run on `helm_gateway_requests_completed_total`
 * through tools/check_metrics.py without parsing human output.
 */
#ifndef HELM_SERVING_GATEWAY_INSTRUMENT_H
#define HELM_SERVING_GATEWAY_INSTRUMENT_H

#include "serving_gateway/driver.h"
#include "serving_gateway/gateway.h"
#include "telemetry/metrics.h"

namespace helm::gateway {

/**
 * Record the gateway metric families:
 *  - helm_gateway_sessions_{opened,closed}_total, _active;
 *  - helm_gateway_requests_{submitted,accepted,completed}_total;
 *  - helm_gateway_requests_shed_total{reason=...};
 *  - helm_gateway_requests_routed_total{replica=...};
 *  - helm_gateway_replica_busy_seconds{replica=...};
 *  - helm_gateway_dispatch_windows_total, _backend_batches_total;
 *  - helm_gateway_tokens_delivered_total;
 *  - helm_gateway_{ttft,tbt,e2e,queue_wait}_seconds histograms
 *    (client edge);
 *  - helm_gateway_driver_* (clients, attempts, retries, makespan, and
 *    the host-side events/sec the DES core sustained).
 */
void record_gateway(telemetry::MetricsRegistry &registry,
                    const Gateway &gateway, const DriverReport &report);

} // namespace helm::gateway

#endif // HELM_SERVING_GATEWAY_INSTRUMENT_H
