#include "serving_gateway/session.h"

namespace helm::gateway {

SessionId
SessionTable::open(std::uint32_t replica, Seconds now)
{
    std::uint32_t slot;
    if (free_head_ != kNoFreeSlot) {
        slot = free_head_;
        free_head_ = slots_[slot].next_free;
    } else {
        HELM_ASSERT(slots_.size() < kNoFreeSlot,
                    "session slab exhausted the 32-bit slot space");
        slots_.emplace_back();
        slot = static_cast<std::uint32_t>(slots_.size() - 1);
    }
    Slot &entry = slots_[slot];
    const SessionId id =
        (static_cast<SessionId>(slot) + 1) << 32 | entry.generation;
    entry.session = Session{};
    entry.session.id = id;
    entry.session.replica = replica;
    entry.session.opened_at = now;
    ++active_;
    ++opened_;
    return id;
}

Session *
SessionTable::find(SessionId id)
{
    const std::uint64_t slot_plus_one = id >> 32;
    if (slot_plus_one == 0 || slot_plus_one > slots_.size())
        return nullptr;
    Slot &entry = slots_[slot_plus_one - 1];
    if (entry.generation != static_cast<std::uint32_t>(id & 0xffffffffu))
        return nullptr; // closed, or the slot was reused
    return &entry.session;
}

const Session *
SessionTable::find(SessionId id) const
{
    return const_cast<SessionTable *>(this)->find(id);
}

void
SessionTable::close(SessionId id)
{
    if (find(id) == nullptr)
        return;
    const std::uint32_t slot =
        static_cast<std::uint32_t>((id >> 32) - 1);
    Slot &entry = slots_[slot];
    ++entry.generation; // invalidates the handle
    entry.next_free = free_head_;
    free_head_ = slot;
    --active_;
    ++closed_;
}

} // namespace helm::gateway
