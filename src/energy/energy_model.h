/**
 * @file
 * System energy model for out-of-core serving runs.
 *
 * The paper's closing argument is that careful placement lets
 * high-capacity-but-slow memory replace DRAM "improving overall system
 * energy efficiency" (Abstract).  This module makes that claim
 * computable: given a finished run, it integrates GPU busy/idle power,
 * per-byte transfer energy, and each memory technology's static
 * (refresh/standby) power into joules per generated token.
 *
 * Constants are literature-derived and kept in one place
 * (DevicePowerModel presets) so they can be re-pinned; sources noted
 * per value.
 */
#ifndef HELM_ENERGY_ENERGY_MODEL_H
#define HELM_ENERGY_ENERGY_MODEL_H

#include "common/units.h"
#include "gpu/gpu.h"
#include "mem/host_system.h"
#include "runtime/engine.h"

namespace helm::energy {

/** Power/energy description of one memory technology. */
struct DevicePowerModel
{
    double static_watts = 0.0;      //!< background (refresh/standby)
    double read_pj_per_byte = 0.0;  //!< dynamic read energy
    double write_pj_per_byte = 0.0; //!< dynamic write energy

    /** 256 GiB of DDR4 RDIMMs: ~4 W/64 GiB standby (refresh + PLL),
     *  ~150 pJ/B reads (~19 pJ/bit incl. I/O), writes slightly higher. */
    static DevicePowerModel ddr4_256g();

    /** 1 TiB of Optane DCPMM: far lower standby per byte (no refresh;
     *  ~1.3 W/128 GiB module idle), but ~2x DRAM read energy and ~6x
     *  write energy (3D-XPoint media costs; Izraelevitz et al.). */
    static DevicePowerModel optane_1t();

    /** Memory Mode: Optane backing plus the DRAM cache's refresh. */
    static DevicePowerModel memory_mode();

    /** CXL expander: single-channel DRAM + controller (~6 W). */
    static DevicePowerModel cxl_expander();
};

/** Platform-level power constants. */
struct PlatformPower
{
    double gpu_busy_watts = 400.0; //!< A100 SXM/PCIe board power, busy
    double gpu_idle_watts = 55.0;  //!< A100 idle board power
    double host_cpu_watts = 90.0;  //!< orchestration share of the CPU
    double pcie_pj_per_byte = 62.5; //!< ~5 pJ/bit link + PHY energy

    static PlatformPower defaults() { return PlatformPower{}; }
};

/** Itemized energy of one serving run. */
struct EnergyBreakdown
{
    double gpu_joules = 0.0;         //!< busy + idle integral
    double host_dynamic_joules = 0.0;//!< reads/writes of host memory
    double host_static_joules = 0.0; //!< refresh/standby over the run
    double pcie_joules = 0.0;        //!< link transfer energy
    double cpu_joules = 0.0;         //!< host orchestration
    Seconds duration = 0.0;
    std::uint64_t tokens = 0;

    double
    total_joules() const
    {
        return gpu_joules + host_dynamic_joules + host_static_joules +
               pcie_joules + cpu_joules;
    }

    double
    joules_per_token() const
    {
        return tokens > 0 ? total_joules() / static_cast<double>(tokens)
                          : 0.0;
    }

    double
    average_watts() const
    {
        return duration > 0.0 ? total_joules() / duration : 0.0;
    }
};

/** Power model for a Table II configuration's host memory. */
DevicePowerModel host_power_model(mem::ConfigKind kind);

/**
 * Estimate the energy of a finished run.
 *
 * @param result Must have been produced with keep_records = true (the
 *               byte and busy-time accounting comes from the records).
 * @param memory The run's memory configuration (selects the host power
 *               model).
 * @param gpu The run's GPU spec.
 * @param platform Platform constants; defaults match the paper's node.
 */
Result<EnergyBreakdown>
estimate_energy(const runtime::RunResult &result, mem::ConfigKind memory,
                const gpu::GpuSpec &gpu,
                const PlatformPower &platform = PlatformPower::defaults());

} // namespace helm::energy

#endif // HELM_ENERGY_ENERGY_MODEL_H
