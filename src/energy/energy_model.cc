#include "energy/energy_model.h"

namespace helm::energy {

DevicePowerModel
DevicePowerModel::ddr4_256g()
{
    DevicePowerModel m;
    // 16 RDIMMs x ~1 W standby (refresh + register/PLL).
    m.static_watts = 16.0;
    m.read_pj_per_byte = 150.0;
    m.write_pj_per_byte = 170.0;
    return m;
}

DevicePowerModel
DevicePowerModel::optane_1t()
{
    DevicePowerModel m;
    // 8 x 128 GiB DCPMMs at ~1.3 W idle: persistence means no refresh.
    m.static_watts = 10.4;
    // 3D-XPoint media reads ~2x DRAM energy, writes ~6x (write-in-place
    // phase change).
    m.read_pj_per_byte = 300.0;
    m.write_pj_per_byte = 900.0;
    return m;
}

DevicePowerModel
DevicePowerModel::memory_mode()
{
    // Optane backing plus the full DRAM cache kept powered.
    DevicePowerModel m = optane_1t();
    m.static_watts += ddr4_256g().static_watts;
    // Hits are DRAM-priced; misses Optane-priced.  Approximate with a
    // cache-favoring mix (the planner keeps hit ratios high).
    m.read_pj_per_byte = 0.7 * ddr4_256g().read_pj_per_byte +
                         0.3 * optane_1t().read_pj_per_byte;
    m.write_pj_per_byte = 0.7 * ddr4_256g().write_pj_per_byte +
                          0.3 * optane_1t().write_pj_per_byte;
    return m;
}

DevicePowerModel
DevicePowerModel::cxl_expander()
{
    DevicePowerModel m;
    // Single-channel DIMM + CXL controller ASIC/FPGA.
    m.static_watts = 8.0;
    // CXL transfers are more energy-efficient per bit than DDR pins
    // (Sec. II-D), but the expander adds controller overhead.
    m.read_pj_per_byte = 180.0;
    m.write_pj_per_byte = 210.0;
    return m;
}

DevicePowerModel
host_power_model(mem::ConfigKind kind)
{
    switch (kind) {
      case mem::ConfigKind::kDram:
        return DevicePowerModel::ddr4_256g();
      case mem::ConfigKind::kNvdram:
        return DevicePowerModel::optane_1t();
      case mem::ConfigKind::kMemoryMode:
        return DevicePowerModel::memory_mode();
      case mem::ConfigKind::kSsd:
      case mem::ConfigKind::kFsdax: {
        // DRAM host tier plus Optane storage standby.
        DevicePowerModel m = DevicePowerModel::ddr4_256g();
        m.static_watts += DevicePowerModel::optane_1t().static_watts;
        return m;
      }
      case mem::ConfigKind::kCxlFpga:
      case mem::ConfigKind::kCxlAsic:
        return DevicePowerModel::cxl_expander();
    }
    HELM_ASSERT(false, "unknown ConfigKind");
    return DevicePowerModel{};
}

Result<EnergyBreakdown>
estimate_energy(const runtime::RunResult &result, mem::ConfigKind memory,
                const gpu::GpuSpec &gpu, const PlatformPower &platform)
{
    if (result.records.empty()) {
        return Status::failed_precondition(
            "energy estimation needs per-step records "
            "(run with keep_records = true)");
    }

    EnergyBreakdown e;
    e.duration = result.metrics.total_time;
    e.tokens = result.metrics.total_tokens;

    Seconds gpu_busy = 0.0;
    Bytes host_reads = 0;
    Bytes host_writes = 0;
    for (const auto &rec : result.records) {
        gpu_busy += rec.compute_time + gpu.layer_overhead;
        host_reads += rec.transfer_bytes + rec.kv_read_bytes;
        host_writes += rec.kv_write_bytes;
    }
    const Seconds gpu_idle =
        e.duration > gpu_busy ? e.duration - gpu_busy : 0.0;

    e.gpu_joules = gpu_busy * platform.gpu_busy_watts +
                   gpu_idle * platform.gpu_idle_watts;

    const DevicePowerModel host = host_power_model(memory);
    e.host_static_joules = host.static_watts * e.duration;
    e.host_dynamic_joules =
        (static_cast<double>(host_reads) * host.read_pj_per_byte +
         static_cast<double>(host_writes) * host.write_pj_per_byte) *
        1e-12;
    e.pcie_joules = static_cast<double>(host_reads + host_writes) *
                    platform.pcie_pj_per_byte * 1e-12;
    e.cpu_joules = platform.host_cpu_watts * e.duration;
    return e;
}

} // namespace helm::energy
