/**
 * @file
 * Tiered KV-cache manager: paged (vLLM-style) block placement across a
 * GPU tier and one or more host tiers.
 *
 * The paper's All-CPU scheme wins throughput by freeing GPU memory for
 * the KV cache, and its Sec. VI notes cache offloading "can be combined
 * with our work to further increase batch sizes".  This subsystem
 * models that combination at block granularity: each request's K/V
 * entries are appended into fixed-size token blocks, every block is
 * resident in exactly one tier, and when the preferred (GPU) tier fills
 * up a pluggable eviction policy demotes victim blocks to the next host
 * tier with space.  The engine charges each decode step's per-tier
 * reads/writes through the discrete-event simulator, so the NVDRAM
 * write ceiling (Fig. 3b, 3.26 GB/s) becomes visible per block instead
 * of per whole-cache bool.
 *
 * The manager itself is pure bookkeeping — bytes in, bytes out, no
 * timing.  Bandwidth caps are resolved by the engine against the run's
 * mem::HostMemorySystem (or a tier's explicit override), keeping the
 * layering rule that only `runtime` knows about time.
 */
#ifndef HELM_KVCACHE_KVCACHE_H
#define HELM_KVCACHE_KVCACHE_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/units.h"
#include "model/transformer.h"

namespace helm::kvcache {

/** Which resident block to demote when the preferred tier is full. */
enum class EvictionPolicy
{
    /** Least-recently-touched block (oldest K/V entries go first). */
    kLru,
    /** Victim blocks come from the request with the longest context. */
    kLongestContextFirst,
};

/** Printable name ("lru", "longest-context"). */
const char *eviction_policy_name(EvictionPolicy policy);

/** Parse a policy name (case-sensitive, as printed). */
Result<EvictionPolicy> parse_eviction_policy(const std::string &name);

/** One placement tier for KV blocks, in allocation-preference order. */
struct TierSpec
{
    std::string name;    //!< diagnostic label ("gpu", "nvdram", ...)
    /** Block capacity in bytes; 0 = unbounded. */
    Bytes capacity = 0;
    /** GPU-resident tier: reads/writes are free (no PCIe traffic). */
    bool is_gpu = false;
    /**
     * GPU tier only: let the engine size the capacity from the
     * planner's free-HBM math at the run batch (capacity is ignored).
     */
    bool auto_capacity = false;
    /**
     * Host-tier -> GPU bandwidth cap for KV reads.  Zero = resolve from
     * the run's HostMemorySystem (host_to_gpu_bw at the flow size).
     */
    Bandwidth read_bw;
    /** GPU -> tier cap for KV writes; zero = gpu_to_host_bw. */
    Bandwidth write_bw;
};

/** Complete managed-KV configuration. */
struct KvCacheConfig
{
    /** Tokens per block (vLLM-style page; 16 is vLLM's default). */
    std::uint64_t block_tokens = 16;
    /** Tiers in allocation-preference (and demotion) order. */
    std::vector<TierSpec> tiers;
    EvictionPolicy eviction = EvictionPolicy::kLru;
    /**
     * Overlap the next step's host-resident KV reads with the current
     * step's compute (issued alongside the weight prefetch).  Off =
     * reads block the step's compute, exposing the fetch latency.
     */
    bool prefetch = true;

    Status validate() const;

    /** Everything on the GPU, unbounded: `offload_kv_cache = false`. */
    static KvCacheConfig gpu_only();

    /**
     * The `offload_kv_cache = true` compatibility shim: one unbounded
     * host tier, no GPU tier.  Byte-for-byte the legacy whole-cache
     * offload — every decode step re-streams the full context and new
     * K/V entries drain at the host write bandwidth.
     */
    static KvCacheConfig legacy_offload();

    /**
     * The managed default: an auto-sized GPU tier backed by one host
     * tier of @p host_capacity bytes (0 = unbounded).
     */
    static KvCacheConfig tiered(Bytes host_capacity = 0);
};

/** Occupancy + traffic accounting for one tier. */
struct TierStats
{
    std::string name;
    Bytes capacity = 0;        //!< 0 = unbounded
    Bytes occupancy = 0;       //!< whole-block bytes currently held
    Bytes peak_occupancy = 0;
    std::uint64_t blocks = 0;  //!< blocks currently resident
    Bytes read_bytes = 0;      //!< tier -> GPU context fetch (all layers)
    Bytes write_bytes = 0;     //!< GPU -> tier K/V appends
    Bytes demoted_in_bytes = 0;  //!< arrived by demotion from above
    Bytes promoted_out_bytes = 0;//!< left by promotion toward the GPU
    /** Context-block touches during decode reads: each is a hit when
     *  the tier is GPU-resident, a (paid) miss otherwise. */
    std::uint64_t lookups = 0;
};

/** Aggregate manager statistics over its lifetime. */
struct KvCacheStats
{
    std::vector<TierStats> tiers;
    std::uint64_t demotions = 0;  //!< blocks pushed down a tier
    std::uint64_t promotions = 0; //!< blocks pulled back up
};

/** Per-request residency snapshot. */
struct RequestKvStats
{
    std::uint64_t id = 0;
    std::uint64_t tokens = 0;
    std::vector<std::uint64_t> blocks_on_tier; //!< indexed by tier
};

/**
 * Per-tier transfer demand of one engine token step, for ONE MHA layer
 * (every decoder block moves the same bytes; the engine stamps these
 * onto each MHA step of the token).  Indexed by tier.
 */
struct StepTraffic
{
    std::vector<Bytes> read_bytes;  //!< tier -> GPU (context fetch)
    std::vector<Bytes> write_bytes; //!< GPU -> tier (appends + demotions)
};

/**
 * The block manager.  One instance per engine run (or per serving
 * admission horizon); all operations are deterministic — std::map
 * iteration order, explicit tie-breaks, no wall-clock input.
 *
 * Invariants (pinned by tests/kvcache/kvcache_property_test.cc):
 *  - a block is resident in exactly one tier;
 *  - no bounded tier's occupancy ever exceeds its capacity;
 *  - identical call sequences yield identical placements.
 */
class KvCacheManager
{
  public:
    /** Validates @p config; tiers with auto_capacity must be resolved
     *  (engine fills in the planner capacity) before blocks allocate. */
    static Result<KvCacheManager> create(KvCacheConfig config,
                                         const model::TransformerConfig &model);

    // ---- Geometry -----------------------------------------------------
    /** K+V bytes of one token, one MHA layer (4 x kv_dim for FP16). */
    Bytes token_bytes_per_layer() const { return token_layer_bytes_; }
    /** Whole-model bytes of one full block (all decoder blocks). */
    Bytes block_bytes() const { return block_bytes_; }
    /** Blocks needed to hold @p tokens of context. */
    std::uint64_t blocks_for_tokens(std::uint64_t tokens) const;
    /**
     * How many requests of @p max_context tokens fit the configured
     * capacities, capped at @p limit (returned for unbounded tiers).
     */
    std::uint64_t request_slots(std::uint64_t max_context,
                                std::uint64_t limit = 4096) const;

    // ---- Request lifecycle -------------------------------------------
    /** Register an empty request; ids must be unique among live ones. */
    Status add_request(std::uint64_t id);
    /**
     * Release a request's blocks, then promote the most-recently-touched
     * lower-tier blocks into the space it freed.
     */
    Status free_request(std::uint64_t id);
    /** Would @p tokens more tokens (across all live requests) fit? */
    bool can_grow(std::uint64_t request_id, std::uint64_t tokens) const;

    /**
     * One engine token step: append @p new_tokens to EVERY live request
     * (in id order), evicting/demoting as capacity demands, and return
     * the per-MHA-layer traffic.  @p count_reads adds the decode-step
     * context fetch (all host-resident tokens after the append);
     * prefill passes false — the K/V it attends to was just computed on
     * the GPU.  kCapacityExceeded when a block fits no tier.
     */
    Result<StepTraffic> step(std::uint64_t new_tokens, bool count_reads);

    /** Drop every live request (next engine repeat); stats persist. */
    void reset_requests();

    // ---- Introspection ------------------------------------------------
    std::size_t tier_count() const { return config_.tiers.size(); }
    const TierSpec &tier(std::size_t i) const { return config_.tiers[i]; }
    const KvCacheConfig &config() const { return config_; }
    const KvCacheStats &stats() const { return stats_; }
    std::vector<RequestKvStats> request_stats() const;
    /** Tier occupancy in whole-block bytes. */
    Bytes tier_occupancy(std::size_t i) const;
    /** FNV-1a digest of the full (request, block, tier) placement. */
    std::uint64_t placement_digest() const;

  private:
    struct BlockState
    {
        std::size_t tier = 0;
        std::uint64_t tokens = 0;     //!< valid tokens in the block
        std::uint64_t last_touch = 0; //!< manager clock of last access
    };
    struct RequestState
    {
        std::uint64_t tokens = 0;
        std::vector<BlockState> blocks;
    };

    KvCacheManager(KvCacheConfig config, Bytes token_layer_bytes,
                   std::uint64_t mha_layers);

    bool tier_fits_block(std::size_t tier) const;
    /** Place a fresh block; may demote a victim.  Returns tier index. */
    Result<std::size_t> allocate_block(std::uint64_t request_id,
                                       StepTraffic *traffic);
    /** Pick the eviction victim on @p tier; false if none. */
    bool pick_victim(std::size_t tier, std::uint64_t *request_id,
                     std::size_t *block_index) const;
    void account_occupancy(std::size_t tier, std::int64_t blocks_delta);

    KvCacheConfig config_;
    Bytes token_layer_bytes_ = 0; //!< K+V bytes per token per MHA layer
    std::uint64_t mha_layers_ = 0;
    Bytes block_bytes_ = 0;       //!< whole-model bytes per block
    std::map<std::uint64_t, RequestState> requests_;
    std::uint64_t clock_ = 0;
    KvCacheStats stats_;
};

} // namespace helm::kvcache

#endif // HELM_KVCACHE_KVCACHE_H
