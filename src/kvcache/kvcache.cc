#include "kvcache/kvcache.h"

#include <algorithm>
#include <limits>

#include "model/footprint.h"

namespace helm::kvcache {

const char *
eviction_policy_name(EvictionPolicy policy)
{
    switch (policy) {
      case EvictionPolicy::kLru:
        return "lru";
      case EvictionPolicy::kLongestContextFirst:
        return "longest-context";
    }
    return "unknown";
}

Result<EvictionPolicy>
parse_eviction_policy(const std::string &name)
{
    if (name == "lru")
        return EvictionPolicy::kLru;
    if (name == "longest-context" || name == "longest")
        return EvictionPolicy::kLongestContextFirst;
    return Status::not_found("unknown eviction policy: " + name +
                             " (lru, longest-context)");
}

Status
KvCacheConfig::validate() const
{
    if (block_tokens < 1)
        return Status::invalid_argument("block_tokens must be >= 1");
    if (tiers.empty())
        return Status::invalid_argument("KV cache needs at least one tier");
    for (std::size_t i = 0; i < tiers.size(); ++i) {
        const TierSpec &t = tiers[i];
        if (t.name.empty())
            return Status::invalid_argument("KV tier names must be set");
        if (t.is_gpu && i != 0) {
            return Status::invalid_argument(
                "the GPU tier must be the first (preferred) tier");
        }
        if (t.auto_capacity && !t.is_gpu) {
            return Status::invalid_argument(
                "auto_capacity is only meaningful for the GPU tier");
        }
        for (std::size_t j = i + 1; j < tiers.size(); ++j) {
            if (tiers[j].name == t.name) {
                return Status::invalid_argument("duplicate KV tier name: " +
                                                t.name);
            }
        }
    }
    return Status::ok();
}

KvCacheConfig
KvCacheConfig::gpu_only()
{
    KvCacheConfig config;
    TierSpec gpu;
    gpu.name = "gpu";
    gpu.is_gpu = true;
    config.tiers.push_back(gpu);
    return config;
}

KvCacheConfig
KvCacheConfig::legacy_offload()
{
    KvCacheConfig config;
    TierSpec host;
    host.name = "host";
    config.tiers.push_back(host);
    return config;
}

KvCacheConfig
KvCacheConfig::tiered(Bytes host_capacity)
{
    KvCacheConfig config;
    TierSpec gpu;
    gpu.name = "gpu";
    gpu.is_gpu = true;
    gpu.auto_capacity = true;
    TierSpec host;
    host.name = "host";
    host.capacity = host_capacity;
    config.tiers = {gpu, host};
    return config;
}

KvCacheManager::KvCacheManager(KvCacheConfig config,
                               Bytes token_layer_bytes,
                               std::uint64_t mha_layers)
    : config_(std::move(config)),
      token_layer_bytes_(token_layer_bytes),
      mha_layers_(mha_layers),
      block_bytes_(config_.block_tokens * token_layer_bytes * mha_layers)
{
    stats_.tiers.resize(config_.tiers.size());
    for (std::size_t i = 0; i < config_.tiers.size(); ++i) {
        stats_.tiers[i].name = config_.tiers[i].name;
        stats_.tiers[i].capacity = config_.tiers[i].capacity;
    }
}

Result<KvCacheManager>
KvCacheManager::create(KvCacheConfig config,
                       const model::TransformerConfig &model)
{
    HELM_RETURN_IF_ERROR(config.validate());
    if (model.hidden == 0 || model.blocks == 0)
        return Status::invalid_argument("model config is incomplete");
    // K + V for one token of one decoder block (4 x kv_dim at FP16).
    const Bytes token_layer = model::kv_bytes_per_block(model, 1);
    for (const TierSpec &tier : config.tiers) {
        // A GPU tier squeezed below one block just never holds KV; a
        // host tier that small is a configuration mistake.
        if (tier.is_gpu)
            continue;
        if (tier.capacity > 0 &&
            tier.capacity < config.block_tokens * token_layer * model.blocks) {
            return Status::invalid_argument(
                "KV tier '" + tier.name + "' capacity " +
                format_bytes(tier.capacity) + " holds no block (block = " +
                format_bytes(config.block_tokens * token_layer *
                             model.blocks) +
                ")");
        }
    }
    return KvCacheManager(std::move(config), token_layer, model.blocks);
}

std::uint64_t
KvCacheManager::blocks_for_tokens(std::uint64_t tokens) const
{
    return (tokens + config_.block_tokens - 1) / config_.block_tokens;
}

std::uint64_t
KvCacheManager::request_slots(std::uint64_t max_context,
                              std::uint64_t limit) const
{
    const std::uint64_t per_request = blocks_for_tokens(max_context);
    if (per_request == 0)
        return limit;
    std::uint64_t total_blocks = 0;
    for (const TierSpec &tier : config_.tiers) {
        if (tier.capacity == 0)
            return limit; // an unbounded tier absorbs any context
        total_blocks += tier.capacity / block_bytes_;
    }
    return std::min(limit, total_blocks / per_request);
}

Status
KvCacheManager::add_request(std::uint64_t id)
{
    if (requests_.count(id) > 0) {
        return Status::invalid_argument("request " + std::to_string(id) +
                                        " already holds KV blocks");
    }
    requests_.emplace(id, RequestState{});
    return Status::ok();
}

Status
KvCacheManager::free_request(std::uint64_t id)
{
    const auto it = requests_.find(id);
    if (it == requests_.end()) {
        return Status::not_found("request " + std::to_string(id) +
                                 " holds no KV blocks");
    }
    for (const BlockState &block : it->second.blocks)
        account_occupancy(block.tier, -1);
    requests_.erase(it);

    // Back-fill the freed space: pull the most-recently-touched blocks
    // from lower tiers toward the front of the hierarchy.
    bool moved = true;
    while (moved) {
        moved = false;
        for (std::size_t target = 0; target < config_.tiers.size();
             ++target) {
            if (!tier_fits_block(target))
                continue;
            std::uint64_t best_request = 0;
            std::size_t best_index = 0;
            const BlockState *best = nullptr;
            for (const auto &[rid, request] : requests_) {
                for (std::size_t bi = 0; bi < request.blocks.size(); ++bi) {
                    const BlockState &candidate = request.blocks[bi];
                    if (candidate.tier <= target)
                        continue;
                    if (best == nullptr ||
                        candidate.last_touch > best->last_touch ||
                        (candidate.last_touch == best->last_touch &&
                         (rid > best_request ||
                          (rid == best_request && bi > best_index)))) {
                        best = &candidate;
                        best_request = rid;
                        best_index = bi;
                    }
                }
            }
            if (best == nullptr)
                continue;
            BlockState &block =
                requests_.at(best_request).blocks[best_index];
            const Bytes moved_bytes =
                block.tokens * token_layer_bytes_ * mha_layers_;
            stats_.tiers[block.tier].promoted_out_bytes += moved_bytes;
            ++stats_.promotions;
            account_occupancy(block.tier, -1);
            block.tier = target;
            account_occupancy(target, +1);
            moved = true;
            break;
        }
    }
    return Status::ok();
}

bool
KvCacheManager::can_grow(std::uint64_t request_id,
                         std::uint64_t tokens) const
{
    const auto it = requests_.find(request_id);
    const std::uint64_t have = it == requests_.end() ? 0 : it->second.tokens;
    const std::uint64_t have_blocks =
        it == requests_.end() ? 0 : it->second.blocks.size();
    const std::uint64_t needed =
        blocks_for_tokens(have + tokens) - have_blocks;
    std::uint64_t free_blocks = 0;
    for (std::size_t i = 0; i < config_.tiers.size(); ++i) {
        if (config_.tiers[i].capacity == 0)
            return true;
        const Bytes used = tier_occupancy(i);
        free_blocks += (config_.tiers[i].capacity - used) / block_bytes_;
    }
    return free_blocks >= needed;
}

bool
KvCacheManager::tier_fits_block(std::size_t tier) const
{
    const TierSpec &spec = config_.tiers[tier];
    if (spec.capacity == 0)
        return true;
    return tier_occupancy(tier) + block_bytes_ <= spec.capacity;
}

bool
KvCacheManager::pick_victim(std::size_t tier, std::uint64_t *request_id,
                            std::size_t *block_index) const
{
    const BlockState *victim = nullptr;
    if (config_.eviction == EvictionPolicy::kLongestContextFirst) {
        // Victim owner: the request holding the most context (ties to
        // the larger id); victim block: its oldest block on the tier.
        const RequestState *owner = nullptr;
        for (const auto &[rid, request] : requests_) {
            bool resident = false;
            for (const BlockState &block : request.blocks)
                resident |= block.tier == tier;
            if (!resident)
                continue;
            if (owner == nullptr || request.tokens >= owner->tokens) {
                owner = &request;
                *request_id = rid;
            }
        }
        if (owner == nullptr)
            return false;
        for (std::size_t bi = 0; bi < owner->blocks.size(); ++bi) {
            if (owner->blocks[bi].tier == tier) {
                *block_index = bi;
                return true;
            }
        }
        return false;
    }
    // LRU: least-recently-touched block; ties break toward the lowest
    // (request id, block index) — the oldest K/V entries.
    for (const auto &[rid, request] : requests_) {
        for (std::size_t bi = 0; bi < request.blocks.size(); ++bi) {
            const BlockState &candidate = request.blocks[bi];
            if (candidate.tier != tier)
                continue;
            if (victim == nullptr ||
                candidate.last_touch < victim->last_touch) {
                victim = &candidate;
                *request_id = rid;
                *block_index = bi;
            }
        }
    }
    return victim != nullptr;
}

Result<std::size_t>
KvCacheManager::allocate_block(std::uint64_t request_id,
                               StepTraffic *traffic)
{
    // Preferred tier first; if it is full, demote a victim block to the
    // first lower tier with space and place the fresh (hot) block on top.
    if (!tier_fits_block(0) && config_.tiers.size() > 1) {
        std::uint64_t victim_request = 0;
        std::size_t victim_index = 0;
        if (pick_victim(0, &victim_request, &victim_index)) {
            std::size_t target = config_.tiers.size();
            for (std::size_t j = 1; j < config_.tiers.size(); ++j) {
                if (tier_fits_block(j)) {
                    target = j;
                    break;
                }
            }
            if (target < config_.tiers.size()) {
                BlockState &victim =
                    requests_.at(victim_request).blocks[victim_index];
                const Bytes layer_bytes =
                    victim.tokens * token_layer_bytes_;
                if (!config_.tiers[target].is_gpu)
                    traffic->write_bytes[target] += layer_bytes;
                stats_.tiers[target].demoted_in_bytes +=
                    layer_bytes * mha_layers_;
                ++stats_.demotions;
                account_occupancy(victim.tier, -1);
                victim.tier = target;
                account_occupancy(target, +1);
            }
        }
    }
    for (std::size_t i = 0; i < config_.tiers.size(); ++i) {
        if (tier_fits_block(i)) {
            account_occupancy(i, +1);
            return i;
        }
    }
    (void)request_id;
    return Status::capacity_exceeded(
        "KV cache exhausted: no tier can hold another block of " +
        format_bytes(block_bytes_));
}

Result<StepTraffic>
KvCacheManager::step(std::uint64_t new_tokens, bool count_reads)
{
    ++clock_;
    StepTraffic traffic;
    traffic.read_bytes.assign(config_.tiers.size(), 0);
    traffic.write_bytes.assign(config_.tiers.size(), 0);

    for (auto &[rid, request] : requests_) {
        std::uint64_t remaining = new_tokens;
        while (remaining > 0) {
            if (request.blocks.empty() ||
                request.blocks.back().tokens == config_.block_tokens) {
                const auto tier = allocate_block(rid, &traffic);
                if (!tier.is_ok())
                    return tier.status();
                BlockState fresh;
                fresh.tier = *tier;
                request.blocks.push_back(fresh);
            }
            BlockState &block = request.blocks.back();
            const std::uint64_t fill = std::min(
                remaining, config_.block_tokens - block.tokens);
            block.tokens += fill;
            block.last_touch = clock_;
            request.tokens += fill;
            remaining -= fill;
            if (!config_.tiers[block.tier].is_gpu) {
                const Bytes layer_bytes = fill * token_layer_bytes_;
                traffic.write_bytes[block.tier] += layer_bytes;
                stats_.tiers[block.tier].write_bytes +=
                    layer_bytes * mha_layers_;
            }
        }
    }

    if (count_reads) {
        // Decode attention streams the whole context in; GPU-resident
        // blocks are free, host-resident blocks pay their tier's path.
        for (auto &[rid, request] : requests_) {
            for (BlockState &block : request.blocks) {
                block.last_touch = clock_;
                ++stats_.tiers[block.tier].lookups;
                if (config_.tiers[block.tier].is_gpu)
                    continue;
                const Bytes layer_bytes =
                    block.tokens * token_layer_bytes_;
                traffic.read_bytes[block.tier] += layer_bytes;
                stats_.tiers[block.tier].read_bytes +=
                    layer_bytes * mha_layers_;
            }
        }
    }
    return traffic;
}

void
KvCacheManager::reset_requests()
{
    for (const auto &[rid, request] : requests_) {
        for (const BlockState &block : request.blocks)
            account_occupancy(block.tier, -1);
    }
    requests_.clear();
}

std::vector<RequestKvStats>
KvCacheManager::request_stats() const
{
    std::vector<RequestKvStats> out;
    out.reserve(requests_.size());
    for (const auto &[rid, request] : requests_) {
        RequestKvStats stats;
        stats.id = rid;
        stats.tokens = request.tokens;
        stats.blocks_on_tier.assign(config_.tiers.size(), 0);
        for (const BlockState &block : request.blocks)
            ++stats.blocks_on_tier[block.tier];
        out.push_back(std::move(stats));
    }
    return out;
}

Bytes
KvCacheManager::tier_occupancy(std::size_t i) const
{
    return stats_.tiers[i].occupancy;
}

void
KvCacheManager::account_occupancy(std::size_t tier,
                                  std::int64_t blocks_delta)
{
    TierStats &stats = stats_.tiers[tier];
    if (blocks_delta > 0) {
        stats.blocks += static_cast<std::uint64_t>(blocks_delta);
        stats.occupancy +=
            static_cast<Bytes>(blocks_delta) * block_bytes_;
        stats.peak_occupancy = std::max(stats.peak_occupancy,
                                        stats.occupancy);
    } else {
        const std::uint64_t drop =
            static_cast<std::uint64_t>(-blocks_delta);
        HELM_ASSERT(stats.blocks >= drop, "KV tier occupancy underflow");
        stats.blocks -= drop;
        stats.occupancy -= drop * block_bytes_;
    }
}

std::uint64_t
KvCacheManager::placement_digest() const
{
    // FNV-1a over the (request, block, tier, tokens) placement tuples.
    std::uint64_t hash = 1469598103934665603ull;
    auto mix = [&hash](std::uint64_t value) {
        for (int shift = 0; shift < 64; shift += 8) {
            hash ^= (value >> shift) & 0xff;
            hash *= 1099511628211ull;
        }
    };
    for (const auto &[rid, request] : requests_) {
        mix(rid);
        for (const BlockState &block : request.blocks) {
            mix(block.tier);
            mix(block.tokens);
        }
    }
    return hash;
}

} // namespace helm::kvcache
