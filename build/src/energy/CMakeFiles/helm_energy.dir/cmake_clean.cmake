file(REMOVE_RECURSE
  "CMakeFiles/helm_energy.dir/energy_model.cc.o"
  "CMakeFiles/helm_energy.dir/energy_model.cc.o.d"
  "libhelm_energy.a"
  "libhelm_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/helm_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
