file(REMOVE_RECURSE
  "libhelm_energy.a"
)
