# Empty compiler generated dependencies file for helm_energy.
# This may be replaced when dependencies are built.
