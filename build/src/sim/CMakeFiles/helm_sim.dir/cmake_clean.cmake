file(REMOVE_RECURSE
  "CMakeFiles/helm_sim.dir/bandwidth_channel.cc.o"
  "CMakeFiles/helm_sim.dir/bandwidth_channel.cc.o.d"
  "CMakeFiles/helm_sim.dir/resource.cc.o"
  "CMakeFiles/helm_sim.dir/resource.cc.o.d"
  "CMakeFiles/helm_sim.dir/simulator.cc.o"
  "CMakeFiles/helm_sim.dir/simulator.cc.o.d"
  "libhelm_sim.a"
  "libhelm_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/helm_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
