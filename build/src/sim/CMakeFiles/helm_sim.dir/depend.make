# Empty dependencies file for helm_sim.
# This may be replaced when dependencies are built.
