file(REMOVE_RECURSE
  "libhelm_sim.a"
)
