file(REMOVE_RECURSE
  "libhelm_placement.a"
)
