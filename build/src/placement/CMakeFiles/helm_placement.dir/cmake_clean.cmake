file(REMOVE_RECURSE
  "CMakeFiles/helm_placement.dir/all_cpu.cc.o"
  "CMakeFiles/helm_placement.dir/all_cpu.cc.o.d"
  "CMakeFiles/helm_placement.dir/balanced.cc.o"
  "CMakeFiles/helm_placement.dir/balanced.cc.o.d"
  "CMakeFiles/helm_placement.dir/baseline.cc.o"
  "CMakeFiles/helm_placement.dir/baseline.cc.o.d"
  "CMakeFiles/helm_placement.dir/capacity.cc.o"
  "CMakeFiles/helm_placement.dir/capacity.cc.o.d"
  "CMakeFiles/helm_placement.dir/helm_placement.cc.o"
  "CMakeFiles/helm_placement.dir/helm_placement.cc.o.d"
  "CMakeFiles/helm_placement.dir/placement.cc.o"
  "CMakeFiles/helm_placement.dir/placement.cc.o.d"
  "CMakeFiles/helm_placement.dir/policy.cc.o"
  "CMakeFiles/helm_placement.dir/policy.cc.o.d"
  "libhelm_placement.a"
  "libhelm_placement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/helm_placement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
