
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/placement/all_cpu.cc" "src/placement/CMakeFiles/helm_placement.dir/all_cpu.cc.o" "gcc" "src/placement/CMakeFiles/helm_placement.dir/all_cpu.cc.o.d"
  "/root/repo/src/placement/balanced.cc" "src/placement/CMakeFiles/helm_placement.dir/balanced.cc.o" "gcc" "src/placement/CMakeFiles/helm_placement.dir/balanced.cc.o.d"
  "/root/repo/src/placement/baseline.cc" "src/placement/CMakeFiles/helm_placement.dir/baseline.cc.o" "gcc" "src/placement/CMakeFiles/helm_placement.dir/baseline.cc.o.d"
  "/root/repo/src/placement/capacity.cc" "src/placement/CMakeFiles/helm_placement.dir/capacity.cc.o" "gcc" "src/placement/CMakeFiles/helm_placement.dir/capacity.cc.o.d"
  "/root/repo/src/placement/helm_placement.cc" "src/placement/CMakeFiles/helm_placement.dir/helm_placement.cc.o" "gcc" "src/placement/CMakeFiles/helm_placement.dir/helm_placement.cc.o.d"
  "/root/repo/src/placement/placement.cc" "src/placement/CMakeFiles/helm_placement.dir/placement.cc.o" "gcc" "src/placement/CMakeFiles/helm_placement.dir/placement.cc.o.d"
  "/root/repo/src/placement/policy.cc" "src/placement/CMakeFiles/helm_placement.dir/policy.cc.o" "gcc" "src/placement/CMakeFiles/helm_placement.dir/policy.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/helm_common.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/helm_model.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
