# Empty dependencies file for helm_placement.
# This may be replaced when dependencies are built.
