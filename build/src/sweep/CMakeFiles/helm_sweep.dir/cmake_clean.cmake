file(REMOVE_RECURSE
  "CMakeFiles/helm_sweep.dir/dataset.cc.o"
  "CMakeFiles/helm_sweep.dir/dataset.cc.o.d"
  "CMakeFiles/helm_sweep.dir/sweep.cc.o"
  "CMakeFiles/helm_sweep.dir/sweep.cc.o.d"
  "libhelm_sweep.a"
  "libhelm_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/helm_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
