# Empty compiler generated dependencies file for helm_sweep.
# This may be replaced when dependencies are built.
