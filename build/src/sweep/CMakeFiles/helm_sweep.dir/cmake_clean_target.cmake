file(REMOVE_RECURSE
  "libhelm_sweep.a"
)
