# Empty dependencies file for helm_membench.
# This may be replaced when dependencies are built.
