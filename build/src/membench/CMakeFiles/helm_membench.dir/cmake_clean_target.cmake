file(REMOVE_RECURSE
  "libhelm_membench.a"
)
