file(REMOVE_RECURSE
  "CMakeFiles/helm_membench.dir/membench.cc.o"
  "CMakeFiles/helm_membench.dir/membench.cc.o.d"
  "libhelm_membench.a"
  "libhelm_membench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/helm_membench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
