# Empty dependencies file for helm_mem.
# This may be replaced when dependencies are built.
