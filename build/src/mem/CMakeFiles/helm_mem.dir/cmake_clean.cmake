file(REMOVE_RECURSE
  "CMakeFiles/helm_mem.dir/bandwidth_curve.cc.o"
  "CMakeFiles/helm_mem.dir/bandwidth_curve.cc.o.d"
  "CMakeFiles/helm_mem.dir/device.cc.o"
  "CMakeFiles/helm_mem.dir/device.cc.o.d"
  "CMakeFiles/helm_mem.dir/host_system.cc.o"
  "CMakeFiles/helm_mem.dir/host_system.cc.o.d"
  "CMakeFiles/helm_mem.dir/pcie.cc.o"
  "CMakeFiles/helm_mem.dir/pcie.cc.o.d"
  "libhelm_mem.a"
  "libhelm_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/helm_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
