file(REMOVE_RECURSE
  "libhelm_mem.a"
)
