# Empty dependencies file for helm_gpu.
# This may be replaced when dependencies are built.
