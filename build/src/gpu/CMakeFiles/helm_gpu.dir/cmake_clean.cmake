file(REMOVE_RECURSE
  "CMakeFiles/helm_gpu.dir/compute_model.cc.o"
  "CMakeFiles/helm_gpu.dir/compute_model.cc.o.d"
  "CMakeFiles/helm_gpu.dir/gpu.cc.o"
  "CMakeFiles/helm_gpu.dir/gpu.cc.o.d"
  "libhelm_gpu.a"
  "libhelm_gpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/helm_gpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
