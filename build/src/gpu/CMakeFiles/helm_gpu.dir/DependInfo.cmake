
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gpu/compute_model.cc" "src/gpu/CMakeFiles/helm_gpu.dir/compute_model.cc.o" "gcc" "src/gpu/CMakeFiles/helm_gpu.dir/compute_model.cc.o.d"
  "/root/repo/src/gpu/gpu.cc" "src/gpu/CMakeFiles/helm_gpu.dir/gpu.cc.o" "gcc" "src/gpu/CMakeFiles/helm_gpu.dir/gpu.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/helm_common.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/helm_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/helm_model.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
