file(REMOVE_RECURSE
  "libhelm_gpu.a"
)
