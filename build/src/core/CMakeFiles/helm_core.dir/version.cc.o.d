src/core/CMakeFiles/helm_core.dir/version.cc.o: \
 /root/repo/src/core/version.cc /usr/include/stdc-predef.h \
 /root/repo/src/core/../core/version.h
