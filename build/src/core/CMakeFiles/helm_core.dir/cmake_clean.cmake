file(REMOVE_RECURSE
  "CMakeFiles/helm_core.dir/version.cc.o"
  "CMakeFiles/helm_core.dir/version.cc.o.d"
  "libhelm_core.a"
  "libhelm_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/helm_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
