# Empty compiler generated dependencies file for helm_core.
# This may be replaced when dependencies are built.
