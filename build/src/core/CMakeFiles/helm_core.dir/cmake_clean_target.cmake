file(REMOVE_RECURSE
  "libhelm_core.a"
)
