# Empty compiler generated dependencies file for helm_model.
# This may be replaced when dependencies are built.
