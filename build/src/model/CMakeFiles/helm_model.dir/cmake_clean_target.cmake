file(REMOVE_RECURSE
  "libhelm_model.a"
)
