
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/model/dtype.cc" "src/model/CMakeFiles/helm_model.dir/dtype.cc.o" "gcc" "src/model/CMakeFiles/helm_model.dir/dtype.cc.o.d"
  "/root/repo/src/model/footprint.cc" "src/model/CMakeFiles/helm_model.dir/footprint.cc.o" "gcc" "src/model/CMakeFiles/helm_model.dir/footprint.cc.o.d"
  "/root/repo/src/model/llama.cc" "src/model/CMakeFiles/helm_model.dir/llama.cc.o" "gcc" "src/model/CMakeFiles/helm_model.dir/llama.cc.o.d"
  "/root/repo/src/model/opt.cc" "src/model/CMakeFiles/helm_model.dir/opt.cc.o" "gcc" "src/model/CMakeFiles/helm_model.dir/opt.cc.o.d"
  "/root/repo/src/model/transformer.cc" "src/model/CMakeFiles/helm_model.dir/transformer.cc.o" "gcc" "src/model/CMakeFiles/helm_model.dir/transformer.cc.o.d"
  "/root/repo/src/model/weight.cc" "src/model/CMakeFiles/helm_model.dir/weight.cc.o" "gcc" "src/model/CMakeFiles/helm_model.dir/weight.cc.o.d"
  "/root/repo/src/model/zoo.cc" "src/model/CMakeFiles/helm_model.dir/zoo.cc.o" "gcc" "src/model/CMakeFiles/helm_model.dir/zoo.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/helm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
