file(REMOVE_RECURSE
  "CMakeFiles/helm_model.dir/dtype.cc.o"
  "CMakeFiles/helm_model.dir/dtype.cc.o.d"
  "CMakeFiles/helm_model.dir/footprint.cc.o"
  "CMakeFiles/helm_model.dir/footprint.cc.o.d"
  "CMakeFiles/helm_model.dir/llama.cc.o"
  "CMakeFiles/helm_model.dir/llama.cc.o.d"
  "CMakeFiles/helm_model.dir/opt.cc.o"
  "CMakeFiles/helm_model.dir/opt.cc.o.d"
  "CMakeFiles/helm_model.dir/transformer.cc.o"
  "CMakeFiles/helm_model.dir/transformer.cc.o.d"
  "CMakeFiles/helm_model.dir/weight.cc.o"
  "CMakeFiles/helm_model.dir/weight.cc.o.d"
  "CMakeFiles/helm_model.dir/zoo.cc.o"
  "CMakeFiles/helm_model.dir/zoo.cc.o.d"
  "libhelm_model.a"
  "libhelm_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/helm_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
