# Empty compiler generated dependencies file for helm_common.
# This may be replaced when dependencies are built.
