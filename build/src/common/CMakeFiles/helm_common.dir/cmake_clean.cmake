file(REMOVE_RECURSE
  "CMakeFiles/helm_common.dir/args.cc.o"
  "CMakeFiles/helm_common.dir/args.cc.o.d"
  "CMakeFiles/helm_common.dir/csv.cc.o"
  "CMakeFiles/helm_common.dir/csv.cc.o.d"
  "CMakeFiles/helm_common.dir/log.cc.o"
  "CMakeFiles/helm_common.dir/log.cc.o.d"
  "CMakeFiles/helm_common.dir/rng.cc.o"
  "CMakeFiles/helm_common.dir/rng.cc.o.d"
  "CMakeFiles/helm_common.dir/status.cc.o"
  "CMakeFiles/helm_common.dir/status.cc.o.d"
  "CMakeFiles/helm_common.dir/summary.cc.o"
  "CMakeFiles/helm_common.dir/summary.cc.o.d"
  "CMakeFiles/helm_common.dir/table.cc.o"
  "CMakeFiles/helm_common.dir/table.cc.o.d"
  "CMakeFiles/helm_common.dir/units.cc.o"
  "CMakeFiles/helm_common.dir/units.cc.o.d"
  "libhelm_common.a"
  "libhelm_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/helm_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
