file(REMOVE_RECURSE
  "libhelm_common.a"
)
