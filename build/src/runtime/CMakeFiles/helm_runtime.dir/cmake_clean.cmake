file(REMOVE_RECURSE
  "CMakeFiles/helm_runtime.dir/engine.cc.o"
  "CMakeFiles/helm_runtime.dir/engine.cc.o.d"
  "CMakeFiles/helm_runtime.dir/metrics.cc.o"
  "CMakeFiles/helm_runtime.dir/metrics.cc.o.d"
  "CMakeFiles/helm_runtime.dir/planner.cc.o"
  "CMakeFiles/helm_runtime.dir/planner.cc.o.d"
  "CMakeFiles/helm_runtime.dir/serving.cc.o"
  "CMakeFiles/helm_runtime.dir/serving.cc.o.d"
  "CMakeFiles/helm_runtime.dir/trace.cc.o"
  "CMakeFiles/helm_runtime.dir/trace.cc.o.d"
  "CMakeFiles/helm_runtime.dir/tuner.cc.o"
  "CMakeFiles/helm_runtime.dir/tuner.cc.o.d"
  "libhelm_runtime.a"
  "libhelm_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/helm_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
