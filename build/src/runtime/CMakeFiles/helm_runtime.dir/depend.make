# Empty dependencies file for helm_runtime.
# This may be replaced when dependencies are built.
