
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/engine.cc" "src/runtime/CMakeFiles/helm_runtime.dir/engine.cc.o" "gcc" "src/runtime/CMakeFiles/helm_runtime.dir/engine.cc.o.d"
  "/root/repo/src/runtime/metrics.cc" "src/runtime/CMakeFiles/helm_runtime.dir/metrics.cc.o" "gcc" "src/runtime/CMakeFiles/helm_runtime.dir/metrics.cc.o.d"
  "/root/repo/src/runtime/planner.cc" "src/runtime/CMakeFiles/helm_runtime.dir/planner.cc.o" "gcc" "src/runtime/CMakeFiles/helm_runtime.dir/planner.cc.o.d"
  "/root/repo/src/runtime/serving.cc" "src/runtime/CMakeFiles/helm_runtime.dir/serving.cc.o" "gcc" "src/runtime/CMakeFiles/helm_runtime.dir/serving.cc.o.d"
  "/root/repo/src/runtime/trace.cc" "src/runtime/CMakeFiles/helm_runtime.dir/trace.cc.o" "gcc" "src/runtime/CMakeFiles/helm_runtime.dir/trace.cc.o.d"
  "/root/repo/src/runtime/tuner.cc" "src/runtime/CMakeFiles/helm_runtime.dir/tuner.cc.o" "gcc" "src/runtime/CMakeFiles/helm_runtime.dir/tuner.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/helm_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/helm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/helm_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/gpu/CMakeFiles/helm_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/helm_model.dir/DependInfo.cmake"
  "/root/repo/build/src/placement/CMakeFiles/helm_placement.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/helm_workload.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
