file(REMOVE_RECURSE
  "libhelm_runtime.a"
)
