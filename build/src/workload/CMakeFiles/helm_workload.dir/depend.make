# Empty dependencies file for helm_workload.
# This may be replaced when dependencies are built.
