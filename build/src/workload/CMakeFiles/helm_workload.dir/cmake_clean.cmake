file(REMOVE_RECURSE
  "CMakeFiles/helm_workload.dir/workload.cc.o"
  "CMakeFiles/helm_workload.dir/workload.cc.o.d"
  "libhelm_workload.a"
  "libhelm_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/helm_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
