file(REMOVE_RECURSE
  "libhelm_workload.a"
)
