# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_smoke[1]_include.cmake")
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_mem[1]_include.cmake")
include("/root/repo/build/tests/test_model[1]_include.cmake")
include("/root/repo/build/tests/test_gpu[1]_include.cmake")
include("/root/repo/build/tests/test_placement[1]_include.cmake")
include("/root/repo/build/tests/test_runtime[1]_include.cmake")
include("/root/repo/build/tests/test_sweep[1]_include.cmake")
include("/root/repo/build/tests/test_energy[1]_include.cmake")
include("/root/repo/build/tests/test_paper_results[1]_include.cmake")
include("/root/repo/build/tests/test_membench[1]_include.cmake")
include("/root/repo/build/tests/test_workload[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
