# Empty dependencies file for test_membench.
# This may be replaced when dependencies are built.
