file(REMOVE_RECURSE
  "CMakeFiles/test_membench.dir/membench/membench_test.cc.o"
  "CMakeFiles/test_membench.dir/membench/membench_test.cc.o.d"
  "test_membench"
  "test_membench.pdb"
  "test_membench[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_membench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
