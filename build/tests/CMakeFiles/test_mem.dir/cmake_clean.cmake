file(REMOVE_RECURSE
  "CMakeFiles/test_mem.dir/mem/bandwidth_curve_test.cc.o"
  "CMakeFiles/test_mem.dir/mem/bandwidth_curve_test.cc.o.d"
  "CMakeFiles/test_mem.dir/mem/device_test.cc.o"
  "CMakeFiles/test_mem.dir/mem/device_test.cc.o.d"
  "CMakeFiles/test_mem.dir/mem/host_system_test.cc.o"
  "CMakeFiles/test_mem.dir/mem/host_system_test.cc.o.d"
  "CMakeFiles/test_mem.dir/mem/pcie_test.cc.o"
  "CMakeFiles/test_mem.dir/mem/pcie_test.cc.o.d"
  "test_mem"
  "test_mem.pdb"
  "test_mem[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
