file(REMOVE_RECURSE
  "CMakeFiles/test_runtime.dir/runtime/block_schedule_test.cc.o"
  "CMakeFiles/test_runtime.dir/runtime/block_schedule_test.cc.o.d"
  "CMakeFiles/test_runtime.dir/runtime/engine_misc_test.cc.o"
  "CMakeFiles/test_runtime.dir/runtime/engine_misc_test.cc.o.d"
  "CMakeFiles/test_runtime.dir/runtime/engine_test.cc.o"
  "CMakeFiles/test_runtime.dir/runtime/engine_test.cc.o.d"
  "CMakeFiles/test_runtime.dir/runtime/planner_test.cc.o"
  "CMakeFiles/test_runtime.dir/runtime/planner_test.cc.o.d"
  "CMakeFiles/test_runtime.dir/runtime/serving_test.cc.o"
  "CMakeFiles/test_runtime.dir/runtime/serving_test.cc.o.d"
  "CMakeFiles/test_runtime.dir/runtime/trace_tuner_test.cc.o"
  "CMakeFiles/test_runtime.dir/runtime/trace_tuner_test.cc.o.d"
  "test_runtime"
  "test_runtime.pdb"
  "test_runtime[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
