
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/model/dtype_test.cc" "tests/CMakeFiles/test_model.dir/model/dtype_test.cc.o" "gcc" "tests/CMakeFiles/test_model.dir/model/dtype_test.cc.o.d"
  "/root/repo/tests/model/llama_test.cc" "tests/CMakeFiles/test_model.dir/model/llama_test.cc.o" "gcc" "tests/CMakeFiles/test_model.dir/model/llama_test.cc.o.d"
  "/root/repo/tests/model/opt_footprint_test.cc" "tests/CMakeFiles/test_model.dir/model/opt_footprint_test.cc.o" "gcc" "tests/CMakeFiles/test_model.dir/model/opt_footprint_test.cc.o.d"
  "/root/repo/tests/model/transformer_test.cc" "tests/CMakeFiles/test_model.dir/model/transformer_test.cc.o" "gcc" "tests/CMakeFiles/test_model.dir/model/transformer_test.cc.o.d"
  "/root/repo/tests/model/zoo_test.cc" "tests/CMakeFiles/test_model.dir/model/zoo_test.cc.o" "gcc" "tests/CMakeFiles/test_model.dir/model/zoo_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/helm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/energy/CMakeFiles/helm_energy.dir/DependInfo.cmake"
  "/root/repo/build/src/sweep/CMakeFiles/helm_sweep.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/helm_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/membench/CMakeFiles/helm_membench.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/helm_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/placement/CMakeFiles/helm_placement.dir/DependInfo.cmake"
  "/root/repo/build/src/gpu/CMakeFiles/helm_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/helm_model.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/helm_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/helm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/helm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
