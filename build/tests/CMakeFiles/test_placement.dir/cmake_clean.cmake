file(REMOVE_RECURSE
  "CMakeFiles/test_placement.dir/placement/balanced_test.cc.o"
  "CMakeFiles/test_placement.dir/placement/balanced_test.cc.o.d"
  "CMakeFiles/test_placement.dir/placement/baseline_test.cc.o"
  "CMakeFiles/test_placement.dir/placement/baseline_test.cc.o.d"
  "CMakeFiles/test_placement.dir/placement/capacity_test.cc.o"
  "CMakeFiles/test_placement.dir/placement/capacity_test.cc.o.d"
  "CMakeFiles/test_placement.dir/placement/helm_allcpu_test.cc.o"
  "CMakeFiles/test_placement.dir/placement/helm_allcpu_test.cc.o.d"
  "CMakeFiles/test_placement.dir/placement/policy_test.cc.o"
  "CMakeFiles/test_placement.dir/placement/policy_test.cc.o.d"
  "test_placement"
  "test_placement.pdb"
  "test_placement[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_placement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
