# Empty dependencies file for serving_report.
# This may be replaced when dependencies are built.
