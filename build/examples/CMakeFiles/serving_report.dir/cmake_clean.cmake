file(REMOVE_RECURSE
  "CMakeFiles/serving_report.dir/serving_report.cpp.o"
  "CMakeFiles/serving_report.dir/serving_report.cpp.o.d"
  "serving_report"
  "serving_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/serving_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
