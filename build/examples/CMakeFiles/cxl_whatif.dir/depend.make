# Empty dependencies file for cxl_whatif.
# This may be replaced when dependencies are built.
