file(REMOVE_RECURSE
  "CMakeFiles/cxl_whatif.dir/cxl_whatif.cpp.o"
  "CMakeFiles/cxl_whatif.dir/cxl_whatif.cpp.o.d"
  "cxl_whatif"
  "cxl_whatif.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cxl_whatif.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
