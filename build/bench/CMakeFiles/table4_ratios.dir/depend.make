# Empty dependencies file for table4_ratios.
# This may be replaced when dependencies are built.
