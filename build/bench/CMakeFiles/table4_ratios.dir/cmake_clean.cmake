file(REMOVE_RECURSE
  "CMakeFiles/table4_ratios.dir/table4_ratios.cc.o"
  "CMakeFiles/table4_ratios.dir/table4_ratios.cc.o.d"
  "table4_ratios"
  "table4_ratios.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_ratios.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
