# Empty compiler generated dependencies file for abl_model_scaling.
# This may be replaced when dependencies are built.
