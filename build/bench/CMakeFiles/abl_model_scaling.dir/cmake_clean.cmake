file(REMOVE_RECURSE
  "CMakeFiles/abl_model_scaling.dir/abl_model_scaling.cc.o"
  "CMakeFiles/abl_model_scaling.dir/abl_model_scaling.cc.o.d"
  "abl_model_scaling"
  "abl_model_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_model_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
