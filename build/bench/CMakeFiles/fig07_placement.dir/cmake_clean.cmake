file(REMOVE_RECURSE
  "CMakeFiles/fig07_placement.dir/fig07_placement.cc.o"
  "CMakeFiles/fig07_placement.dir/fig07_placement.cc.o.d"
  "fig07_placement"
  "fig07_placement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_placement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
