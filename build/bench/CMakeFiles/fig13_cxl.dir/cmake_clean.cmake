file(REMOVE_RECURSE
  "CMakeFiles/fig13_cxl.dir/fig13_cxl.cc.o"
  "CMakeFiles/fig13_cxl.dir/fig13_cxl.cc.o.d"
  "fig13_cxl"
  "fig13_cxl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_cxl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
