# Empty compiler generated dependencies file for fig13_cxl.
# This may be replaced when dependencies are built.
