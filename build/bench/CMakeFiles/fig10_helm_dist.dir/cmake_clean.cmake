file(REMOVE_RECURSE
  "CMakeFiles/fig10_helm_dist.dir/fig10_helm_dist.cc.o"
  "CMakeFiles/fig10_helm_dist.dir/fig10_helm_dist.cc.o.d"
  "fig10_helm_dist"
  "fig10_helm_dist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_helm_dist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
