# Empty dependencies file for fig10_helm_dist.
# This may be replaced when dependencies are built.
