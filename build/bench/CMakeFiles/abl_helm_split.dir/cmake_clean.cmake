file(REMOVE_RECURSE
  "CMakeFiles/abl_helm_split.dir/abl_helm_split.cc.o"
  "CMakeFiles/abl_helm_split.dir/abl_helm_split.cc.o.d"
  "abl_helm_split"
  "abl_helm_split.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_helm_split.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
