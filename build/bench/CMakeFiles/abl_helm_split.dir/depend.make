# Empty dependencies file for abl_helm_split.
# This may be replaced when dependencies are built.
