# Empty dependencies file for abl_kv_offload.
# This may be replaced when dependencies are built.
