file(REMOVE_RECURSE
  "CMakeFiles/abl_kv_offload.dir/abl_kv_offload.cc.o"
  "CMakeFiles/abl_kv_offload.dir/abl_kv_offload.cc.o.d"
  "abl_kv_offload"
  "abl_kv_offload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_kv_offload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
