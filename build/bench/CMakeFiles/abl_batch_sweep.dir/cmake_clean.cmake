file(REMOVE_RECURSE
  "CMakeFiles/abl_batch_sweep.dir/abl_batch_sweep.cc.o"
  "CMakeFiles/abl_batch_sweep.dir/abl_batch_sweep.cc.o.d"
  "abl_batch_sweep"
  "abl_batch_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_batch_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
