# Empty dependencies file for abl_batch_sweep.
# This may be replaced when dependencies are built.
