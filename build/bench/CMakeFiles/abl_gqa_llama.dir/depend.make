# Empty dependencies file for abl_gqa_llama.
# This may be replaced when dependencies are built.
