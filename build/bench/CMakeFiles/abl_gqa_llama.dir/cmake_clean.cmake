file(REMOVE_RECURSE
  "CMakeFiles/abl_gqa_llama.dir/abl_gqa_llama.cc.o"
  "CMakeFiles/abl_gqa_llama.dir/abl_gqa_llama.cc.o.d"
  "abl_gqa_llama"
  "abl_gqa_llama.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_gqa_llama.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
