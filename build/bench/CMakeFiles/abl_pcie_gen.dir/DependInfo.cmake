
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/abl_pcie_gen.cc" "bench/CMakeFiles/abl_pcie_gen.dir/abl_pcie_gen.cc.o" "gcc" "bench/CMakeFiles/abl_pcie_gen.dir/abl_pcie_gen.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/helm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/energy/CMakeFiles/helm_energy.dir/DependInfo.cmake"
  "/root/repo/build/src/sweep/CMakeFiles/helm_sweep.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/helm_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/membench/CMakeFiles/helm_membench.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/helm_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/placement/CMakeFiles/helm_placement.dir/DependInfo.cmake"
  "/root/repo/build/src/gpu/CMakeFiles/helm_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/helm_model.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/helm_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/helm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/helm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
