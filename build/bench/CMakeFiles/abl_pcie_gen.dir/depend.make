# Empty dependencies file for abl_pcie_gen.
# This may be replaced when dependencies are built.
