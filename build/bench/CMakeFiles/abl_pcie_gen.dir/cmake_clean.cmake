file(REMOVE_RECURSE
  "CMakeFiles/abl_pcie_gen.dir/abl_pcie_gen.cc.o"
  "CMakeFiles/abl_pcie_gen.dir/abl_pcie_gen.cc.o.d"
  "abl_pcie_gen"
  "abl_pcie_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_pcie_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
