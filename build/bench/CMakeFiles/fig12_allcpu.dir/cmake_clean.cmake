file(REMOVE_RECURSE
  "CMakeFiles/fig12_allcpu.dir/fig12_allcpu.cc.o"
  "CMakeFiles/fig12_allcpu.dir/fig12_allcpu.cc.o.d"
  "fig12_allcpu"
  "fig12_allcpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_allcpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
