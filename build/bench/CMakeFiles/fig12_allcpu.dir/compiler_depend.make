# Empty compiler generated dependencies file for fig12_allcpu.
# This may be replaced when dependencies are built.
