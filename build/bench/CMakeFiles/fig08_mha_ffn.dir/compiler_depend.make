# Empty compiler generated dependencies file for fig08_mha_ffn.
# This may be replaced when dependencies are built.
