file(REMOVE_RECURSE
  "CMakeFiles/fig08_mha_ffn.dir/fig08_mha_ffn.cc.o"
  "CMakeFiles/fig08_mha_ffn.dir/fig08_mha_ffn.cc.o.d"
  "fig08_mha_ffn"
  "fig08_mha_ffn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_mha_ffn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
