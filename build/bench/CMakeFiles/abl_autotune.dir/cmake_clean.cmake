file(REMOVE_RECURSE
  "CMakeFiles/abl_autotune.dir/abl_autotune.cc.o"
  "CMakeFiles/abl_autotune.dir/abl_autotune.cc.o.d"
  "abl_autotune"
  "abl_autotune.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_autotune.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
