# Empty dependencies file for abl_autotune.
# This may be replaced when dependencies are built.
