# Empty dependencies file for abl_microbatch.
# This may be replaced when dependencies are built.
