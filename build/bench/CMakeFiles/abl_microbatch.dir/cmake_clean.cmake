file(REMOVE_RECURSE
  "CMakeFiles/abl_microbatch.dir/abl_microbatch.cc.o"
  "CMakeFiles/abl_microbatch.dir/abl_microbatch.cc.o.d"
  "abl_microbatch"
  "abl_microbatch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_microbatch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
