file(REMOVE_RECURSE
  "CMakeFiles/fig03_bandwidth.dir/fig03_bandwidth.cc.o"
  "CMakeFiles/fig03_bandwidth.dir/fig03_bandwidth.cc.o.d"
  "fig03_bandwidth"
  "fig03_bandwidth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_bandwidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
