file(REMOVE_RECURSE
  "CMakeFiles/fig06_compression.dir/fig06_compression.cc.o"
  "CMakeFiles/fig06_compression.dir/fig06_compression.cc.o.d"
  "fig06_compression"
  "fig06_compression.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_compression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
