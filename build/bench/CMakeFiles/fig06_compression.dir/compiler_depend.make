# Empty compiler generated dependencies file for fig06_compression.
# This may be replaced when dependencies are built.
