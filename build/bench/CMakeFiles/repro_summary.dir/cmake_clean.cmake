file(REMOVE_RECURSE
  "CMakeFiles/repro_summary.dir/repro_summary.cc.o"
  "CMakeFiles/repro_summary.dir/repro_summary.cc.o.d"
  "repro_summary"
  "repro_summary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_summary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
