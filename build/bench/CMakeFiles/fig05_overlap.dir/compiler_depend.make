# Empty compiler generated dependencies file for fig05_overlap.
# This may be replaced when dependencies are built.
