file(REMOVE_RECURSE
  "CMakeFiles/fig05_overlap.dir/fig05_overlap.cc.o"
  "CMakeFiles/fig05_overlap.dir/fig05_overlap.cc.o.d"
  "fig05_overlap"
  "fig05_overlap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_overlap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
