# Empty compiler generated dependencies file for abl_balanced.
# This may be replaced when dependencies are built.
