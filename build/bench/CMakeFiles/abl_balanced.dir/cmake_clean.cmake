file(REMOVE_RECURSE
  "CMakeFiles/abl_balanced.dir/abl_balanced.cc.o"
  "CMakeFiles/abl_balanced.dir/abl_balanced.cc.o.d"
  "abl_balanced"
  "abl_balanced.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_balanced.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
