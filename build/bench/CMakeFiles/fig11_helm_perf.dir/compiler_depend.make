# Empty compiler generated dependencies file for fig11_helm_perf.
# This may be replaced when dependencies are built.
