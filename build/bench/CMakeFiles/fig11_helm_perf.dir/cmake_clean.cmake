file(REMOVE_RECURSE
  "CMakeFiles/fig11_helm_perf.dir/fig11_helm_perf.cc.o"
  "CMakeFiles/fig11_helm_perf.dir/fig11_helm_perf.cc.o.d"
  "fig11_helm_perf"
  "fig11_helm_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_helm_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
