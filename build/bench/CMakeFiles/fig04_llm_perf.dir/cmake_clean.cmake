file(REMOVE_RECURSE
  "CMakeFiles/fig04_llm_perf.dir/fig04_llm_perf.cc.o"
  "CMakeFiles/fig04_llm_perf.dir/fig04_llm_perf.cc.o.d"
  "fig04_llm_perf"
  "fig04_llm_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_llm_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
