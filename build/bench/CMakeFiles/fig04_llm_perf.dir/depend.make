# Empty dependencies file for fig04_llm_perf.
# This may be replaced when dependencies are built.
