# Empty compiler generated dependencies file for abl_context_sweep.
# This may be replaced when dependencies are built.
