file(REMOVE_RECURSE
  "CMakeFiles/abl_context_sweep.dir/abl_context_sweep.cc.o"
  "CMakeFiles/abl_context_sweep.dir/abl_context_sweep.cc.o.d"
  "abl_context_sweep"
  "abl_context_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_context_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
