file(REMOVE_RECURSE
  "CMakeFiles/helmsim.dir/helmsim.cc.o"
  "CMakeFiles/helmsim.dir/helmsim.cc.o.d"
  "helmsim"
  "helmsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/helmsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
