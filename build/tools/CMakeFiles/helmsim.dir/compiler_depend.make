# Empty compiler generated dependencies file for helmsim.
# This may be replaced when dependencies are built.
