/**
 * @file
 * Unit tests for the tiered KV-cache manager (kvcache/kvcache.h):
 * configuration validation, block geometry, per-step traffic
 * accounting, eviction/demotion for both policies, and the
 * free-request promotion back-fill.
 */
#include <gtest/gtest.h>

#include "kvcache/kvcache.h"
#include "model/footprint.h"
#include "model/opt.h"

namespace helm::kvcache {
namespace {

model::TransformerConfig
small_model()
{
    return model::opt_config(model::OptVariant::kOpt1_3B);
}

/** Bytes of K+V for one token of one decoder block (the test model). */
Bytes
token_layer()
{
    return model::kv_bytes_per_block(small_model(), 1);
}

/** Whole-model bytes of one full block_tokens=16 block. */
Bytes
one_block()
{
    return 16 * token_layer() * small_model().blocks;
}

/** gpu tier of @p gpu_blocks blocks backed by one unbounded host tier. */
KvCacheConfig
two_tier(std::uint64_t gpu_blocks,
         EvictionPolicy eviction = EvictionPolicy::kLru)
{
    KvCacheConfig config;
    TierSpec gpu;
    gpu.name = "gpu";
    gpu.is_gpu = true;
    gpu.capacity = gpu_blocks * one_block();
    TierSpec host;
    host.name = "host";
    config.tiers = {gpu, host};
    config.eviction = eviction;
    return config;
}

KvCacheManager
make_manager(const KvCacheConfig &config)
{
    auto manager = KvCacheManager::create(config, small_model());
    EXPECT_TRUE(manager.is_ok()) << manager.status().to_string();
    return *manager;
}

// ---------------------------------------------------------------------
// Configuration validation
// ---------------------------------------------------------------------

TEST(KvCacheConfig, ValidateRejectsBadShapes)
{
    KvCacheConfig config = KvCacheConfig::tiered();

    config.block_tokens = 0;
    EXPECT_EQ(config.validate().code(), StatusCode::kInvalidArgument);

    config = KvCacheConfig{};
    EXPECT_EQ(config.validate().code(), StatusCode::kInvalidArgument);

    // The GPU tier must come first (it is the allocation preference).
    config = KvCacheConfig::tiered();
    std::swap(config.tiers[0], config.tiers[1]);
    EXPECT_EQ(config.validate().code(), StatusCode::kInvalidArgument);

    // auto_capacity is a GPU-tier-only knob.
    config = KvCacheConfig::legacy_offload();
    config.tiers[0].auto_capacity = true;
    EXPECT_EQ(config.validate().code(), StatusCode::kInvalidArgument);

    config = KvCacheConfig::tiered();
    config.tiers[1].name = "gpu";
    EXPECT_EQ(config.validate().code(), StatusCode::kInvalidArgument);

    config = KvCacheConfig::legacy_offload();
    config.tiers[0].name.clear();
    EXPECT_EQ(config.validate().code(), StatusCode::kInvalidArgument);
}

TEST(KvCacheConfig, FactoryConfigsValidate)
{
    EXPECT_TRUE(KvCacheConfig::gpu_only().validate().is_ok());
    EXPECT_TRUE(KvCacheConfig::legacy_offload().validate().is_ok());
    EXPECT_TRUE(KvCacheConfig::tiered().validate().is_ok());
    EXPECT_TRUE(KvCacheConfig::tiered(4 * kGiB).validate().is_ok());

    const auto tiered = KvCacheConfig::tiered(4 * kGiB);
    ASSERT_EQ(tiered.tiers.size(), 2u);
    EXPECT_TRUE(tiered.tiers[0].is_gpu);
    EXPECT_TRUE(tiered.tiers[0].auto_capacity);
    EXPECT_EQ(tiered.tiers[1].capacity, 4 * kGiB);
}

TEST(KvCacheConfig, ParseEvictionPolicyRoundTrips)
{
    for (auto policy : {EvictionPolicy::kLru,
                        EvictionPolicy::kLongestContextFirst}) {
        const auto parsed =
            parse_eviction_policy(eviction_policy_name(policy));
        ASSERT_TRUE(parsed.is_ok());
        EXPECT_EQ(*parsed, policy);
    }
    const auto alias = parse_eviction_policy("longest");
    ASSERT_TRUE(alias.is_ok());
    EXPECT_EQ(*alias, EvictionPolicy::kLongestContextFirst);
    EXPECT_EQ(parse_eviction_policy("mru").status().code(),
              StatusCode::kNotFound);
}

TEST(KvCacheManager, CreateRejectsHostTierSmallerThanOneBlock)
{
    KvCacheConfig config = KvCacheConfig::legacy_offload();
    config.tiers[0].capacity = one_block() - 1;
    EXPECT_EQ(KvCacheManager::create(config, small_model()).status().code(),
              StatusCode::kInvalidArgument);

    // A GPU tier squeezed below one block is fine — it just never holds
    // KV (the planner may leave less than a block of free HBM).
    config = KvCacheConfig::tiered();
    config.tiers[0].auto_capacity = false;
    config.tiers[0].capacity = 1;
    EXPECT_TRUE(KvCacheManager::create(config, small_model()).is_ok());
}

// ---------------------------------------------------------------------
// Geometry
// ---------------------------------------------------------------------

TEST(KvCacheManager, BlockGeometryMatchesFootprintMath)
{
    const auto manager = make_manager(KvCacheConfig::legacy_offload());
    EXPECT_EQ(manager.token_bytes_per_layer(), token_layer());
    EXPECT_EQ(manager.block_bytes(), one_block());
    EXPECT_EQ(manager.blocks_for_tokens(0), 0u);
    EXPECT_EQ(manager.blocks_for_tokens(1), 1u);
    EXPECT_EQ(manager.blocks_for_tokens(16), 1u);
    EXPECT_EQ(manager.blocks_for_tokens(17), 2u);
}

TEST(KvCacheManager, RequestSlotsFromBoundedTiers)
{
    KvCacheConfig config = two_tier(10);
    config.tiers[1].capacity = 5 * one_block();
    const auto manager = make_manager(config);
    // 15 blocks total, 2 blocks per 32-token request -> 7 slots.
    EXPECT_EQ(manager.request_slots(32), 7u);
    EXPECT_EQ(manager.request_slots(32, 3), 3u);
    // An unbounded tier absorbs any context: the limit is returned.
    EXPECT_EQ(make_manager(two_tier(10)).request_slots(32), 4096u);
}

// ---------------------------------------------------------------------
// Step traffic
// ---------------------------------------------------------------------

TEST(KvCacheManager, GpuOnlyStepMovesNoBytes)
{
    auto manager = make_manager(KvCacheConfig::gpu_only());
    ASSERT_TRUE(manager.add_request(0).is_ok());
    ASSERT_TRUE(manager.add_request(1).is_ok());

    const auto prefill = manager.step(16, /*count_reads=*/false);
    ASSERT_TRUE(prefill.is_ok());
    const auto decode = manager.step(1, /*count_reads=*/true);
    ASSERT_TRUE(decode.is_ok());

    EXPECT_EQ(prefill->write_bytes[0], 0u);
    EXPECT_EQ(decode->read_bytes[0], 0u);
    EXPECT_EQ(decode->write_bytes[0], 0u);
    EXPECT_EQ(manager.stats().tiers[0].read_bytes, 0u);
    EXPECT_EQ(manager.stats().tiers[0].write_bytes, 0u);
    // Occupancy is still tracked: 2 requests x 2 blocks (17 tokens).
    EXPECT_EQ(manager.stats().tiers[0].blocks, 4u);
}

TEST(KvCacheManager, LegacyOffloadMatchesWholeCacheFormulas)
{
    auto manager = make_manager(KvCacheConfig::legacy_offload());
    const std::uint64_t batch = 3, prompt = 32;
    for (std::uint64_t id = 0; id < batch; ++id)
        ASSERT_TRUE(manager.add_request(id).is_ok());

    // Prefill: every new K/V entry drains to the host, nothing is read
    // back (the attention inputs were just computed on the GPU).
    const auto prefill = manager.step(prompt, /*count_reads=*/false);
    ASSERT_TRUE(prefill.is_ok());
    EXPECT_EQ(prefill->write_bytes[0], batch * prompt * token_layer());
    EXPECT_EQ(prefill->read_bytes[0], 0u);

    // Decode: one appended token per request plus the full context
    // streamed back in — the legacy offload_kv_cache byte equation.
    const auto decode = manager.step(1, /*count_reads=*/true);
    ASSERT_TRUE(decode.is_ok());
    EXPECT_EQ(decode->write_bytes[0], batch * token_layer());
    EXPECT_EQ(decode->read_bytes[0],
              batch * (prompt + 1) * token_layer());

    // Lifetime stats scale the per-layer traffic by every MHA layer.
    EXPECT_EQ(manager.stats().tiers[0].write_bytes,
              batch * (prompt + 1) * token_layer() *
                  small_model().blocks);
}

// ---------------------------------------------------------------------
// Eviction and promotion
// ---------------------------------------------------------------------

TEST(KvCacheManager, LruEvictionDemotesOldestBlocks)
{
    auto manager = make_manager(two_tier(2));
    ASSERT_TRUE(manager.add_request(0).is_ok());
    ASSERT_TRUE(manager.step(32, false).is_ok()); // fills the GPU tier

    // Two more blocks: each allocation demotes the least-recently
    // written block so the fresh (hot) one lands on the GPU.
    const auto traffic = manager.step(32, false);
    ASSERT_TRUE(traffic.is_ok());
    EXPECT_EQ(manager.stats().demotions, 2u);
    // The demoted blocks carry their valid tokens down the hierarchy...
    EXPECT_EQ(traffic->write_bytes[1], 32 * token_layer());
    EXPECT_EQ(manager.stats().tiers[1].demoted_in_bytes,
              32 * token_layer() * small_model().blocks);
    // ...and the appends themselves hit the GPU tier, which is free.
    EXPECT_EQ(manager.stats().tiers[1].write_bytes, 0u);

    const auto stats = manager.request_stats();
    ASSERT_EQ(stats.size(), 1u);
    EXPECT_EQ(stats[0].tokens, 64u);
    EXPECT_EQ(stats[0].blocks_on_tier[0], 2u);
    EXPECT_EQ(stats[0].blocks_on_tier[1], 2u);
}

TEST(KvCacheManager, LongestContextFirstSparesShortRequests)
{
    auto manager = make_manager(
        two_tier(4, EvictionPolicy::kLongestContextFirst));
    ASSERT_TRUE(manager.add_request(0).is_ok());
    ASSERT_TRUE(manager.step(32, false).is_ok()); // r0: 2 GPU blocks
    ASSERT_TRUE(manager.add_request(1).is_ok());
    // r0 grows to 4 blocks (filling the tier), then r1's two fresh
    // blocks each demote a block of r0 — the longest-context request.
    ASSERT_TRUE(manager.step(32, false).is_ok());

    EXPECT_EQ(manager.stats().demotions, 2u);
    const auto stats = manager.request_stats();
    ASSERT_EQ(stats.size(), 2u);
    EXPECT_EQ(stats[0].blocks_on_tier[1], 2u); // r0 paid the eviction
    EXPECT_EQ(stats[1].blocks_on_tier[1], 0u); // r1 stayed GPU-resident
}

TEST(KvCacheManager, FreeRequestPromotesMostRecentBlocksBack)
{
    auto manager = make_manager(two_tier(2));
    ASSERT_TRUE(manager.add_request(0).is_ok());
    ASSERT_TRUE(manager.step(32, false).is_ok());
    ASSERT_TRUE(manager.add_request(1).is_ok());
    ASSERT_TRUE(manager.step(32, false).is_ok());
    // The GPU tier now holds r1's two freshest blocks; all four of r0's
    // blocks were demoted to the host on the way.
    EXPECT_EQ(manager.stats().demotions, 4u);

    ASSERT_TRUE(manager.free_request(1).is_ok());
    // The freed GPU space back-fills with r0's most recent blocks.
    EXPECT_EQ(manager.stats().promotions, 2u);
    EXPECT_EQ(manager.stats().tiers[1].promoted_out_bytes,
              2 * 16 * token_layer() * small_model().blocks);
    const auto stats = manager.request_stats();
    ASSERT_EQ(stats.size(), 1u);
    EXPECT_EQ(stats[0].blocks_on_tier[0], 2u);
    EXPECT_EQ(stats[0].blocks_on_tier[1], 2u);
    EXPECT_EQ(manager.stats().tiers[0].blocks, 2u);
}

// ---------------------------------------------------------------------
// Capacity and lifecycle
// ---------------------------------------------------------------------

TEST(KvCacheManager, CanGrowAndCapacityExceeded)
{
    KvCacheConfig config = two_tier(2);
    config.tiers[1].capacity = 2 * one_block();
    auto manager = make_manager(config);
    ASSERT_TRUE(manager.add_request(0).is_ok());

    EXPECT_TRUE(manager.can_grow(0, 4 * 16));
    EXPECT_FALSE(manager.can_grow(0, 4 * 16 + 1));
    ASSERT_TRUE(manager.step(4 * 16, false).is_ok());
    EXPECT_EQ(manager.step(1, false).status().code(),
              StatusCode::kCapacityExceeded);
}

TEST(KvCacheManager, PeakOccupancyNeverExceedsCapacity)
{
    auto manager = make_manager(two_tier(2));
    ASSERT_TRUE(manager.add_request(0).is_ok());
    ASSERT_TRUE(manager.step(128, false).is_ok());
    EXPECT_EQ(manager.stats().tiers[0].peak_occupancy, 2 * one_block());
    EXPECT_EQ(manager.tier_occupancy(0), 2 * one_block());
    EXPECT_EQ(manager.tier_occupancy(1), 6 * one_block());
}

TEST(KvCacheManager, ResetClearsResidencyButKeepsTraffic)
{
    auto manager = make_manager(KvCacheConfig::legacy_offload());
    ASSERT_TRUE(manager.add_request(7).is_ok());
    ASSERT_TRUE(manager.step(16, false).is_ok());
    const Bytes written = manager.stats().tiers[0].write_bytes;
    EXPECT_GT(written, 0u);

    manager.reset_requests();
    EXPECT_EQ(manager.stats().tiers[0].blocks, 0u);
    EXPECT_EQ(manager.tier_occupancy(0), 0u);
    EXPECT_EQ(manager.stats().tiers[0].write_bytes, written);
    EXPECT_TRUE(manager.add_request(7).is_ok()); // id is free again
}

TEST(KvCacheManager, RequestLifecycleErrors)
{
    auto manager = make_manager(KvCacheConfig::gpu_only());
    ASSERT_TRUE(manager.add_request(0).is_ok());
    EXPECT_EQ(manager.add_request(0).code(),
              StatusCode::kInvalidArgument);
    EXPECT_EQ(manager.free_request(99).code(), StatusCode::kNotFound);
    EXPECT_TRUE(manager.free_request(0).is_ok());
}

} // namespace
} // namespace helm::kvcache
