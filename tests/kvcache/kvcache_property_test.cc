/**
 * @file
 * Property-based (parameterized) sweeps over the KV-cache manager: the
 * three invariants its header pins — no bounded tier ever exceeds its
 * capacity, every block is resident in exactly one tier, and identical
 * call sequences yield identical placements — must hold across
 * eviction policies and block sizes under a churny request mix.
 */
#include <gtest/gtest.h>

#include <string>
#include <tuple>
#include <vector>

#include "common/rng.h"
#include "kvcache/kvcache.h"
#include "model/footprint.h"
#include "model/opt.h"

namespace helm::kvcache {
namespace {

using KvCase = std::tuple<EvictionPolicy, std::uint64_t /*block_tokens*/>;

/** Three tiers under pressure: a small GPU tier, a bounded host tier,
 *  and an unbounded backstop so the script never runs out of space. */
KvCacheConfig
stress_config(EvictionPolicy eviction, std::uint64_t block_tokens,
              Bytes block_bytes)
{
    KvCacheConfig config;
    config.block_tokens = block_tokens;
    config.eviction = eviction;
    TierSpec gpu;
    gpu.name = "gpu";
    gpu.is_gpu = true;
    gpu.capacity = 4 * block_bytes;
    TierSpec fast;
    fast.name = "fast";
    fast.capacity = 8 * block_bytes;
    TierSpec slow;
    slow.name = "slow";
    config.tiers = {gpu, fast, slow};
    return config;
}

/** One scripted op: add a request, free one, or step the batch. */
struct Op
{
    enum Kind
    {
        kAdd,
        kFree,
        kStep
    } kind;
    std::uint64_t value; //!< id for add/free, new_tokens for step
    bool count_reads;
};

/** Deterministic churny script: adds, uneven growth, frees. */
std::vector<Op>
make_script(std::uint64_t block_tokens)
{
    Rng rng(0xC0FFEEull + block_tokens);
    std::vector<Op> script;
    std::uint64_t next_id = 0;
    std::vector<std::uint64_t> live;
    for (int round = 0; round < 60; ++round) {
        const std::uint64_t dice = rng.next_below(10);
        if (live.size() < 2 || (dice < 3 && live.size() < 8)) {
            script.push_back({Op::kAdd, next_id, false});
            live.push_back(next_id++);
        } else if (dice < 4 && live.size() > 2) {
            const std::uint64_t pick = rng.next_below(live.size());
            script.push_back({Op::kFree, live[pick], false});
            live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
        } else {
            // Prefill-sized bursts and single-token decode steps.
            const bool prefill = rng.next_below(4) == 0;
            const std::uint64_t tokens =
                prefill ? block_tokens + rng.next_below(2 * block_tokens)
                        : 1;
            script.push_back({Op::kStep, tokens, !prefill});
        }
    }
    return script;
}

void
apply(KvCacheManager &manager, const Op &op)
{
    switch (op.kind) {
      case Op::kAdd:
        ASSERT_TRUE(manager.add_request(op.value).is_ok());
        break;
      case Op::kFree:
        ASSERT_TRUE(manager.free_request(op.value).is_ok());
        break;
      case Op::kStep: {
        const auto traffic = manager.step(op.value, op.count_reads);
        ASSERT_TRUE(traffic.is_ok()) << traffic.status().to_string();
        break;
      }
    }
}

class KvCacheProperty : public ::testing::TestWithParam<KvCase>
{
};

TEST_P(KvCacheProperty, CapacityAndResidencyInvariants)
{
    const auto [eviction, block_tokens] = GetParam();
    const auto model = model::opt_config(model::OptVariant::kOpt1_3B);
    const Bytes block_bytes =
        block_tokens * model::kv_bytes_per_block(model, 1) * model.blocks;
    auto manager_or = KvCacheManager::create(
        stress_config(eviction, block_tokens, block_bytes), model);
    ASSERT_TRUE(manager_or.is_ok()) << manager_or.status().to_string();
    auto manager = *manager_or;
    ASSERT_EQ(manager.block_bytes(), block_bytes);

    for (const Op &op : make_script(block_tokens)) {
        apply(manager, op);
        if (::testing::Test::HasFatalFailure())
            return;

        const auto &stats = manager.stats();
        std::uint64_t total_blocks = 0;
        for (std::size_t i = 0; i < manager.tier_count(); ++i) {
            const auto &tier = stats.tiers[i];
            // Occupancy is whole blocks and never exceeds the capacity.
            EXPECT_EQ(tier.occupancy, tier.blocks * manager.block_bytes());
            EXPECT_GE(tier.peak_occupancy, tier.occupancy);
            if (manager.tier(i).capacity > 0) {
                EXPECT_LE(tier.occupancy, manager.tier(i).capacity);
                EXPECT_LE(tier.peak_occupancy, manager.tier(i).capacity);
            }
            total_blocks += tier.blocks;
        }

        // Every block is resident in exactly one tier: the per-request
        // residency both sums to the tier totals and covers exactly the
        // blocks each request's context needs.
        std::uint64_t request_blocks = 0;
        for (const auto &request : manager.request_stats()) {
            std::uint64_t on_tiers = 0;
            for (const std::uint64_t count : request.blocks_on_tier)
                on_tiers += count;
            EXPECT_EQ(on_tiers,
                      manager.blocks_for_tokens(request.tokens));
            request_blocks += on_tiers;
        }
        EXPECT_EQ(request_blocks, total_blocks);
    }
}

TEST_P(KvCacheProperty, IdenticalSequencesYieldIdenticalPlacements)
{
    const auto [eviction, block_tokens] = GetParam();
    const auto model = model::opt_config(model::OptVariant::kOpt1_3B);
    const Bytes block_bytes =
        block_tokens * model::kv_bytes_per_block(model, 1) * model.blocks;
    const auto config =
        stress_config(eviction, block_tokens, block_bytes);
    auto first = KvCacheManager::create(config, model);
    auto second = KvCacheManager::create(config, model);
    ASSERT_TRUE(first.is_ok() && second.is_ok());

    for (const Op &op : make_script(block_tokens)) {
        apply(*first, op);
        apply(*second, op);
        if (::testing::Test::HasFatalFailure())
            return;
        ASSERT_EQ(first->placement_digest(), second->placement_digest());
    }
    EXPECT_EQ(first->stats().demotions, second->stats().demotions);
    EXPECT_EQ(first->stats().promotions, second->stats().promotions);
}

INSTANTIATE_TEST_SUITE_P(
    Policies, KvCacheProperty,
    ::testing::Combine(
        ::testing::Values(EvictionPolicy::kLru,
                          EvictionPolicy::kLongestContextFirst),
        ::testing::Values(8ull, 16ull, 64ull)),
    [](const ::testing::TestParamInfo<KvCase> &info) {
        const EvictionPolicy eviction = std::get<0>(info.param);
        return std::string(eviction == EvictionPolicy::kLru
                               ? "Lru"
                               : "LongestContext") +
               "Block" + std::to_string(std::get<1>(info.param));
    });

} // namespace
} // namespace helm::kvcache
