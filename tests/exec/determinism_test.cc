/**
 * @file
 * Determinism contract of the parallel evaluation engine: any jobs
 * value must produce byte-identical sweep Datasets / CSV, identical
 * tuner results, and deterministic SimCache statistics.
 */
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "model/opt.h"
#include "runtime/instrument.h"
#include "runtime/sim_cache.h"
#include "runtime/tuner.h"
#include "sweep/sweep.h"
#include "telemetry/metrics.h"

namespace helm {
namespace {

std::string
csv_text(const sweep::Dataset &dataset)
{
    std::ostringstream out;
    dataset.write_csv(out);
    return out.str();
}

sweep::ServingSweep
test_grid()
{
    runtime::ServingSpec base;
    base.model = model::opt_config(model::OptVariant::kOpt1_3B);
    base.repeats = 1;
    sweep::ServingSweep grid(base);
    // "GPT-J" is not in the zoo: those points exercise the error
    // column, which must merge identically at any jobs value.
    EXPECT_TRUE(
        grid.add_dimension("model", {"OPT-1.3B", "GPT-J"}).is_ok());
    EXPECT_TRUE(grid.add_dimension("memory", {"NVDRAM", "DRAM"}).is_ok());
    EXPECT_TRUE(
        grid.add_dimension("placement", {"Baseline", "HeLM", "All-CPU"})
            .is_ok());
    EXPECT_TRUE(grid.add_dimension("batch", {"1", "2", "4"}).is_ok());
    return grid;
}

TEST(SweepDeterminism, DatasetByteIdenticalAcrossJobs)
{
    const sweep::ServingSweep grid = test_grid();
    sweep::SweepOptions sequential;
    sequential.jobs = 1;
    const std::string baseline = csv_text(grid.run(sequential, nullptr));
    EXPECT_NE(baseline.find("error"), std::string::npos);

    for (const std::size_t jobs : {2u, 8u}) {
        sweep::SweepOptions options;
        options.jobs = jobs;
        EXPECT_EQ(csv_text(grid.run(options, nullptr)), baseline)
            << "jobs=" << jobs;
    }
}

TEST(SweepDeterminism, CacheDoesNotChangeTheDataset)
{
    const sweep::ServingSweep grid = test_grid();
    sweep::SweepOptions options;
    options.jobs = 8;
    runtime::SimCache cache;
    const std::string cached = csv_text(grid.run(options, &cache));
    sweep::SweepOptions sequential;
    sequential.jobs = 1;
    EXPECT_EQ(cached, csv_text(grid.run(sequential, nullptr)));
    // Errors bypass the memo, so misses < points but > 0.
    EXPECT_GT(cache.misses(), 0u);
}

TEST(SweepDeterminism, ProgressReachesTotalExactlyOnce)
{
    const sweep::ServingSweep grid = test_grid();
    sweep::SweepOptions options;
    options.jobs = 8;
    std::vector<std::size_t> done_values;
    options.progress = [&done_values](std::size_t done,
                                      std::size_t total) {
        EXPECT_EQ(total, 36u);
        done_values.push_back(done);
    };
    (void)grid.run(options, nullptr);
    ASSERT_EQ(done_values.size(), 36u);
    // Calls are serialized with an incrementing done counter.
    for (std::size_t i = 0; i < done_values.size(); ++i)
        EXPECT_EQ(done_values[i], i + 1);
}

runtime::TuneRequest
test_request()
{
    runtime::TuneRequest request;
    request.model = model::opt_config(model::OptVariant::kOpt1_3B);
    request.memory = mem::ConfigKind::kNvdram;
    request.shape.prompt_tokens = 128;
    request.shape.output_tokens = 21;
    request.batch_limit = 8;
    return request;
}

/** Full textual image of a TuneResult, ordering included. */
std::string
tune_text(const runtime::TuneResult &result)
{
    std::ostringstream out;
    const auto line = [&out](const runtime::TuneCandidate &c) {
        out << c.describe() << " " << c.metrics.ttft << " "
            << c.metrics.tbt << " " << c.metrics.throughput << " "
            << c.meets_qos << "\n";
    };
    line(result.best);
    out << result.infeasible << "\n";
    for (const auto &candidate : result.explored)
        line(candidate);
    return out.str();
}

TEST(TunerDeterminism, ResultIdenticalAcrossJobs)
{
    const runtime::TuneRequest request = test_request();
    const auto sequential = runtime::auto_tune(request);
    ASSERT_TRUE(sequential.is_ok());
    const std::string baseline = tune_text(*sequential);

    for (const std::size_t jobs : {2u, 8u}) {
        runtime::TuneExecOptions exec;
        exec.jobs = jobs;
        const auto parallel = runtime::auto_tune(request, exec);
        ASSERT_TRUE(parallel.is_ok()) << "jobs=" << jobs;
        EXPECT_EQ(tune_text(*parallel), baseline) << "jobs=" << jobs;
    }
}

TEST(TunerDeterminism, CacheDoesNotChangeTheResult)
{
    const runtime::TuneRequest request = test_request();
    const auto uncached = runtime::auto_tune(request);
    ASSERT_TRUE(uncached.is_ok());

    runtime::SimCache cache;
    runtime::TuneExecOptions exec;
    exec.jobs = 8;
    exec.cache = &cache;
    const auto first = runtime::auto_tune(request, exec);
    ASSERT_TRUE(first.is_ok());
    EXPECT_EQ(tune_text(*first), tune_text(*uncached));
    const std::uint64_t misses_after_first = cache.misses();
    EXPECT_GT(misses_after_first, 0u);

    // A repeated search is served entirely from the memo.
    const auto second = runtime::auto_tune(request, exec);
    ASSERT_TRUE(second.is_ok());
    EXPECT_EQ(tune_text(*second), tune_text(*uncached));
    EXPECT_EQ(cache.misses(), misses_after_first);
    EXPECT_EQ(cache.hits(), misses_after_first);
}

TEST(SimCacheTest, RepeatedSpecHits)
{
    runtime::ServingSpec spec;
    spec.model = model::opt_config(model::OptVariant::kOpt1_3B);
    runtime::SimCache cache;
    const runtime::SimPoint first = cache.evaluate(spec);
    const runtime::SimPoint second = cache.evaluate(spec);
    ASSERT_TRUE(first.is_ok());
    EXPECT_EQ(cache.hits(), 1u);
    EXPECT_EQ(cache.misses(), 1u);
    EXPECT_EQ(first.metrics.tbt, second.metrics.tbt);
    EXPECT_EQ(first.metrics.throughput, second.metrics.throughput);
    EXPECT_EQ(first.gpu_used, second.gpu_used);
}

TEST(SimCacheTest, KeyDistinguishesSpecs)
{
    runtime::ServingSpec spec;
    spec.model = model::opt_config(model::OptVariant::kOpt1_3B);
    const std::string base_key = runtime::spec_cache_key(spec);
    EXPECT_EQ(runtime::spec_cache_key(spec), base_key);

    runtime::ServingSpec batched = spec;
    batched.batch = 2;
    EXPECT_NE(runtime::spec_cache_key(batched), base_key);

    runtime::ServingSpec offloaded = spec;
    offloaded.offload_kv_cache = true;
    EXPECT_NE(runtime::spec_cache_key(offloaded), base_key);

    // keep_records is presentation-only: it must not split the key.
    runtime::ServingSpec recorded = spec;
    recorded.keep_records = true;
    EXPECT_EQ(runtime::spec_cache_key(recorded), base_key);
}

TEST(SimCacheTest, RegistryExport)
{
    runtime::ServingSpec spec;
    spec.model = model::opt_config(model::OptVariant::kOpt1_3B);
    runtime::SimCache cache;
    (void)cache.evaluate(spec);
    (void)cache.evaluate(spec);

    telemetry::MetricsRegistry registry;
    runtime::record_sim_cache(registry, cache);
    EXPECT_EQ(registry.counter("helm_simcache_hits", {}, "").value(),
              1.0);
    EXPECT_EQ(registry.counter("helm_simcache_misses", {}, "").value(),
              1.0);
    EXPECT_EQ(registry.gauge("helm_simcache_entries", {}, "").value(),
              1.0);
}

} // namespace
} // namespace helm
