/**
 * @file
 * Unit tests for the exec layer: ThreadPool lifecycle, parallel_for /
 * parallel_map coverage and exception semantics, and ShardedMemo
 * compute-once behavior under concurrency.
 */
#include <atomic>
#include <chrono>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "exec/memo.h"
#include "exec/parallel.h"
#include "exec/thread_pool.h"

namespace helm::exec {
namespace {

TEST(ThreadPool, DrainsOnDestruction)
{
    std::atomic<int> ran{0};
    {
        ThreadPool pool(4);
        for (int i = 0; i < 100; ++i)
            pool.submit([&ran] { ++ran; });
    } // destructor must run every queued task before joining
    EXPECT_EQ(ran.load(), 100);
}

TEST(ThreadPool, NestedSubmitDoesNotDeadlock)
{
    std::atomic<int> ran{0};
    {
        ThreadPool pool(2);
        for (int i = 0; i < 8; ++i) {
            pool.submit([&pool, &ran] {
                ++ran;
                pool.submit([&ran] { ++ran; });
            });
        }
    } // tasks submitted by tasks are part of the drain
    EXPECT_EQ(ran.load(), 16);
}

TEST(ThreadPool, ClampsToAtLeastOneThread)
{
    std::atomic<bool> ran{false};
    {
        ThreadPool pool(0);
        EXPECT_EQ(pool.thread_count(), 1u);
        pool.submit([&ran] { ran = true; });
    }
    EXPECT_TRUE(ran.load());
}

TEST(ThreadPool, DefaultJobsIsPositive)
{
    EXPECT_GE(ThreadPool::default_jobs(), 1u);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce)
{
    constexpr std::size_t kCount = 1000;
    std::vector<std::atomic<int>> seen(kCount);
    parallel_for(kCount, 8, [&seen](std::size_t i) { ++seen[i]; });
    for (std::size_t i = 0; i < kCount; ++i)
        EXPECT_EQ(seen[i].load(), 1) << "index " << i;
}

TEST(ParallelFor, SequentialWhenJobsIsOne)
{
    // jobs=1 is the exact legacy path: in-order, on the calling thread.
    std::vector<std::size_t> order;
    const auto caller = std::this_thread::get_id();
    parallel_for(64, 1, [&](std::size_t i) {
        EXPECT_EQ(std::this_thread::get_id(), caller);
        order.push_back(i);
    });
    ASSERT_EQ(order.size(), 64u);
    for (std::size_t i = 0; i < order.size(); ++i)
        EXPECT_EQ(order[i], i);
}

TEST(ParallelFor, ZeroCountIsANoop)
{
    bool called = false;
    parallel_for(0, 8, [&called](std::size_t) { called = true; });
    EXPECT_FALSE(called);
}

TEST(ParallelFor, LowestIndexExceptionWins)
{
    // Several indices throw; the caller must see the one a sequential
    // run would have surfaced first, on every schedule.
    for (int repeat = 0; repeat < 10; ++repeat) {
        try {
            parallel_for(64, 8, [](std::size_t i) {
                if (i == 7 || i == 23 || i == 55)
                    throw std::runtime_error("index " +
                                             std::to_string(i));
            });
            FAIL() << "expected an exception";
        } catch (const std::runtime_error &error) {
            EXPECT_STREQ(error.what(), "index 7");
        }
    }
}

TEST(ParallelFor, NestedFanOutRunsInline)
{
    std::atomic<int> total{0};
    parallel_for(4, 4, [&total](std::size_t) {
        parallel_for(8, 4, [&total](std::size_t) { ++total; });
    });
    EXPECT_EQ(total.load(), 32);
}

TEST(ParallelMap, SlotsFollowIndexOrder)
{
    const std::vector<std::size_t> squares = parallel_map<std::size_t>(
        100, 8, [](std::size_t i) { return i * i; });
    ASSERT_EQ(squares.size(), 100u);
    for (std::size_t i = 0; i < squares.size(); ++i)
        EXPECT_EQ(squares[i], i * i);
}

TEST(ShardedMemo, ComputesOncePerKeyUnderConcurrency)
{
    ShardedMemo<int> memo;
    std::atomic<int> computations{0};
    parallel_for(64, 8, [&](std::size_t i) {
        const std::string key = "key-" + std::to_string(i % 4);
        const int value = memo.get_or_compute(key, [&] {
            ++computations;
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
            return static_cast<int>(i % 4);
        });
        EXPECT_EQ(value, static_cast<int>(i % 4));
    });
    EXPECT_EQ(computations.load(), 4);
    EXPECT_EQ(memo.misses(), 4u);
    EXPECT_EQ(memo.hits(), 60u);
    EXPECT_EQ(memo.size(), 4u);
}

TEST(ShardedMemo, ExceptionDoesNotPoisonTheKey)
{
    ShardedMemo<int> memo;
    EXPECT_THROW(memo.get_or_compute(
                     "k",
                     []() -> int { throw std::runtime_error("boom"); }),
                 std::runtime_error);
    EXPECT_EQ(memo.size(), 0u);
    EXPECT_EQ(memo.get_or_compute("k", [] { return 42; }), 42);
    EXPECT_EQ(memo.size(), 1u);
}

TEST(ShardedMemo, DistinctKeysAreIndependent)
{
    ShardedMemo<std::string> memo;
    EXPECT_EQ(memo.get_or_compute("a", [] { return std::string("A"); }),
              "A");
    EXPECT_EQ(memo.get_or_compute("b", [] { return std::string("B"); }),
              "B");
    EXPECT_EQ(memo.get_or_compute("a", [] { return std::string("X"); }),
              "A");
    EXPECT_EQ(memo.hits(), 1u);
    EXPECT_EQ(memo.misses(), 2u);
}

TEST(ResolveJobs, ZeroMeansHardwareThreads)
{
    EXPECT_EQ(resolve_jobs(0), ThreadPool::default_jobs());
    EXPECT_EQ(resolve_jobs(1), 1u);
    EXPECT_EQ(resolve_jobs(7), 7u);
}

} // namespace
} // namespace helm::exec
