/**
 * @file
 * Unit tests for the system energy model.
 */
#include <gtest/gtest.h>

#include "energy/energy_model.h"
#include "model/opt.h"

namespace helm::energy {
namespace {

using model::OptVariant;

runtime::RunResult
run(mem::ConfigKind memory, placement::PlacementKind placement =
                                placement::PlacementKind::kHelm)
{
    runtime::ServingSpec spec;
    spec.model = model::opt_config(OptVariant::kOpt175B);
    spec.memory = memory;
    spec.placement = placement;
    spec.compress_weights = true;
    spec.batch = 1;
    spec.repeats = 2;
    auto result = runtime::simulate_inference(spec);
    EXPECT_TRUE(result.is_ok()) << result.status().to_string();
    return std::move(result).value();
}

TEST(Energy, RequiresRecords)
{
    runtime::ServingSpec spec;
    spec.model = model::opt_config(OptVariant::kOpt1_3B);
    spec.keep_records = false;
    spec.repeats = 1;
    const auto result = runtime::simulate_inference(spec);
    ASSERT_TRUE(result.is_ok());
    const auto energy =
        estimate_energy(*result, mem::ConfigKind::kNvdram,
                        gpu::GpuSpec::a100_40gb());
    EXPECT_EQ(energy.status().code(), StatusCode::kFailedPrecondition);
}

TEST(Energy, BreakdownSumsAndPositivity)
{
    const auto result = run(mem::ConfigKind::kNvdram);
    const auto energy = estimate_energy(
        *&result, mem::ConfigKind::kNvdram, gpu::GpuSpec::a100_40gb());
    ASSERT_TRUE(energy.is_ok());
    EXPECT_GT(energy->gpu_joules, 0.0);
    EXPECT_GT(energy->host_dynamic_joules, 0.0);
    EXPECT_GT(energy->host_static_joules, 0.0);
    EXPECT_GT(energy->pcie_joules, 0.0);
    EXPECT_GT(energy->cpu_joules, 0.0);
    EXPECT_NEAR(energy->total_joules(),
                energy->gpu_joules + energy->host_dynamic_joules +
                    energy->host_static_joules + energy->pcie_joules +
                    energy->cpu_joules,
                1e-9);
    EXPECT_GT(energy->joules_per_token(), 0.0);
    EXPECT_NEAR(energy->average_watts(),
                energy->total_joules() / energy->duration, 1e-9);
}

TEST(Energy, OptaneStandbyBelowDram)
{
    // The substitution argument: 1 TiB of Optane idles below 256 GiB of
    // DRAM (no refresh), 4x the capacity.
    EXPECT_LT(DevicePowerModel::optane_1t().static_watts,
              DevicePowerModel::ddr4_256g().static_watts);
}

TEST(Energy, OptaneDynamicAboveDram)
{
    EXPECT_GT(DevicePowerModel::optane_1t().read_pj_per_byte,
              DevicePowerModel::ddr4_256g().read_pj_per_byte);
    EXPECT_GT(DevicePowerModel::optane_1t().write_pj_per_byte,
              DevicePowerModel::optane_1t().read_pj_per_byte);
}

TEST(Energy, HostPowerModelCoversEveryConfig)
{
    for (auto kind : mem::all_config_kinds()) {
        const auto m = host_power_model(kind);
        EXPECT_GT(m.static_watts, 0.0) << mem::config_kind_name(kind);
        EXPECT_GT(m.read_pj_per_byte, 0.0);
    }
    // Memory Mode powers both tiers.
    EXPECT_GT(host_power_model(mem::ConfigKind::kMemoryMode).static_watts,
              host_power_model(mem::ConfigKind::kNvdram).static_watts);
}

TEST(Energy, FasterRunsUseFewerJoulesPerToken)
{
    // HeLM's latency win is also an energy win: same work, less static
    // burn (this is the paper's energy-efficiency thesis end to end).
    const auto base =
        run(mem::ConfigKind::kNvdram, placement::PlacementKind::kBaseline);
    const auto helm = run(mem::ConfigKind::kNvdram,
                          placement::PlacementKind::kHelm);
    const auto e_base = estimate_energy(
        base, mem::ConfigKind::kNvdram, gpu::GpuSpec::a100_40gb());
    const auto e_helm = estimate_energy(
        helm, mem::ConfigKind::kNvdram, gpu::GpuSpec::a100_40gb());
    ASSERT_TRUE(e_base.is_ok());
    ASSERT_TRUE(e_helm.is_ok());
    EXPECT_LT(e_helm->joules_per_token(), e_base->joules_per_token());
}

TEST(Energy, GpuDominatesAtHighUtilization)
{
    // Large-batch All-CPU keeps the GPU busy: its joules should dwarf
    // the host memory's.
    runtime::ServingSpec spec;
    spec.model = model::opt_config(OptVariant::kOpt175B);
    spec.memory = mem::ConfigKind::kNvdram;
    spec.placement = placement::PlacementKind::kAllCpu;
    spec.compress_weights = true;
    spec.batch = 44;
    spec.repeats = 2;
    const auto result = runtime::simulate_inference(spec);
    ASSERT_TRUE(result.is_ok());
    const auto energy = estimate_energy(
        *result, mem::ConfigKind::kNvdram, gpu::GpuSpec::a100_40gb());
    ASSERT_TRUE(energy.is_ok());
    EXPECT_GT(energy->gpu_joules, energy->host_dynamic_joules +
                                      energy->host_static_joules);
}

TEST(Energy, PlatformOverridesRespected)
{
    const auto result = run(mem::ConfigKind::kNvdram);
    PlatformPower quiet;
    quiet.gpu_busy_watts = 0.0;
    quiet.gpu_idle_watts = 0.0;
    quiet.host_cpu_watts = 0.0;
    quiet.pcie_pj_per_byte = 0.0;
    const auto energy = estimate_energy(
        result, mem::ConfigKind::kNvdram, gpu::GpuSpec::a100_40gb(),
        quiet);
    ASSERT_TRUE(energy.is_ok());
    EXPECT_DOUBLE_EQ(energy->gpu_joules, 0.0);
    EXPECT_DOUBLE_EQ(energy->pcie_joules, 0.0);
    EXPECT_DOUBLE_EQ(energy->cpu_joules, 0.0);
    EXPECT_GT(energy->host_static_joules, 0.0);
}

} // namespace
} // namespace helm::energy
