/**
 * @file
 * Unit tests for common/rng.h and common/summary.h.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/rng.h"
#include "common/summary.h"

namespace helm {
namespace {

TEST(Rng, DeterministicForSeed)
{
    Rng a(1234), b(1234);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next_u64() == b.next_u64();
    EXPECT_LT(same, 2);
}

TEST(Rng, NextBelowInBounds)
{
    Rng rng(7);
    for (std::uint64_t bound : {1ull, 2ull, 10ull, 1000ull}) {
        for (int i = 0; i < 200; ++i)
            EXPECT_LT(rng.next_below(bound), bound);
    }
}

TEST(Rng, NextInRangeInclusive)
{
    Rng rng(9);
    std::set<std::int64_t> seen;
    for (int i = 0; i < 1000; ++i) {
        const std::int64_t v = rng.next_in_range(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        seen.insert(v);
    }
    // All 7 values should appear in 1000 draws.
    EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, NextDoubleInUnitInterval)
{
    Rng rng(11);
    double sum = 0.0;
    for (int i = 0; i < 10000; ++i) {
        const double v = rng.next_double();
        EXPECT_GE(v, 0.0);
        EXPECT_LT(v, 1.0);
        sum += v;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, GaussianMoments)
{
    Rng rng(13);
    double sum = 0.0, sq = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        const double v = rng.next_gaussian();
        sum += v;
        sq += v * v;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.03);
    EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(Summary, EmptyInput)
{
    EXPECT_EQ(summarize({}).count, 0u);
    EXPECT_DOUBLE_EQ(mean({}), 0.0);
    EXPECT_DOUBLE_EQ(mean_discarding_first({}), 0.0);
    EXPECT_DOUBLE_EQ(percentile({}, 50), 0.0);
}

TEST(Summary, BasicStats)
{
    const Summary s = summarize({1.0, 2.0, 3.0, 4.0});
    EXPECT_EQ(s.count, 4u);
    EXPECT_DOUBLE_EQ(s.mean, 2.5);
    EXPECT_DOUBLE_EQ(s.min, 1.0);
    EXPECT_DOUBLE_EQ(s.max, 4.0);
    EXPECT_NEAR(s.stddev, std::sqrt(1.25), 1e-12);
}

TEST(Summary, MeanDiscardingFirstMatchesPaperRule)
{
    // "arithmetic mean across all its values except the first"
    EXPECT_DOUBLE_EQ(mean_discarding_first({100.0, 2.0, 4.0}), 3.0);
    // A single sample has nothing to discard against.
    EXPECT_DOUBLE_EQ(mean_discarding_first({7.0}), 7.0);
}

TEST(Summary, Percentile)
{
    std::vector<double> v{10, 20, 30, 40, 50};
    EXPECT_DOUBLE_EQ(percentile(v, 0), 10.0);
    EXPECT_DOUBLE_EQ(percentile(v, 100), 50.0);
    EXPECT_DOUBLE_EQ(percentile(v, 50), 30.0);
    EXPECT_DOUBLE_EQ(percentile(v, 25), 20.0);
    // Out-of-range p clamps.
    EXPECT_DOUBLE_EQ(percentile(v, 150), 50.0);
}

TEST(Summary, PercentileNearestRank)
{
    // Hand-computed against the nearest-rank definition:
    // rank = ceil(p/100 * N), clamped to [1, N].
    std::vector<double> v{35, 20, 15, 50, 40}; // unsorted on purpose
    EXPECT_DOUBLE_EQ(percentile_nearest_rank(v, 0.0), 15.0);
    EXPECT_DOUBLE_EQ(percentile_nearest_rank(v, 30.0), 20.0);
    EXPECT_DOUBLE_EQ(percentile_nearest_rank(v, 40.0), 20.0);
    EXPECT_DOUBLE_EQ(percentile_nearest_rank(v, 50.0), 35.0);
    EXPECT_DOUBLE_EQ(percentile_nearest_rank(v, 100.0), 50.0);
    // Out-of-range p clamps; empty input yields 0.
    EXPECT_DOUBLE_EQ(percentile_nearest_rank(v, 150.0), 50.0);
    EXPECT_DOUBLE_EQ(percentile_nearest_rank({}, 50.0), 0.0);
    // A lone sample is every percentile.
    EXPECT_DOUBLE_EQ(percentile_nearest_rank({42.0}, 1.0), 42.0);
    EXPECT_DOUBLE_EQ(percentile_nearest_rank({42.0}, 99.0), 42.0);
}

TEST(Summary, RelativeDelta)
{
    EXPECT_DOUBLE_EQ(relative_delta(110.0, 100.0), 0.1);
    EXPECT_DOUBLE_EQ(relative_delta(90.0, 100.0), -0.1);
    EXPECT_DOUBLE_EQ(relative_delta(1.0, 0.0), 0.0);
}

} // namespace
} // namespace helm
