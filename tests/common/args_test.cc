/**
 * @file
 * Unit tests for the command-line argument parser.
 */
#include <gtest/gtest.h>

#include "common/args.h"

namespace helm {
namespace {

ArgParser
make_parser()
{
    ArgParser parser("tool", "test tool");
    parser.add_option("model", "model name", "OPT-175B");
    parser.add_option("batch", "batch size", "1");
    parser.add_option("rate", "a double", "2.5");
    parser.add_switch("int4", "compression");
    return parser;
}

TEST(Args, DefaultsApply)
{
    ArgParser parser = make_parser();
    ASSERT_TRUE(parser.parse({}).is_ok());
    EXPECT_EQ(parser.get("model"), "OPT-175B");
    EXPECT_EQ(parser.get_u64("batch"), 1u);
    EXPECT_DOUBLE_EQ(parser.get_double("rate"), 2.5);
    EXPECT_FALSE(parser.is_set("int4"));
    EXPECT_FALSE(parser.is_set("model"));
}

TEST(Args, SpaceSeparatedValues)
{
    ArgParser parser = make_parser();
    ASSERT_TRUE(
        parser.parse({"--model", "OPT-30B", "--batch", "8"}).is_ok());
    EXPECT_EQ(parser.get("model"), "OPT-30B");
    EXPECT_EQ(parser.get_u64("batch"), 8u);
    EXPECT_TRUE(parser.is_set("model"));
}

TEST(Args, EqualsSeparatedValues)
{
    ArgParser parser = make_parser();
    ASSERT_TRUE(parser.parse({"--model=OPT-66B", "--rate=7.25"}).is_ok());
    EXPECT_EQ(parser.get("model"), "OPT-66B");
    EXPECT_DOUBLE_EQ(parser.get_double("rate"), 7.25);
}

TEST(Args, Switches)
{
    ArgParser parser = make_parser();
    ASSERT_TRUE(parser.parse({"--int4"}).is_ok());
    EXPECT_TRUE(parser.is_set("int4"));
    EXPECT_EQ(parser.get("int4"), "true");
}

TEST(Args, SwitchWithValueRejected)
{
    ArgParser parser = make_parser();
    EXPECT_FALSE(parser.parse({"--int4=yes"}).is_ok());
}

TEST(Args, UnknownFlagRejected)
{
    ArgParser parser = make_parser();
    const Status status = parser.parse({"--bogus", "1"});
    EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
    EXPECT_NE(status.message().find("bogus"), std::string::npos);
}

TEST(Args, MissingValueRejected)
{
    ArgParser parser = make_parser();
    EXPECT_FALSE(parser.parse({"--model"}).is_ok());
}

TEST(Args, PositionalsCollected)
{
    ArgParser parser = make_parser();
    ASSERT_TRUE(
        parser.parse({"first", "--batch", "2", "second"}).is_ok());
    EXPECT_EQ(parser.positionals(),
              (std::vector<std::string>{"first", "second"}));
}

TEST(Args, ArgvOverloadSkipsProgramName)
{
    ArgParser parser = make_parser();
    const char *argv[] = {"tool", "--batch", "4"};
    ASSERT_TRUE(parser.parse(3, argv).is_ok());
    EXPECT_EQ(parser.get_u64("batch"), 4u);
}

TEST(Args, BadNumbersFallBackToZero)
{
    ArgParser parser = make_parser();
    ASSERT_TRUE(parser.parse({"--batch", "not-a-number"}).is_ok());
    EXPECT_EQ(parser.get_u64("batch"), 0u);
}

TEST(Args, HelpMentionsEveryOption)
{
    ArgParser parser = make_parser();
    const std::string help = parser.help();
    EXPECT_NE(help.find("--model"), std::string::npos);
    EXPECT_NE(help.find("--int4"), std::string::npos);
    EXPECT_NE(help.find("default: OPT-175B"), std::string::npos);
    EXPECT_NE(help.find("test tool"), std::string::npos);
}

TEST(Args, LastValueWins)
{
    ArgParser parser = make_parser();
    ASSERT_TRUE(parser.parse({"--batch", "2", "--batch", "9"}).is_ok());
    EXPECT_EQ(parser.get_u64("batch"), 9u);
}

} // namespace
} // namespace helm
