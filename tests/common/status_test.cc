/**
 * @file
 * Unit tests for common/status.h: Status and Result<T>.
 */
#include <gtest/gtest.h>

#include <string>

#include "common/status.h"

namespace helm {
namespace {

TEST(Status, DefaultIsOk)
{
    Status s;
    EXPECT_TRUE(s.is_ok());
    EXPECT_EQ(s.code(), StatusCode::kOk);
    EXPECT_EQ(s.to_string(), "OK");
}

TEST(Status, FactoryFunctions)
{
    EXPECT_EQ(Status::invalid_argument("x").code(),
              StatusCode::kInvalidArgument);
    EXPECT_EQ(Status::out_of_range("x").code(), StatusCode::kOutOfRange);
    EXPECT_EQ(Status::capacity_exceeded("x").code(),
              StatusCode::kCapacityExceeded);
    EXPECT_EQ(Status::failed_precondition("x").code(),
              StatusCode::kFailedPrecondition);
    EXPECT_EQ(Status::not_found("x").code(), StatusCode::kNotFound);
    EXPECT_EQ(Status::internal("x").code(), StatusCode::kInternal);
}

TEST(Status, ToStringIncludesCodeAndMessage)
{
    const Status s = Status::invalid_argument("batch must be positive");
    EXPECT_EQ(s.to_string(), "INVALID_ARGUMENT: batch must be positive");
    EXPECT_FALSE(s.is_ok());
}

TEST(Status, CodeNames)
{
    EXPECT_STREQ(status_code_name(StatusCode::kOk), "OK");
    EXPECT_STREQ(status_code_name(StatusCode::kCapacityExceeded),
                 "CAPACITY_EXCEEDED");
}

TEST(Result, ValueCase)
{
    Result<int> r(42);
    ASSERT_TRUE(r.is_ok());
    EXPECT_TRUE(static_cast<bool>(r));
    EXPECT_EQ(r.value(), 42);
    EXPECT_EQ(*r, 42);
    EXPECT_TRUE(r.status().is_ok());
}

TEST(Result, ErrorCase)
{
    Result<int> r(Status::not_found("missing"));
    EXPECT_FALSE(r.is_ok());
    EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
    EXPECT_EQ(r.value_or(-1), -1);
}

TEST(Result, ValueOrPassesThroughValue)
{
    Result<std::string> r(std::string("hello"));
    EXPECT_EQ(r.value_or("fallback"), "hello");
}

TEST(Result, ArrowOperator)
{
    Result<std::string> r(std::string("hello"));
    EXPECT_EQ(r->size(), 5u);
}

TEST(Result, MoveOutValue)
{
    Result<std::string> r(std::string("payload"));
    std::string moved = std::move(r).value();
    EXPECT_EQ(moved, "payload");
}

TEST(Result, OkStatusConstructionBecomesInternalError)
{
    // Building a Result from an OK status is a caller bug; it must still
    // yield a well-defined error result.
    Result<int> r{Status::ok()};
    EXPECT_FALSE(r.is_ok());
    EXPECT_EQ(r.status().code(), StatusCode::kInternal);
}

Status
helper_returning_error()
{
    HELM_RETURN_IF_ERROR(Status::invalid_argument("inner"));
    return Status::ok();
}

Status
helper_returning_ok()
{
    HELM_RETURN_IF_ERROR(Status::ok());
    return Status::internal("reached past the macro");
}

TEST(Status, ReturnIfErrorMacro)
{
    EXPECT_EQ(helper_returning_error().code(),
              StatusCode::kInvalidArgument);
    // OK statuses must not early-return.
    EXPECT_EQ(helper_returning_ok().code(), StatusCode::kInternal);
}

} // namespace
} // namespace helm
