/**
 * @file
 * Unit tests for common/units.h: Bandwidth arithmetic and formatting.
 */
#include <gtest/gtest.h>

#include "common/units.h"

namespace helm {
namespace {

TEST(Units, Constants)
{
    EXPECT_EQ(kKiB, 1024u);
    EXPECT_EQ(kMiB, 1024u * 1024u);
    EXPECT_EQ(kGiB, 1024u * 1024u * 1024u);
    EXPECT_EQ(kGB, 1000000000u);
    EXPECT_EQ(kTiB, 1024u * kGiB);
}

TEST(Units, BandwidthConstruction)
{
    EXPECT_DOUBLE_EQ(Bandwidth::gb_per_s(1.0).raw(), 1e9);
    EXPECT_DOUBLE_EQ(Bandwidth::mb_per_s(1.0).raw(), 1e6);
    EXPECT_DOUBLE_EQ(Bandwidth::bytes_per_s(42.0).raw(), 42.0);
    EXPECT_DOUBLE_EQ(Bandwidth::gb_per_s(25.0).as_gb_per_s(), 25.0);
}

TEST(Units, BandwidthDefaultIsZero)
{
    Bandwidth bw;
    EXPECT_TRUE(bw.is_zero());
    EXPECT_FALSE(Bandwidth::gb_per_s(1.0).is_zero());
}

TEST(Units, TransferTime)
{
    const Bandwidth bw = Bandwidth::gb_per_s(10.0);
    EXPECT_DOUBLE_EQ(bw.transfer_time(10 * kGB), 1.0);
    EXPECT_DOUBLE_EQ(bw.transfer_time(100 * kGB), 10.0);
    EXPECT_DOUBLE_EQ(bw.transfer_time(0), 0.0);
    // Zero bandwidth yields zero time rather than dividing by zero.
    EXPECT_DOUBLE_EQ(Bandwidth().transfer_time(kGB), 0.0);
}

TEST(Units, BandwidthScaled)
{
    const Bandwidth bw = Bandwidth::gb_per_s(20.0).scaled(0.5);
    EXPECT_DOUBLE_EQ(bw.as_gb_per_s(), 10.0);
}

TEST(Units, BandwidthComparisons)
{
    const Bandwidth a = Bandwidth::gb_per_s(1.0);
    const Bandwidth b = Bandwidth::gb_per_s(2.0);
    EXPECT_TRUE(a < b);
    EXPECT_TRUE(b > a);
    EXPECT_TRUE(a <= a);
    EXPECT_TRUE(a >= a);
    EXPECT_TRUE(a == a);
    EXPECT_FALSE(a == b);
}

TEST(Units, MinMaxBandwidth)
{
    const Bandwidth a = Bandwidth::gb_per_s(5.0);
    const Bandwidth b = Bandwidth::gb_per_s(7.0);
    EXPECT_EQ(min_bw(a, b), a);
    EXPECT_EQ(min_bw(b, a), a);
    EXPECT_EQ(max_bw(a, b), b);
    EXPECT_EQ(max_bw(b, a), b);
}

TEST(Units, FormatBytes)
{
    EXPECT_EQ(format_bytes(512), "512 B");
    EXPECT_EQ(format_bytes(kKiB), "1.00 KiB");
    EXPECT_EQ(format_bytes(kMiB), "1.00 MiB");
    EXPECT_EQ(format_bytes(kGiB), "1.00 GiB");
    EXPECT_EQ(format_bytes(kGiB + kGiB / 2), "1.50 GiB");
    EXPECT_EQ(format_bytes(0), "0 B");
}

TEST(Units, FormatSeconds)
{
    EXPECT_EQ(format_seconds(1.5), "1.50 s");
    EXPECT_EQ(format_seconds(0.0125), "12.5 ms");
    EXPECT_EQ(format_seconds(12.5e-6), "12.5 us");
    EXPECT_EQ(format_seconds(500e-9), "500 ns");
    EXPECT_EQ(format_seconds(-0.5), "-500 ms");
}

TEST(Units, FormatBandwidth)
{
    EXPECT_EQ(format_bandwidth(Bandwidth::gb_per_s(24.5)), "24.5 GB/s");
    EXPECT_EQ(format_bandwidth(Bandwidth::gb_per_s(3.26)), "3.26 GB/s");
    EXPECT_EQ(format_bandwidth(Bandwidth::mb_per_s(0.5)), "0.50 MB/s");
}

} // namespace
} // namespace helm
