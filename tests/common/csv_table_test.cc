/**
 * @file
 * Unit tests for common/csv.h and common/table.h.
 */
#include <gtest/gtest.h>

#include <sstream>

#include "common/csv.h"
#include "common/table.h"

namespace helm {
namespace {

TEST(Csv, HeaderAndRows)
{
    std::ostringstream out;
    CsvWriter csv(out);
    csv.header({"config", "batch", "tbt_ms"});
    csv.row({"NVDRAM", "1", "56.8"});
    csv.row({"DRAM", "1", "49.3"});
    EXPECT_EQ(out.str(),
              "config,batch,tbt_ms\nNVDRAM,1,56.8\nDRAM,1,49.3\n");
    EXPECT_EQ(csv.rows_written(), 2u);
}

TEST(Csv, EscapingCommasQuotesNewlines)
{
    EXPECT_EQ(CsvWriter::escape("plain"), "plain");
    EXPECT_EQ(CsvWriter::escape("a,b"), "\"a,b\"");
    EXPECT_EQ(CsvWriter::escape("say \"hi\""), "\"say \"\"hi\"\"\"");
    EXPECT_EQ(CsvWriter::escape("two\nlines"), "\"two\nlines\"");
}

TEST(Csv, RowNumericFormatsWithPrecision)
{
    std::ostringstream out;
    CsvWriter csv(out);
    csv.header({"key", "a", "b"});
    csv.row_numeric("x", {1.23456, 2.0}, 2);
    EXPECT_EQ(out.str(), "key,a,b\nx,1.23,2.00\n");
}

TEST(Csv, FormatFixed)
{
    EXPECT_EQ(format_fixed(3.14159, 2), "3.14");
    EXPECT_EQ(format_fixed(3.14159, 0), "3");
    EXPECT_EQ(format_fixed(-0.5, 1), "-0.5");
}

TEST(AsciiTable, AlignmentAndRule)
{
    AsciiTable table("Caption");
    table.set_header({"name", "value"});
    table.add_row({"alpha", "1"});
    table.add_row({"b", "22"});
    table.align_right(1);
    const std::string text = table.to_string();
    EXPECT_NE(text.find("Caption"), std::string::npos);
    EXPECT_NE(text.find("name"), std::string::npos);
    EXPECT_NE(text.find("-----"), std::string::npos);
    // Right-aligned numeric column: "22" ends where " 1" ends.
    EXPECT_NE(text.find("alpha      1"), std::string::npos);
    EXPECT_NE(text.find("b         22"), std::string::npos);
    EXPECT_EQ(table.row_count(), 2u);
}

TEST(AsciiTable, RaggedRowsHandled)
{
    AsciiTable table;
    table.set_header({"a", "b", "c"});
    table.add_row({"x"});
    table.add_row({"1", "2", "3", "4"});
    // Must not crash and must include every cell.
    const std::string text = table.to_string();
    EXPECT_NE(text.find("4"), std::string::npos);
}

TEST(AsciiTable, AlignRightFrom)
{
    AsciiTable table;
    table.set_header({"label", "v1", "v2"});
    table.add_row({"row", "1", "2"});
    table.align_right_from(1);
    const std::string text = table.to_string();
    // Values right-align under their headers.
    EXPECT_NE(text.find("row     1   2"), std::string::npos);
}

} // namespace
} // namespace helm
