/**
 * @file
 * Unit tests for the leveled logging facility.
 */
#include <gtest/gtest.h>

#include "common/log.h"

namespace helm {
namespace {

/** RAII guard restoring the global log level. */
class LevelGuard
{
  public:
    LevelGuard() : saved_(log_level()) {}
    ~LevelGuard() { set_log_level(saved_); }

  private:
    LogLevel saved_;
};

TEST(Log, DefaultLevelIsWarn)
{
    // The library must be quiet by default.
    EXPECT_EQ(log_level(), LogLevel::kWarn);
}

TEST(Log, SetAndGet)
{
    LevelGuard guard;
    set_log_level(LogLevel::kTrace);
    EXPECT_EQ(log_level(), LogLevel::kTrace);
    set_log_level(LogLevel::kOff);
    EXPECT_EQ(log_level(), LogLevel::kOff);
}

TEST(Log, ParseNames)
{
    EXPECT_EQ(parse_log_level("trace"), LogLevel::kTrace);
    EXPECT_EQ(parse_log_level("debug"), LogLevel::kDebug);
    EXPECT_EQ(parse_log_level("info"), LogLevel::kInfo);
    EXPECT_EQ(parse_log_level("warn"), LogLevel::kWarn);
    EXPECT_EQ(parse_log_level("error"), LogLevel::kError);
    EXPECT_EQ(parse_log_level("off"), LogLevel::kOff);
    // Unknown names fall back to the default.
    EXPECT_EQ(parse_log_level("chatty"), LogLevel::kWarn);
    EXPECT_EQ(parse_log_level(""), LogLevel::kWarn);
}

TEST(Log, SuppressedLevelsDoNotEvaluateOperands)
{
    LevelGuard guard;
    set_log_level(LogLevel::kError);
    int evaluations = 0;
    auto expensive = [&evaluations] {
        ++evaluations;
        return 42;
    };
    HELM_LOG(kDebug) << "value: " << expensive();
    EXPECT_EQ(evaluations, 0) << "suppressed logs must not format";
    HELM_LOG(kError) << "value: " << expensive();
    EXPECT_EQ(evaluations, 1);
}

TEST(Log, EmitsToStderr)
{
    LevelGuard guard;
    set_log_level(LogLevel::kInfo);
    ::testing::internal::CaptureStderr();
    HELM_LOG(kInfo) << "hello " << 123;
    const std::string output =
        ::testing::internal::GetCapturedStderr();
    EXPECT_NE(output.find("INFO"), std::string::npos);
    EXPECT_NE(output.find("hello 123"), std::string::npos);
    EXPECT_NE(output.find("log_test.cc"), std::string::npos);
}

TEST(Log, OffSilencesEverything)
{
    LevelGuard guard;
    set_log_level(LogLevel::kOff);
    ::testing::internal::CaptureStderr();
    HELM_LOG(kError) << "should not appear";
    EXPECT_TRUE(::testing::internal::GetCapturedStderr().empty());
}

} // namespace
} // namespace helm
