/**
 * @file
 * Unit tests for the nvbandwidth-equivalent copy benchmark (Fig. 3).
 */
#include <gtest/gtest.h>

#include "membench/membench.h"

namespace helm::membench {
namespace {

using mem::ConfigKind;

TEST(Membench, SingleCopyBandwidthMatchesPath)
{
    const auto sys = mem::make_config(ConfigKind::kDram);
    const auto m = measure_copy(sys, kGiB, CopyDirection::kHostToGpu);
    EXPECT_EQ(m.buffer, kGiB);
    EXPECT_GT(m.elapsed, 0.0);
    EXPECT_NEAR(m.bandwidth.as_gb_per_s(),
                sys.host_to_gpu_cold_bw(kGiB).as_gb_per_s(), 0.01);
}

TEST(Membench, DefaultSweepLadder)
{
    const auto buffers = default_buffer_sweep();
    // Fig. 3: 256 MB .. 32 GB.
    EXPECT_EQ(buffers.front(), 256 * kMiB);
    EXPECT_EQ(buffers.back(), 32 * kGiB);
    for (std::size_t i = 1; i < buffers.size(); ++i)
        EXPECT_GT(buffers[i], buffers[i - 1]);
}

TEST(Membench, DramFlatAcrossBufferSizes)
{
    const auto sys = mem::make_config(ConfigKind::kDram);
    const auto small =
        measure_copy(sys, 256 * kMiB, CopyDirection::kHostToGpu);
    const auto large =
        measure_copy(sys, 32 * kGiB, CopyDirection::kHostToGpu);
    EXPECT_NEAR(small.bandwidth.as_gb_per_s(),
                large.bandwidth.as_gb_per_s(), 0.01);
}

TEST(Membench, NvdramH2dDropsAtLargeBuffers)
{
    // Fig. 3a: ~20% below DRAM up to 4 GB, widening to ~37% at 32 GB.
    const auto dram = mem::make_config(ConfigKind::kDram);
    const auto nvdram = mem::make_config(ConfigKind::kNvdram);
    const double dram_bw =
        measure_copy(dram, 4 * kGiB, CopyDirection::kHostToGpu)
            .bandwidth.as_gb_per_s();
    const double nv_small =
        measure_copy(nvdram, 4 * kGiB, CopyDirection::kHostToGpu)
            .bandwidth.as_gb_per_s();
    const double nv_large =
        measure_copy(nvdram, 32 * kGiB, CopyDirection::kHostToGpu)
            .bandwidth.as_gb_per_s();
    EXPECT_NEAR(1.0 - nv_small / dram_bw, 0.19, 0.04);
    EXPECT_NEAR(1.0 - nv_large / dram_bw, 0.37, 0.04);
    EXPECT_NEAR(nv_small, 19.91, 0.1);
    EXPECT_NEAR(nv_large, 15.52, 0.1);
}

TEST(Membench, NvdramD2hCollapses)
{
    // Fig. 3b: GPU->Optane is ~88% below DRAM, peaking at 3.26 GB/s.
    auto dram = mem::make_config(ConfigKind::kDram);
    auto nvdram = mem::make_config(ConfigKind::kNvdram);
    dram.set_numa_node(1);
    nvdram.set_numa_node(1);
    const double dram_bw =
        measure_copy(dram, kGiB, CopyDirection::kGpuToHost)
            .bandwidth.as_gb_per_s();
    const double nv_bw =
        measure_copy(nvdram, kGiB, CopyDirection::kGpuToHost)
            .bandwidth.as_gb_per_s();
    EXPECT_NEAR(nv_bw, 3.26, 0.1);
    EXPECT_GT(1.0 - nv_bw / dram_bw, 0.80);
}

TEST(Membench, NvdramD2hNumaAsymmetry)
{
    // Fig. 3b: NVDRAM-0 sits below NVDRAM-1.
    auto node0 = mem::make_config(ConfigKind::kNvdram);
    node0.set_numa_node(0);
    auto node1 = mem::make_config(ConfigKind::kNvdram);
    node1.set_numa_node(1);
    const double bw0 =
        measure_copy(node0, kGiB, CopyDirection::kGpuToHost)
            .bandwidth.as_gb_per_s();
    const double bw1 =
        measure_copy(node1, kGiB, CopyDirection::kGpuToHost)
            .bandwidth.as_gb_per_s();
    EXPECT_LT(bw0, bw1);
}

TEST(Membench, MemoryModeTracksDramInTheSweep)
{
    // Fig. 3a: MM-0/MM-1 overlap DRAM because sweep buffers fit the
    // DRAM cache.
    const auto dram = mem::make_config(ConfigKind::kDram);
    const auto mm = mem::make_config(ConfigKind::kMemoryMode);
    const double dram_bw =
        measure_copy(dram, 8 * kGiB, CopyDirection::kHostToGpu)
            .bandwidth.as_gb_per_s();
    const double mm_bw =
        measure_copy(mm, 8 * kGiB, CopyDirection::kHostToGpu)
            .bandwidth.as_gb_per_s();
    EXPECT_NEAR(mm_bw / dram_bw, 1.0, 0.06);
}

TEST(Membench, MemoryModeD2hNode0BelowNode1)
{
    // Fig. 3b: DRAM-0, DRAM-1, and MM-1 overlap; MM-0 does not.
    auto mm0 = mem::make_config(ConfigKind::kMemoryMode);
    mm0.set_numa_node(0);
    auto mm1 = mem::make_config(ConfigKind::kMemoryMode);
    mm1.set_numa_node(1);
    const double bw0 = measure_copy(mm0, kGiB, CopyDirection::kGpuToHost)
                           .bandwidth.as_gb_per_s();
    const double bw1 = measure_copy(mm1, kGiB, CopyDirection::kGpuToHost)
                           .bandwidth.as_gb_per_s();
    EXPECT_LT(bw0, bw1 * 0.8);
    // MM-1 overlaps DRAM-1.
    auto dram1 = mem::make_config(ConfigKind::kDram);
    dram1.set_numa_node(1);
    const double dram_bw =
        measure_copy(dram1, kGiB, CopyDirection::kGpuToHost)
            .bandwidth.as_gb_per_s();
    EXPECT_NEAR(bw1 / dram_bw, 1.0, 0.06);
}

TEST(Membench, SweepCoversEveryTuple)
{
    const std::vector<mem::ConfigKind> kinds{ConfigKind::kDram,
                                             ConfigKind::kNvdram};
    const std::vector<Bytes> buffers{256 * kMiB, kGiB};
    const auto results = sweep(kinds, buffers);
    // 2 configs x 2 nodes x 2 buffers x 2 directions.
    EXPECT_EQ(results.size(), 16u);
    for (const auto &m : results) {
        EXPECT_GT(m.bandwidth.raw(), 0.0);
        EXPECT_GT(m.elapsed, 0.0);
    }
}

TEST(Membench, DirectionNames)
{
    EXPECT_STREQ(copy_direction_name(CopyDirection::kHostToGpu), "h2d");
    EXPECT_STREQ(copy_direction_name(CopyDirection::kGpuToHost), "d2h");
}

} // namespace
} // namespace helm::membench
