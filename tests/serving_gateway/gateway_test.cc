/**
 * @file
 * Unit tests for the serving gateway (src/serving_gateway/): admission
 * policy, the session slab, session routing, end-to-end streaming
 * through a real ServingBackend, and the closed-loop driver.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "core/helm.h"

namespace helm::gateway {
namespace {

// ---- admission -------------------------------------------------------

TEST(Admission, ValidateNamesTheBrokenKnob)
{
    AdmissionConfig config;
    EXPECT_TRUE(config.validate().is_ok());

    config.accept_queue = 0;
    EXPECT_FALSE(config.validate().is_ok());

    config = AdmissionConfig{};
    config.max_sessions = 0;
    EXPECT_FALSE(config.validate().is_ok());

    config = AdmissionConfig{};
    config.context_block = 0;
    EXPECT_FALSE(config.validate().is_ok());

    config = AdmissionConfig{};
    config.max_context = 32;
    config.context_block = 64; // cap below one block
    EXPECT_FALSE(config.validate().is_ok());
}

TEST(Admission, ChargeContextRoundsUpToBlocks)
{
    AdmissionConfig config;
    config.max_context = 4096;
    config.context_block = 64;
    const AdmissionControl admission(config);

    EXPECT_EQ(admission.charge_context(0, 1).value(), 64u);
    EXPECT_EQ(admission.charge_context(0, 64).value(), 64u);
    EXPECT_EQ(admission.charge_context(0, 65).value(), 128u);
    // Multi-turn growth: 149 tokens of history + a 128-token prompt.
    EXPECT_EQ(admission.charge_context(149, 128).value(), 320u);
}

TEST(Admission, ChargeContextEnforcesTheCap)
{
    AdmissionConfig config;
    config.max_context = 128;
    config.context_block = 64;
    const AdmissionControl admission(config);

    EXPECT_TRUE(admission.charge_context(64, 64).has_value());
    EXPECT_FALSE(admission.charge_context(64, 65).has_value());
    EXPECT_FALSE(admission.charge_context(128, 1).has_value());
}

TEST(Admission, BoundsAndRejectCounting)
{
    AdmissionConfig config;
    config.accept_queue = 2;
    config.max_sessions = 3;
    AdmissionControl admission(config);

    EXPECT_TRUE(admission.admit_turn(0));
    EXPECT_TRUE(admission.admit_turn(1));
    EXPECT_FALSE(admission.admit_turn(2));
    EXPECT_TRUE(admission.admit_session(2));
    EXPECT_FALSE(admission.admit_session(3));

    admission.count_reject(RejectReason::kAcceptQueueFull);
    admission.count_reject(RejectReason::kAcceptQueueFull);
    admission.count_reject(RejectReason::kBackendShed);
    const auto &rejects = admission.rejects();
    EXPECT_EQ(rejects[static_cast<std::size_t>(
                  RejectReason::kAcceptQueueFull)],
              2u);
    EXPECT_EQ(
        rejects[static_cast<std::size_t>(RejectReason::kBackendShed)],
        1u);
    EXPECT_EQ(
        rejects[static_cast<std::size_t>(RejectReason::kSessionLimit)],
        0u);
}

TEST(Admission, ReasonNamesAreMetricLabels)
{
    EXPECT_STREQ(reject_reason_name(RejectReason::kAcceptQueueFull),
                 "accept_queue_full");
    EXPECT_STREQ(reject_reason_name(RejectReason::kSessionLimit),
                 "session_limit");
    EXPECT_STREQ(reject_reason_name(RejectReason::kContextOverflow),
                 "context_overflow");
    EXPECT_STREQ(reject_reason_name(RejectReason::kBackendShed),
                 "backend_shed");
}

// ---- session table ---------------------------------------------------

TEST(SessionTable, OpenFindClose)
{
    SessionTable table;
    const SessionId id = table.open(2, 1.5);
    ASSERT_NE(id, kInvalidSession);
    Session *session = table.find(id);
    ASSERT_NE(session, nullptr);
    EXPECT_EQ(session->id, id);
    EXPECT_EQ(session->replica, 2u);
    EXPECT_DOUBLE_EQ(session->opened_at, 1.5);
    EXPECT_EQ(table.active(), 1u);

    table.close(id);
    EXPECT_EQ(table.find(id), nullptr);
    EXPECT_EQ(table.active(), 0u);
    EXPECT_EQ(table.opened_total(), 1u);
    EXPECT_EQ(table.closed_total(), 1u);

    table.close(id); // idempotent
    EXPECT_EQ(table.closed_total(), 1u);
}

TEST(SessionTable, StaleHandleCannotReachReusedSlot)
{
    SessionTable table;
    const SessionId first = table.open(0, 0.0);
    table.close(first);
    const SessionId second = table.open(1, 2.0);
    EXPECT_NE(first, second);
    EXPECT_EQ(table.find(first), nullptr);
    ASSERT_NE(table.find(second), nullptr);
    EXPECT_EQ(table.find(second)->replica, 1u);
}

// ---- router ----------------------------------------------------------

std::vector<ReplicaLoad>
flat_loads(std::size_t replicas)
{
    return std::vector<ReplicaLoad>(replicas);
}

TEST(Router, RoundRobinCycles)
{
    ReplicaRouter router(RouterPolicy::kRoundRobin, 3);
    const auto loads = flat_loads(3);
    std::vector<std::uint32_t> placed;
    for (SessionId s = 1; s <= 6; ++s)
        placed.push_back(router.route(s, loads));
    EXPECT_EQ(placed, (std::vector<std::uint32_t>{0, 1, 2, 0, 1, 2}));
}

TEST(Router, LeastLoadedPicksMinQueuedPlusInflight)
{
    ReplicaRouter router(RouterPolicy::kLeastLoaded, 3);
    std::vector<ReplicaLoad> loads(3);
    loads[0].queued = 3;
    loads[0].inflight = 2;
    loads[1].queued = 1;
    loads[1].inflight = 1;
    loads[2].queued = 0;
    loads[2].inflight = 7;
    EXPECT_EQ(router.route(1, loads), 1u);
    loads[2].queued = 1;
    loads[2].inflight = 1; // tie with replica 1 -> lowest index wins
    EXPECT_EQ(router.route(2, loads), 1u);
}

TEST(Router, HashAffinityIsStableAndInRange)
{
    ReplicaRouter router(RouterPolicy::kHashAffinity, 4);
    const auto loads = flat_loads(4);
    std::vector<bool> hit(4, false);
    for (SessionId s = 1; s <= 256; ++s) {
        const std::uint32_t first = router.route(s, loads);
        ASSERT_LT(first, 4u);
        EXPECT_EQ(router.route(s, loads), first) << "unstable for " << s;
        hit[first] = true;
    }
    for (std::size_t r = 0; r < hit.size(); ++r)
        EXPECT_TRUE(hit[r]) << "replica " << r << " never chosen";
}

TEST(Router, PolicyNamesRoundTrip)
{
    for (RouterPolicy policy :
         {RouterPolicy::kRoundRobin, RouterPolicy::kLeastLoaded,
          RouterPolicy::kHashAffinity}) {
        const auto parsed =
            parse_router_policy(router_policy_name(policy));
        ASSERT_TRUE(parsed.is_ok());
        EXPECT_EQ(*parsed, policy);
    }
    EXPECT_TRUE(parse_router_policy("round-robin").is_ok());
    EXPECT_TRUE(parse_router_policy("least-loaded").is_ok());
    EXPECT_FALSE(parse_router_policy("random").is_ok());
}

// ---- gateway end to end against a real backend -----------------------

runtime::ServingSpec
small_spec(std::uint64_t max_context)
{
    runtime::ServingSpec spec;
    spec.model = model::opt_config(model::OptVariant::kOpt1_3B);
    spec.memory = mem::ConfigKind::kNvdram;
    spec.shape.prompt_tokens = max_context;
    spec.shape.output_tokens = 8;
    return spec;
}

runtime::ServingConfig
greedy_backend_config()
{
    runtime::ServingConfig config;
    config.max_queue_delay = 0.0;
    config.max_queue_length = 1u << 20;
    return config;
}

/** One replica + gateway wired to a fresh simulator. */
struct Fixture
{
    sim::Simulator sim;
    std::vector<runtime::Server> servers;
    std::unique_ptr<Gateway> gateway;

    explicit Fixture(GatewayConfig config, std::size_t replicas = 1)
    {
        std::vector<runtime::ServingBackend *> backends;
        servers.reserve(replicas);
        for (std::size_t r = 0; r < replicas; ++r) {
            auto created = runtime::Server::create(
                small_spec(config.admission.max_context),
                greedy_backend_config());
            EXPECT_TRUE(created.is_ok())
                << created.status().to_string();
            servers.push_back(std::move(*created));
        }
        for (auto &server : servers)
            backends.push_back(&server);
        gateway =
            std::make_unique<Gateway>(sim, config, std::move(backends));
    }
};

TEST(Gateway, StreamsEveryTokenThenCompletes)
{
    GatewayConfig config;
    config.admission.max_context = 1024;
    Fixture fx(config);

    const OpenOutcome open = fx.gateway->open_session();
    ASSERT_TRUE(open.admitted);

    std::vector<StreamEvent::Kind> kinds;
    TurnMetrics metrics;
    const SubmitOutcome submit = fx.gateway->submit_turn(
        open.session, 100, 4, [&](const StreamEvent &event) {
            kinds.push_back(event.kind);
            if (event.kind == StreamEvent::Kind::kCompleted) {
                ASSERT_NE(event.metrics, nullptr);
                metrics = *event.metrics;
            }
        });
    ASSERT_TRUE(submit.admitted);
    fx.sim.run();

    // kAccepted, kFirstToken, 3x kToken, kCompleted.
    ASSERT_EQ(kinds.size(), 6u);
    EXPECT_EQ(kinds.front(), StreamEvent::Kind::kAccepted);
    EXPECT_EQ(kinds[1], StreamEvent::Kind::kFirstToken);
    EXPECT_EQ(kinds[2], StreamEvent::Kind::kToken);
    EXPECT_EQ(kinds.back(), StreamEvent::Kind::kCompleted);

    EXPECT_GT(metrics.ttft, 0.0);
    EXPECT_GE(metrics.e2e, metrics.ttft);
    EXPECT_EQ(metrics.prompt_tokens, 128u); // 100 rounded to the block
    EXPECT_EQ(metrics.output_tokens, 4u);

    const GatewayStats &stats = fx.gateway->stats();
    EXPECT_EQ(stats.turns_completed, 1u);
    EXPECT_EQ(stats.tokens_delivered, 4u);
    EXPECT_EQ(stats.dispatch_windows, 1u);
    EXPECT_TRUE(fx.gateway->health().is_ok());

    // Context accounting: padded prompt + generated tokens.
    const Session *session =
        fx.gateway->sessions().find(open.session);
    ASSERT_NE(session, nullptr);
    EXPECT_EQ(session->context_tokens, 132u);
    EXPECT_EQ(session->turns_completed, 1u);
    EXPECT_EQ(session->inflight, 0u);
}

TEST(Gateway, CoalescedStreamDeliversFirstTokenAndCompletion)
{
    GatewayConfig config;
    config.admission.max_context = 1024;
    config.per_token_stream = false;
    Fixture fx(config);

    const OpenOutcome open = fx.gateway->open_session();
    ASSERT_TRUE(open.admitted);
    std::vector<StreamEvent::Kind> kinds;
    ASSERT_TRUE(fx.gateway
                    ->submit_turn(open.session, 100, 4,
                                  [&](const StreamEvent &event) {
                                      kinds.push_back(event.kind);
                                  })
                    .admitted);
    fx.sim.run();
    EXPECT_EQ(kinds,
              (std::vector<StreamEvent::Kind>{
                  StreamEvent::Kind::kAccepted,
                  StreamEvent::Kind::kFirstToken,
                  StreamEvent::Kind::kCompleted}));
    EXPECT_EQ(fx.gateway->stats().tokens_delivered, 4u);
}

TEST(Gateway, ContextOverflowShedsTheTurn)
{
    GatewayConfig config;
    config.admission.max_context = 128;
    Fixture fx(config);

    const OpenOutcome open = fx.gateway->open_session();
    ASSERT_TRUE(open.admitted);
    ASSERT_TRUE(
        fx.gateway->submit_turn(open.session, 100, 4, nullptr).admitted);
    fx.sim.run();

    // Context is now 132 of 128: the next turn cannot fit.
    const SubmitOutcome second =
        fx.gateway->submit_turn(open.session, 1, 1, nullptr);
    EXPECT_FALSE(second.admitted);
    EXPECT_EQ(second.reason, RejectReason::kContextOverflow);
    EXPECT_EQ(fx.gateway->admission().rejects()[static_cast<std::size_t>(
                  RejectReason::kContextOverflow)],
              1u);
}

TEST(Gateway, AcceptQueueBoundSheds)
{
    GatewayConfig config;
    config.admission.max_context = 1024;
    config.admission.accept_queue = 1;
    Fixture fx(config);

    const OpenOutcome s1 = fx.gateway->open_session();
    const OpenOutcome s2 = fx.gateway->open_session();
    ASSERT_TRUE(s1.admitted && s2.admitted);

    ASSERT_TRUE(
        fx.gateway->submit_turn(s1.session, 64, 2, nullptr).admitted);
    // The dispatch event has not run yet, so the queue is at its bound.
    const SubmitOutcome rejected =
        fx.gateway->submit_turn(s2.session, 64, 2, nullptr);
    EXPECT_FALSE(rejected.admitted);
    EXPECT_EQ(rejected.reason, RejectReason::kAcceptQueueFull);

    fx.sim.run();
    EXPECT_EQ(fx.gateway->stats().turns_completed, 1u);
}

TEST(Gateway, SessionLimitAndStaleHandles)
{
    GatewayConfig config;
    config.admission.max_context = 1024;
    config.admission.max_sessions = 1;
    Fixture fx(config);

    const OpenOutcome first = fx.gateway->open_session();
    ASSERT_TRUE(first.admitted);
    const OpenOutcome second = fx.gateway->open_session();
    EXPECT_FALSE(second.admitted);
    EXPECT_EQ(second.reason, RejectReason::kSessionLimit);

    fx.gateway->close_session(first.session);
    const OpenOutcome third = fx.gateway->open_session();
    ASSERT_TRUE(third.admitted);

    // The closed handle must not submit into the reused slot.
    const SubmitOutcome stale =
        fx.gateway->submit_turn(first.session, 64, 2, nullptr);
    EXPECT_FALSE(stale.admitted);
}

TEST(Gateway, RoutesSessionsAcrossReplicas)
{
    GatewayConfig config;
    config.admission.max_context = 1024;
    config.router = RouterPolicy::kRoundRobin;
    Fixture fx(config, 2);

    for (int i = 0; i < 4; ++i) {
        const OpenOutcome open = fx.gateway->open_session();
        ASSERT_TRUE(open.admitted);
        ASSERT_TRUE(fx.gateway->submit_turn(open.session, 64, 2, nullptr)
                        .admitted);
    }
    fx.sim.run();
    const GatewayStats &stats = fx.gateway->stats();
    EXPECT_EQ(stats.turns_completed, 4u);
    ASSERT_EQ(stats.routed_per_replica.size(), 2u);
    EXPECT_EQ(stats.routed_per_replica[0], 2u);
    EXPECT_EQ(stats.routed_per_replica[1], 2u);
}

// ---- closed-loop driver ----------------------------------------------

DriverConfig
small_driver()
{
    DriverConfig config;
    config.clients = 8;
    config.target_requests = 200;
    config.turns_per_session = 3;
    config.mean_think = 0.01;
    config.prompt_tokens = 64;
    config.output_tokens = 4;
    config.seed = 11;
    return config;
}

DriverReport
drive_once(std::uint64_t seed)
{
    GatewayConfig config;
    config.admission.max_context = 1024;
    Fixture fx(config, 2);
    DriverConfig driver = small_driver();
    driver.seed = seed;
    auto report = run_closed_loop(fx.sim, *fx.gateway, driver);
    EXPECT_TRUE(report.is_ok()) << report.status().to_string();
    return std::move(report).value();
}

TEST(Driver, ReachesTheTargetAndReportsSamples)
{
    const DriverReport report = drive_once(11);
    EXPECT_GE(report.completed, report.target_requests);
    EXPECT_GE(report.attempts, report.completed);
    EXPECT_EQ(report.ttft.size(), report.completed);
    EXPECT_EQ(report.e2e.size(), report.completed);
    EXPECT_GT(report.sim_makespan, 0.0);
    EXPECT_GT(report.events_executed, 0u);
    for (const double sample : report.ttft)
        ASSERT_TRUE(std::isfinite(sample) && sample > 0.0);
    const double p50 = percentile_nearest_rank(report.e2e, 50.0);
    const double p99 = percentile_nearest_rank(report.e2e, 99.0);
    EXPECT_GE(p99, p50);
}

TEST(Driver, SameSeedSameVirtualRun)
{
    const DriverReport a = drive_once(17);
    const DriverReport b = drive_once(17);
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.attempts, b.attempts);
    EXPECT_EQ(a.retries, b.retries);
    EXPECT_EQ(a.events_executed, b.events_executed);
    EXPECT_DOUBLE_EQ(a.sim_makespan, b.sim_makespan);
    EXPECT_EQ(a.ttft, b.ttft);
    EXPECT_EQ(a.e2e, b.e2e);
}

TEST(Driver, ValidateRejectsZeroClients)
{
    DriverConfig config = small_driver();
    config.clients = 0;
    EXPECT_FALSE(config.validate().is_ok());
    config = small_driver();
    config.target_requests = 0;
    EXPECT_FALSE(config.validate().is_ok());
}

} // namespace
} // namespace helm::gateway
