/**
 * @file
 * Unit tests for the PCIe link model.
 */
#include <gtest/gtest.h>

#include "mem/pcie.h"

namespace helm::mem {
namespace {

TEST(Pcie, Gen4x16TheoreticalMatchesTable1)
{
    const PcieLink link = PcieLink::gen4_x16();
    // Table I: "PCIe Gen 4 x16 (32.0 GB/s)".
    EXPECT_NEAR(link.theoretical().as_gb_per_s(), 31.5, 0.6);
    EXPECT_EQ(link.generation(), 4);
    EXPECT_EQ(link.lanes(), 16);
}

TEST(Pcie, EffectiveBelowTheoretical)
{
    const PcieLink link = PcieLink::gen4_x16();
    EXPECT_LT(link.h2d_effective().raw(), link.theoretical().raw());
    EXPECT_LT(link.d2h_effective().raw(), link.theoretical().raw());
}

TEST(Pcie, Fig3DramPlateaus)
{
    const PcieLink link = PcieLink::gen4_x16();
    // Fig. 3's DRAM copy plateaus: ~24.5 GB/s h2d, ~26 GB/s d2h.
    EXPECT_NEAR(link.h2d_effective().as_gb_per_s(), 24.5, 0.8);
    EXPECT_NEAR(link.d2h_effective().as_gb_per_s(), 26.0, 0.8);
}

TEST(Pcie, GenerationsScaleRoughlyTwofold)
{
    const double g3 = PcieLink(3, 16).theoretical().as_gb_per_s();
    const double g4 = PcieLink(4, 16).theoretical().as_gb_per_s();
    const double g5 = PcieLink(5, 16).theoretical().as_gb_per_s();
    const double g6 = PcieLink(6, 16).theoretical().as_gb_per_s();
    EXPECT_NEAR(g4 / g3, 2.0, 0.05);
    EXPECT_NEAR(g5 / g4, 2.0, 0.05);
    EXPECT_NEAR(g6 / g5, 1.92, 0.08); // PAM4 jump is slightly under 2x
}

TEST(Pcie, LanesScaleLinearly)
{
    const double x8 = PcieLink(4, 8).theoretical().raw();
    const double x16 = PcieLink(4, 16).theoretical().raw();
    EXPECT_DOUBLE_EQ(x16, 2.0 * x8);
}

TEST(Pcie, ToString)
{
    EXPECT_EQ(PcieLink::gen4_x16().to_string(), "PCIe Gen4 x16");
    EXPECT_EQ(PcieLink(5, 8).to_string(), "PCIe Gen5 x8");
}

TEST(Pcie, LatencyPositive)
{
    EXPECT_GT(PcieLink::gen4_x16().latency(), 0.0);
}

} // namespace
} // namespace helm::mem
