/**
 * @file
 * Unit tests for the memory device models against the paper's anchors.
 */
#include <gtest/gtest.h>

#include "mem/calibration.h"
#include "mem/device.h"

namespace helm::mem {
namespace {

TEST(Device, FactoryKindsAndNames)
{
    EXPECT_EQ(make_dram()->kind(), MemoryKind::kDram);
    EXPECT_EQ(make_optane()->kind(), MemoryKind::kOptane);
    EXPECT_EQ(make_memory_mode()->kind(), MemoryKind::kMemoryMode);
    EXPECT_EQ(make_ssd()->kind(), MemoryKind::kSsd);
    EXPECT_EQ(make_fsdax()->kind(), MemoryKind::kFsdax);
    EXPECT_EQ(make_cxl_fpga()->kind(), MemoryKind::kCxl);
    EXPECT_STREQ(memory_kind_name(MemoryKind::kOptane), "NVDRAM");
    EXPECT_EQ(make_optane()->name(), "NVDRAM");
}

TEST(Device, Capacities)
{
    // Table I: 256 GB DRAM and 1 TB Optane across the system.
    EXPECT_EQ(make_dram()->capacity(), 256 * kGiB);
    EXPECT_EQ(make_optane()->capacity(), 1024 * kGiB);
}

TEST(Device, DramIsFlatAcrossBufferSizes)
{
    auto dram = make_dram();
    const double small = dram->read_bandwidth(256 * kMiB).as_gb_per_s();
    const double large = dram->read_bandwidth(32 * kGiB).as_gb_per_s();
    EXPECT_DOUBLE_EQ(small, large);
    EXPECT_DOUBLE_EQ(small, cal::kDramReadGBs);
}

TEST(Device, OptaneColdReadDecaysWithBufferSize)
{
    auto optane = make_optane();
    const double at_4g =
        optane->cold_read_bandwidth(4 * kGiB).as_gb_per_s();
    const double at_32g =
        optane->cold_read_bandwidth(32 * kGiB).as_gb_per_s();
    EXPECT_NEAR(at_4g, cal::kOptaneReadSmallGBs, 1e-9);
    EXPECT_NEAR(at_32g, cal::kOptaneColdReadLargeGBs, 1e-9);
    EXPECT_LT(at_32g, at_4g);
}

TEST(Device, OptaneStreamingDecaysGentlyWithResidentSet)
{
    auto optane = std::dynamic_pointer_cast<OptaneDevice>(make_optane());
    ASSERT_NE(optane, nullptr);
    const double small = optane->read_bandwidth(512 * kMiB).as_gb_per_s();
    optane->set_resident_bytes(300 * kGiB);
    const double resident_large =
        optane->read_bandwidth(512 * kMiB).as_gb_per_s();
    EXPECT_NEAR(small, cal::kOptaneReadSmallGBs, 1e-9);
    EXPECT_LT(resident_large, small);
    // Streaming floor stays well above the cold-copy floor.
    EXPECT_GT(resident_large, cal::kOptaneColdReadLargeGBs);
}

TEST(Device, OptaneWriteFarBelowRead)
{
    auto optane = make_optane();
    const double read = optane->read_bandwidth(kGiB, 1).as_gb_per_s();
    const double write = optane->write_bandwidth(kGiB, 1).as_gb_per_s();
    // Sec. II-C: ~6x lower write than read for Optane.
    EXPECT_LT(write, read / 4.0);
    EXPECT_NEAR(write, cal::kOptaneWriteGBs, 0.01);
}

TEST(Device, OptaneWriteNumaAsymmetry)
{
    // Fig. 3b: NVDRAM write bandwidth differs across sockets.
    auto optane = make_optane();
    const double node0 = optane->write_bandwidth(kGiB, 0).as_gb_per_s();
    const double node1 = optane->write_bandwidth(kGiB, 1).as_gb_per_s();
    EXPECT_LT(node0, node1);
    EXPECT_NEAR(node0 / node1, cal::kOptaneWriteRemoteFactor, 1e-9);
}

TEST(Device, OptaneReadNumaSymmetricInFig3)
{
    // Fig. 3a: NVDRAM-0 and NVDRAM-1 h2d overlap.
    auto optane = make_optane();
    EXPECT_DOUBLE_EQ(optane->read_bandwidth(kGiB, 0).raw(),
                     optane->read_bandwidth(kGiB, 1).raw());
}

TEST(Device, MemoryModeHitRatio)
{
    auto mm = make_memory_mode();
    // Working sets inside the 256 GiB DRAM cache hit fully.
    EXPECT_DOUBLE_EQ(mm->hit_ratio(64 * kGiB), 1.0);
    EXPECT_DOUBLE_EQ(mm->hit_ratio(256 * kGiB), 1.0);
    // 512 GiB working set: half the set is cached.
    EXPECT_DOUBLE_EQ(mm->hit_ratio(512 * kGiB), 0.5);
    EXPECT_DOUBLE_EQ(mm->hit_ratio(0), 1.0);
}

TEST(Device, MemoryModeReadDegradesWhenResidentExceedsCache)
{
    auto mm = make_memory_mode();
    const double fits = mm->read_bandwidth(kGiB).as_gb_per_s();
    mm->set_resident_bytes(512 * kGiB);
    const double thrash = mm->read_bandwidth(kGiB).as_gb_per_s();
    EXPECT_LT(thrash, fits);
    // Misses stream at least at the miss-path rate.
    EXPECT_GT(thrash, cal::kMemoryModeMissGBs * 0.9);
}

TEST(Device, StorageDevicesNeedBounceBuffers)
{
    EXPECT_TRUE(make_ssd()->needs_bounce_buffer());
    EXPECT_TRUE(make_fsdax()->needs_bounce_buffer());
    EXPECT_TRUE(make_ssd()->is_storage());
    EXPECT_TRUE(make_fsdax()->is_storage());
    EXPECT_FALSE(make_dram()->needs_bounce_buffer());
    EXPECT_FALSE(make_optane()->needs_bounce_buffer());
    EXPECT_FALSE(make_memory_mode()->is_storage());
}

TEST(Device, FsdaxFasterThanSsd)
{
    // DAX bypasses the page cache (Sec. II-C).
    EXPECT_GT(make_fsdax()->read_bandwidth(kGiB).raw(),
              make_ssd()->read_bandwidth(kGiB).raw());
}

TEST(Device, CxlConfigurationsMatchTable3)
{
    EXPECT_NEAR(make_cxl_fpga()->read_bandwidth(kGiB).as_gb_per_s(),
                cal::kCxlFpgaGBs, 1e-9);
    EXPECT_NEAR(make_cxl_asic()->read_bandwidth(kGiB).as_gb_per_s(),
                cal::kCxlAsicGBs, 1e-9);
    EXPECT_EQ(make_cxl_fpga()->name(), "CXL-FPGA");
    EXPECT_EQ(make_cxl_asic()->name(), "CXL-ASIC");
}

TEST(Device, CxlWritesSlowerThanReads)
{
    auto cxl = make_cxl_asic();
    EXPECT_LT(cxl->write_bandwidth(kGiB).raw(),
              cxl->read_bandwidth(kGiB).raw());
}

TEST(Device, CxlCustomBandwidth)
{
    auto cxl = make_cxl_custom("CXL-X", Bandwidth::gb_per_s(12.0));
    EXPECT_DOUBLE_EQ(cxl->read_bandwidth(kGiB).as_gb_per_s(), 12.0);
    EXPECT_EQ(cxl->name(), "CXL-X");
}

TEST(Device, CxlLatencyExceedsDram)
{
    // Sec. II-D: CXL adds >= 70 ns.
    EXPECT_GE(make_cxl_asic()->latency(),
              make_dram()->latency() + 70e-9);
}

TEST(Device, OptaneLatencyExceedsDram)
{
    EXPECT_GT(make_optane()->latency(), make_dram()->latency());
}

TEST(Device, NodeOneDeratesReadsAndWritesIndependently)
{
    MemoryDevice device("derated", MemoryKind::kDram, kGiB,
                        BandwidthCurve(Bandwidth::gb_per_s(40.0)),
                        BandwidthCurve(Bandwidth::gb_per_s(30.0)),
                        100e-9);
    device.set_read_node_factors({1.0, 0.6});
    device.set_write_node_factors({1.0, 0.5});
    // Node 0 (GPU-local) is untouched.
    EXPECT_DOUBLE_EQ(device.read_bandwidth(kGiB, 0).as_gb_per_s(), 40.0);
    EXPECT_DOUBLE_EQ(device.write_bandwidth(kGiB, 0).as_gb_per_s(), 30.0);
    // Node 1 pays the cross-socket derate, per direction.
    EXPECT_DOUBLE_EQ(device.read_bandwidth(kGiB, 1).as_gb_per_s(), 24.0);
    EXPECT_DOUBLE_EQ(device.write_bandwidth(kGiB, 1).as_gb_per_s(), 15.0);
    // The cold-copy default path inherits the read derate.
    EXPECT_DOUBLE_EQ(device.cold_read_bandwidth(kGiB, 1).as_gb_per_s(),
                     24.0);
}

TEST(Device, ColdNeverBeatsStreamingAcrossSizes)
{
    // Property over the devices with distinct cold curves (Optane's AIT
    // misses, HBF's flash sensing): at every buffer size the one-shot
    // cold copy is at most the steady-state streaming rate, and the
    // cold curve itself never recovers as buffers grow — so the two
    // curves cross at most once and stay crossed.
    for (const DevicePtr &device :
         {std::static_pointer_cast<MemoryDevice>(make_optane()),
          std::static_pointer_cast<MemoryDevice>(make_hbf())}) {
        double prev_cold = device->cold_read_bandwidth(kMiB).raw();
        for (Bytes size = kMiB; size <= 256 * kGiB; size *= 2) {
            const double cold =
                device->cold_read_bandwidth(size).raw();
            const double streaming = device->read_bandwidth(size).raw();
            EXPECT_LE(cold, streaming * (1.0 + 1e-9))
                << device->name() << " at " << size;
            EXPECT_LE(cold, prev_cold * (1.0 + 1e-9))
                << device->name() << " at " << size;
            prev_cold = cold;
        }
    }
}

TEST(Device, NdpDimmGemvTimeIsJointlyLimited)
{
    auto ndp = make_ndp_dimm();
    EXPECT_EQ(ndp->kind(), MemoryKind::kNdpDimm);
    EXPECT_EQ(ndp->capacity(), 512 * kGiB); // 2 sockets x 256 GiB
    // Bandwidth-bound regime: many bytes, trivial FLOPs.
    const Bytes big = 64ull * kGiB;
    EXPECT_NEAR(ndp->gemv_time(big, 1.0),
                static_cast<double>(big) / ndp->gemv_rate().raw(), 1e-9);
    // Compute-bound regime: trivial bytes, many FLOPs.
    const double flops = 1e13;
    EXPECT_NEAR(ndp->gemv_time(1, flops), flops / ndp->gemv_flops(),
                1e-9);
    // The time is max(stream, compute), not the sum: at the balance
    // point both bounds coincide.
    const Bytes balanced = static_cast<Bytes>(
        ndp->gemv_rate().raw() * (flops / ndp->gemv_flops()));
    EXPECT_NEAR(ndp->gemv_time(balanced, flops),
                flops / ndp->gemv_flops(), 1e-6);
}

TEST(Device, HbfEnduranceCounterDrainsToZeroAndClamps)
{
    auto hbf = make_hbf();
    EXPECT_EQ(hbf->kind(), MemoryKind::kHbf);
    const Bytes budget = hbf->endurance_budget();
    EXPECT_GT(budget, 0u);
    EXPECT_EQ(hbf->written_bytes(), 0u);
    EXPECT_EQ(hbf->endurance_remaining(), budget);
    EXPECT_FALSE(hbf->endurance_exhausted());

    hbf->record_write(kGiB);
    EXPECT_EQ(hbf->written_bytes(), kGiB);
    EXPECT_EQ(hbf->endurance_remaining(), budget - kGiB);

    // Overshoot: remaining clamps at zero instead of wrapping.
    hbf->record_write(budget);
    EXPECT_EQ(hbf->endurance_remaining(), 0u);
    EXPECT_TRUE(hbf->endurance_exhausted());
}

TEST(Device, HbfWarmReadsAreFastAndWritesSlow)
{
    auto hbf = make_hbf();
    // Warm streaming runs at HBM-class rates (the PCIe link caps the
    // copy path, not the device); programs crawl.
    EXPECT_GT(hbf->read_bandwidth(kGiB).as_gb_per_s(), 100.0);
    EXPECT_LT(hbf->write_bandwidth(kGiB).as_gb_per_s(), 4.0);
    EXPECT_EQ(hbf->capacity(), 10 * kTiB);
}

TEST(Device, MemoryKindNamesCoverTheZoo)
{
    EXPECT_STREQ(memory_kind_name(MemoryKind::kNdpDimm), "NDP-DIMM");
    EXPECT_STREQ(memory_kind_name(MemoryKind::kHbf), "HBF");
    EXPECT_STREQ(memory_kind_name(MemoryKind::kDram), "DRAM");
    EXPECT_EQ(make_ndp_dimm()->name(),
              memory_kind_name(MemoryKind::kNdpDimm));
    EXPECT_EQ(make_hbf()->name(), memory_kind_name(MemoryKind::kHbf));
}

} // namespace
} // namespace helm::mem
