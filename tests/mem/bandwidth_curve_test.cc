/**
 * @file
 * Unit tests for the log-linear bandwidth curve interpolation.
 */
#include <gtest/gtest.h>

#include "mem/bandwidth_curve.h"

namespace helm::mem {
namespace {

TEST(BandwidthCurve, FlatCurve)
{
    BandwidthCurve curve(Bandwidth::gb_per_s(24.5));
    EXPECT_DOUBLE_EQ(curve.at(1).as_gb_per_s(), 24.5);
    EXPECT_DOUBLE_EQ(curve.at(32 * kGiB).as_gb_per_s(), 24.5);
    EXPECT_DOUBLE_EQ(curve.at(0).as_gb_per_s(), 24.5);
}

TEST(BandwidthCurve, EndpointsClamp)
{
    BandwidthCurve curve(std::vector<BandwidthCurve::Point>{
        {1 * kGiB, Bandwidth::gb_per_s(20.0)},
        {4 * kGiB, Bandwidth::gb_per_s(10.0)},
    });
    EXPECT_DOUBLE_EQ(curve.at(256 * kMiB).as_gb_per_s(), 20.0);
    EXPECT_DOUBLE_EQ(curve.at(1 * kGiB).as_gb_per_s(), 20.0);
    EXPECT_DOUBLE_EQ(curve.at(4 * kGiB).as_gb_per_s(), 10.0);
    EXPECT_DOUBLE_EQ(curve.at(64 * kGiB).as_gb_per_s(), 10.0);
}

TEST(BandwidthCurve, LogMidpointInterpolation)
{
    BandwidthCurve curve(std::vector<BandwidthCurve::Point>{
        {1 * kGiB, Bandwidth::gb_per_s(20.0)},
        {4 * kGiB, Bandwidth::gb_per_s(10.0)},
    });
    // 2 GiB is the log2 midpoint of [1 GiB, 4 GiB].
    EXPECT_NEAR(curve.at(2 * kGiB).as_gb_per_s(), 15.0, 1e-9);
}

TEST(BandwidthCurve, MonotoneBetweenAnchors)
{
    BandwidthCurve curve(std::vector<BandwidthCurve::Point>{
        {256 * kMiB, Bandwidth::gb_per_s(19.91)},
        {4 * kGiB, Bandwidth::gb_per_s(19.91)},
        {32 * kGiB, Bandwidth::gb_per_s(15.52)},
    });
    double prev = curve.at(256 * kMiB).as_gb_per_s();
    for (Bytes size = 256 * kMiB; size <= 32 * kGiB; size *= 2) {
        const double bw = curve.at(size).as_gb_per_s();
        EXPECT_LE(bw, prev + 1e-9);
        prev = bw;
    }
}

TEST(BandwidthCurve, ScaledMultipliesEveryAnchor)
{
    BandwidthCurve curve(std::vector<BandwidthCurve::Point>{
        {1 * kGiB, Bandwidth::gb_per_s(20.0)},
        {4 * kGiB, Bandwidth::gb_per_s(10.0)},
    });
    const BandwidthCurve half = curve.scaled(0.5);
    EXPECT_DOUBLE_EQ(half.at(1 * kGiB).as_gb_per_s(), 10.0);
    EXPECT_DOUBLE_EQ(half.at(4 * kGiB).as_gb_per_s(), 5.0);
    EXPECT_NEAR(half.at(2 * kGiB).as_gb_per_s(), 7.5, 1e-9);
}

TEST(BandwidthCurve, ZeroByteTransferUsesFirstAnchor)
{
    // A zero-byte transfer must not hit the log2 interpolation (log2(0)
    // is -inf); it clamps to the first anchor like any sub-anchor size.
    BandwidthCurve curve(std::vector<BandwidthCurve::Point>{
        {4 * kKiB, Bandwidth::gb_per_s(8.0)},
        {4 * kGiB, Bandwidth::gb_per_s(2.0)},
    });
    EXPECT_DOUBLE_EQ(curve.at(0).as_gb_per_s(), 8.0);
}

TEST(BandwidthCurve, SubPageTransfersClampToFirstAnchor)
{
    BandwidthCurve curve(std::vector<BandwidthCurve::Point>{
        {4 * kKiB, Bandwidth::gb_per_s(8.0)},
        {4 * kGiB, Bandwidth::gb_per_s(2.0)},
    });
    // 1 byte, 1 cacheline, half a page: all below the 4 KiB anchor.
    EXPECT_DOUBLE_EQ(curve.at(1).as_gb_per_s(), 8.0);
    EXPECT_DOUBLE_EQ(curve.at(64).as_gb_per_s(), 8.0);
    EXPECT_DOUBLE_EQ(curve.at(2 * kKiB).as_gb_per_s(), 8.0);
    // At exactly the anchor the same value holds (no seam).
    EXPECT_DOUBLE_EQ(curve.at(4 * kKiB).as_gb_per_s(), 8.0);
}

TEST(BandwidthCurve, ThreeSegmentLookupPicksRightSegment)
{
    BandwidthCurve curve(std::vector<BandwidthCurve::Point>{
        {1 * kKiB, Bandwidth::gb_per_s(1.0)},
        {1 * kMiB, Bandwidth::gb_per_s(2.0)},
        {1 * kGiB, Bandwidth::gb_per_s(4.0)},
    });
    EXPECT_GT(curve.at(512 * kKiB).as_gb_per_s(), 1.0);
    EXPECT_LT(curve.at(512 * kKiB).as_gb_per_s(), 2.0);
    EXPECT_GT(curve.at(512 * kMiB).as_gb_per_s(), 2.0);
    EXPECT_LT(curve.at(512 * kMiB).as_gb_per_s(), 4.0);
}

} // namespace
} // namespace helm::mem
