/**
 * @file
 * Unit tests for the device registry (the backend zoo): the built-in
 * table's contents and order, case-insensitive lookup, duplicate
 * rejection, and system composition (storage-tier devices pair with a
 * DRAM host, byte-addressable devices become the host tier).
 */
#include <gtest/gtest.h>

#include "mem/registry.h"

namespace helm::mem {
namespace {

TEST(Registry, BuiltinZooIsStableAndOrdered)
{
    const std::vector<std::string> expected{
        "DRAM", "NVDRAM", "MemoryMode", "SSD",      "FSDAX",
        "CXL-FPGA", "CXL-ASIC", "NDP-DIMM", "HBF"};
    EXPECT_EQ(DeviceRegistry::builtin().names(), expected);
}

TEST(Registry, FindIsCaseInsensitive)
{
    const DeviceRegistry &zoo = DeviceRegistry::builtin();
    for (const char *spelling : {"ndp-dimm", "NDP-DIMM", "Ndp-Dimm"}) {
        const RegisteredDevice *entry = zoo.find(spelling);
        ASSERT_NE(entry, nullptr) << spelling;
        EXPECT_EQ(entry->name, "NDP-DIMM") << spelling;
    }
    EXPECT_NE(zoo.find("hbf"), nullptr);
    EXPECT_NE(zoo.find("nvdram"), nullptr);
    EXPECT_EQ(zoo.find("PDP-11"), nullptr);
}

TEST(Registry, AddRejectsDuplicateNamesCaseInsensitively)
{
    DeviceRegistry registry;
    RegisteredDevice device;
    device.name = "Widget";
    device.make = [] { return make_dram(); };
    EXPECT_TRUE(registry.add(device).is_ok());
    device.name = "widget";
    const Status dup = registry.add(device);
    EXPECT_FALSE(dup.is_ok());
    EXPECT_EQ(registry.names().size(), 1u);
}

TEST(Registry, FactoriesReturnFreshInstances)
{
    // Devices are stateful (resident sets, endurance counters); the
    // registry must never hand the same instance to two runs.
    const RegisteredDevice *entry =
        DeviceRegistry::builtin().find("HBF");
    ASSERT_NE(entry, nullptr);
    EXPECT_NE(entry->make().get(), entry->make().get());
}

TEST(Registry, StorageTierFlagsMatchTheDevices)
{
    const DeviceRegistry &zoo = DeviceRegistry::builtin();
    for (const RegisteredDevice &entry : zoo.devices()) {
        EXPECT_EQ(entry.storage_tier, entry.make()->is_storage())
            << entry.name;
    }
    EXPECT_TRUE(zoo.find("SSD")->storage_tier);
    EXPECT_TRUE(zoo.find("FSDAX")->storage_tier);
    // HBF is a host-tier device despite being flash: byte-addressable,
    // no filesystem bounce buffer.
    EXPECT_FALSE(zoo.find("HBF")->storage_tier);
    EXPECT_FALSE(zoo.find("NDP-DIMM")->storage_tier);
}

TEST(Registry, MakeSystemPairsStorageWithDramHost)
{
    const auto system = DeviceRegistry::builtin().make_system("SSD");
    ASSERT_TRUE(system.is_ok());
    EXPECT_EQ(system->host()->kind(), MemoryKind::kDram);
    ASSERT_TRUE(system->has_storage());
    EXPECT_EQ(system->storage()->kind(), MemoryKind::kSsd);
}

TEST(Registry, MakeSystemByteAddressableBecomesHostTier)
{
    const auto system =
        DeviceRegistry::builtin().make_system("NDP-DIMM");
    ASSERT_TRUE(system.is_ok());
    EXPECT_EQ(system->host()->kind(), MemoryKind::kNdpDimm);
    EXPECT_FALSE(system->has_storage());
}

TEST(Registry, MakeSystemUnknownDeviceFailsWithNames)
{
    const auto system =
        DeviceRegistry::builtin().make_system("core-memory");
    ASSERT_FALSE(system.is_ok());
    // The diagnostic names the unknown device and lists the zoo.
    EXPECT_NE(system.status().to_string().find("core-memory"),
              std::string::npos);
    EXPECT_NE(system.status().to_string().find("NDP-DIMM"),
              std::string::npos);
}

TEST(Registry, EverySummaryIsNonEmpty)
{
    for (const RegisteredDevice &entry :
         DeviceRegistry::builtin().devices())
        EXPECT_FALSE(entry.summary.empty()) << entry.name;
}

} // namespace
} // namespace helm::mem
