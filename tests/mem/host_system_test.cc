/**
 * @file
 * Unit tests for HostMemorySystem: Table II configurations and
 * end-to-end transfer-path bandwidth resolution.
 */
#include <gtest/gtest.h>

#include "mem/calibration.h"
#include "mem/host_system.h"

namespace helm::mem {
namespace {

TEST(HostSystem, ConfigLabels)
{
    EXPECT_EQ(make_config(ConfigKind::kDram).label(), "DRAM");
    EXPECT_EQ(make_config(ConfigKind::kNvdram).label(), "NVDRAM");
    EXPECT_EQ(make_config(ConfigKind::kMemoryMode).label(), "MemoryMode");
    EXPECT_EQ(make_config(ConfigKind::kSsd).label(), "SSD");
    EXPECT_EQ(make_config(ConfigKind::kFsdax).label(), "FSDAX");
    EXPECT_EQ(make_config(ConfigKind::kCxlFpga).label(), "CXL-FPGA");
    EXPECT_EQ(make_config(ConfigKind::kCxlAsic).label(), "CXL-ASIC");
}

TEST(HostSystem, StorageTiersOnlyOnStorageConfigs)
{
    EXPECT_FALSE(make_config(ConfigKind::kDram).has_storage());
    EXPECT_FALSE(make_config(ConfigKind::kNvdram).has_storage());
    EXPECT_FALSE(make_config(ConfigKind::kMemoryMode).has_storage());
    EXPECT_TRUE(make_config(ConfigKind::kSsd).has_storage());
    EXPECT_TRUE(make_config(ConfigKind::kFsdax).has_storage());
    EXPECT_FALSE(make_config(ConfigKind::kCxlAsic).has_storage());
}

TEST(HostSystem, StorageConfigsUseDramHostTier)
{
    // Fig. 7b: "Storage: SSD/Optane, host: DRAM".
    EXPECT_EQ(make_config(ConfigKind::kSsd).host()->kind(),
              MemoryKind::kDram);
    EXPECT_EQ(make_config(ConfigKind::kFsdax).host()->kind(),
              MemoryKind::kDram);
}

TEST(HostSystem, DramHostToGpuIsPcieLimited)
{
    const auto sys = make_config(ConfigKind::kDram);
    const double bw = sys.host_to_gpu_bw(kGiB).as_gb_per_s();
    EXPECT_NEAR(bw, sys.pcie().h2d_effective().as_gb_per_s(), 1e-9);
}

TEST(HostSystem, NvdramHostToGpuIsDeviceLimited)
{
    const auto sys = make_config(ConfigKind::kNvdram);
    const double bw = sys.host_to_gpu_bw(kGiB).as_gb_per_s();
    EXPECT_NEAR(bw, cal::kOptaneReadSmallGBs, 1e-9);
    EXPECT_LT(bw, sys.pcie().h2d_effective().as_gb_per_s());
}

TEST(HostSystem, BounceCombinationIsHarmonic)
{
    const Bandwidth combined = bounce_combined_bw(
        Bandwidth::gb_per_s(10.0), Bandwidth::gb_per_s(10.0));
    EXPECT_NEAR(combined.as_gb_per_s(), 5.0, 1e-9);
    // Highly asymmetric hops approach the slow hop.
    const Bandwidth skewed = bounce_combined_bw(
        Bandwidth::gb_per_s(1.0), Bandwidth::gb_per_s(1000.0));
    EXPECT_NEAR(skewed.as_gb_per_s(), 1.0, 0.01);
}

TEST(HostSystem, StorageToGpuSlowerThanHostToGpu)
{
    const auto fsdax = make_config(ConfigKind::kFsdax);
    EXPECT_LT(fsdax.storage_to_gpu_bw(kGiB).raw(),
              fsdax.host_to_gpu_bw(kGiB).raw());
}

TEST(HostSystem, FsdaxStorageFasterThanSsdStorage)
{
    // Fig. 4: FSDAX improves ~33% over SSD.
    const auto fsdax = make_config(ConfigKind::kFsdax);
    const auto ssd = make_config(ConfigKind::kSsd);
    const double f = fsdax.storage_to_gpu_bw(kGiB).as_gb_per_s();
    const double s = ssd.storage_to_gpu_bw(kGiB).as_gb_per_s();
    EXPECT_GT(f, s);
    EXPECT_NEAR(s / f, 0.66, 0.12);
}

TEST(HostSystem, FsdaxSlowerThanNvdram)
{
    // Sec. IV-B: FSDAX "falls short of reaching NVDRAM's performance"
    // because of the DRAM bounce buffer.
    const auto fsdax = make_config(ConfigKind::kFsdax);
    const auto nvdram = make_config(ConfigKind::kNvdram);
    EXPECT_LT(fsdax.storage_to_gpu_bw(kGiB).raw(),
              nvdram.host_to_gpu_bw(kGiB).raw());
}

TEST(HostSystem, MemoryModeMatchesDramWhenResidentFits)
{
    auto mm = make_config(ConfigKind::kMemoryMode);
    auto dram = make_config(ConfigKind::kDram);
    mm.set_host_resident_bytes(64 * kGiB);
    const double mm_bw = mm.host_to_gpu_bw(kGiB).as_gb_per_s();
    const double dram_bw = dram.host_to_gpu_bw(kGiB).as_gb_per_s();
    // Within the management derate of DRAM (Fig. 3a overlap).
    EXPECT_NEAR(mm_bw, dram_bw * cal::kMemoryModeHitFactor, 1e-6);
}

TEST(HostSystem, MemoryModeBetweenNvdramAndDramWhenThrashing)
{
    auto mm = make_config(ConfigKind::kMemoryMode);
    auto nvdram = make_config(ConfigKind::kNvdram);
    auto dram = make_config(ConfigKind::kDram);
    // Uncompressed OPT-175B resident set (Sec. IV-B).
    mm.set_host_resident_bytes(300 * kGiB);
    nvdram.set_host_resident_bytes(300 * kGiB);
    const double mm_bw = mm.host_to_gpu_bw(512 * kMiB).as_gb_per_s();
    const double nv_bw = nvdram.host_to_gpu_bw(512 * kMiB).as_gb_per_s();
    const double dram_bw = dram.host_to_gpu_bw(512 * kMiB).as_gb_per_s();
    EXPECT_GT(mm_bw, nv_bw);
    EXPECT_LT(mm_bw, dram_bw);
    // Fig. 4/5 anchors: DRAM ~20-33% faster than MM/NVDRAM there.
    EXPECT_NEAR(dram_bw / nv_bw, 1.33, 0.07);
    EXPECT_NEAR(dram_bw / mm_bw, 1.22, 0.07);
}

TEST(HostSystem, GpuToHostWriteAsymmetry)
{
    // Fig. 3b: d2h to Optane collapses to ~3 GB/s.
    const auto nvdram = make_config(ConfigKind::kNvdram);
    const auto dram = make_config(ConfigKind::kDram);
    const double nv = nvdram.gpu_to_host_bw(kGiB).as_gb_per_s();
    const double dr = dram.gpu_to_host_bw(kGiB).as_gb_per_s();
    EXPECT_LT(nv, dr * 0.2); // "88% lower"
}

TEST(HostSystem, NumaNodeSelection)
{
    auto sys = make_config(ConfigKind::kNvdram);
    EXPECT_EQ(sys.numa_node(), 0);
    sys.set_numa_node(1);
    EXPECT_EQ(sys.numa_node(), 1);
    // Node choice changes Optane write bandwidth (Fig. 3b).
    auto node0 = make_config(ConfigKind::kNvdram);
    node0.set_numa_node(0);
    auto node1 = make_config(ConfigKind::kNvdram);
    node1.set_numa_node(1);
    EXPECT_LT(node0.gpu_to_host_bw(kGiB).raw(),
              node1.gpu_to_host_bw(kGiB).raw());
}

TEST(HostSystem, ColdCopyPathSlowerAtLargeBuffers)
{
    const auto nvdram = make_config(ConfigKind::kNvdram);
    const double cold =
        nvdram.host_to_gpu_cold_bw(32 * kGiB).as_gb_per_s();
    const double stream = nvdram.host_to_gpu_bw(512 * kMiB).as_gb_per_s();
    EXPECT_LT(cold, stream);
    EXPECT_NEAR(cold, cal::kOptaneColdReadLargeGBs, 1e-6);
}

TEST(HostSystem, AllConfigKindsConstruct)
{
    for (ConfigKind kind : all_config_kinds()) {
        const auto sys = make_config(kind);
        EXPECT_GT(sys.host_to_gpu_bw(kGiB).raw(), 0.0);
        EXPECT_GT(sys.gpu_to_host_bw(kGiB).raw(), 0.0);
        EXPECT_FALSE(sys.label().empty());
    }
}

TEST(HostSystem, CxlBandwidthsBypassThePcieDmaPath)
{
    // Sec. V-D projects direct CXL.mem access (Gouk et al. [16]): the
    // expander's rate applies even when it exceeds the PCIe DMA path.
    const auto fpga = make_config(ConfigKind::kCxlFpga);
    const auto asic = make_config(ConfigKind::kCxlAsic);
    EXPECT_NEAR(fpga.host_to_gpu_bw(kGiB).as_gb_per_s(),
                cal::kCxlFpgaGBs, 1e-9);
    EXPECT_NEAR(asic.host_to_gpu_bw(kGiB).as_gb_per_s(),
                cal::kCxlAsicGBs, 1e-9);
    EXPECT_GT(asic.host_to_gpu_bw(kGiB).raw(),
              asic.pcie().h2d_effective().raw());
}

} // namespace
} // namespace helm::mem
