/**
 * @file
 * Unit tests for the max-min fair-share bandwidth channel.
 */
#include <gtest/gtest.h>

#include "common/units.h"
#include "sim/bandwidth_channel.h"
#include "sim/simulator.h"

namespace helm::sim {
namespace {

constexpr double kTol = 1e-6;

TEST(BandwidthChannel, SingleUncappedFlow)
{
    Simulator sim;
    BandwidthChannel ch(sim, "link", Bandwidth::gb_per_s(10.0));
    Seconds done_at = -1.0;
    ch.start_flow(10 * kGB, Bandwidth(), [&] { done_at = sim.now(); });
    sim.run();
    EXPECT_NEAR(done_at, 1.0, kTol);
    EXPECT_EQ(ch.bytes_delivered(), 10 * kGB);
    EXPECT_EQ(ch.active_flows(), 0u);
}

TEST(BandwidthChannel, CapSlowerThanChannel)
{
    Simulator sim;
    BandwidthChannel ch(sim, "link", Bandwidth::gb_per_s(10.0));
    Seconds done_at = -1.0;
    ch.start_flow(10 * kGB, Bandwidth::gb_per_s(2.0),
                  [&] { done_at = sim.now(); });
    sim.run();
    EXPECT_NEAR(done_at, 5.0, kTol);
}

TEST(BandwidthChannel, CapFasterThanChannelIsIgnored)
{
    Simulator sim;
    BandwidthChannel ch(sim, "link", Bandwidth::gb_per_s(10.0));
    Seconds done_at = -1.0;
    ch.start_flow(10 * kGB, Bandwidth::gb_per_s(100.0),
                  [&] { done_at = sim.now(); });
    sim.run();
    EXPECT_NEAR(done_at, 1.0, kTol);
}

TEST(BandwidthChannel, TwoEqualFlowsShareEvenly)
{
    Simulator sim;
    BandwidthChannel ch(sim, "link", Bandwidth::gb_per_s(10.0));
    Seconds done_a = -1.0, done_b = -1.0;
    ch.start_flow(10 * kGB, Bandwidth(), [&] { done_a = sim.now(); });
    ch.start_flow(10 * kGB, Bandwidth(), [&] { done_b = sim.now(); });
    sim.run();
    // Each flow gets a 5 GB/s share; 10 GB each => both finish at t=2.
    EXPECT_NEAR(done_a, 2.0, kTol);
    EXPECT_NEAR(done_b, 2.0, kTol);
}

TEST(BandwidthChannel, ShortFlowReleasesBandwidthToLongFlow)
{
    Simulator sim;
    BandwidthChannel ch(sim, "link", Bandwidth::gb_per_s(10.0));
    Seconds done_short = -1.0, done_long = -1.0;
    ch.start_flow(5 * kGB, Bandwidth(), [&] { done_short = sim.now(); });
    ch.start_flow(15 * kGB, Bandwidth(), [&] { done_long = sim.now(); });
    sim.run();
    // Shared 5/5 until the short flow's 5 GB completes at t=1; the long
    // flow then has 10 GB left at full 10 GB/s => t=2.
    EXPECT_NEAR(done_short, 1.0, kTol);
    EXPECT_NEAR(done_long, 2.0, kTol);
}

TEST(BandwidthChannel, WaterFillingWithMixedCaps)
{
    Simulator sim;
    BandwidthChannel ch(sim, "link", Bandwidth::gb_per_s(10.0));
    // Flow A capped at 2 GB/s; flows B and C uncapped: A gets 2, B and C
    // split the remaining 8 evenly (4 each) — max-min fairness.
    FlowId a = ch.start_flow(100 * kGB, Bandwidth::gb_per_s(2.0), [] {});
    FlowId b = ch.start_flow(100 * kGB, Bandwidth(), [] {});
    FlowId c = ch.start_flow(100 * kGB, Bandwidth(), [] {});
    EXPECT_NEAR(ch.flow_rate(a).as_gb_per_s(), 2.0, 1e-9);
    EXPECT_NEAR(ch.flow_rate(b).as_gb_per_s(), 4.0, 1e-9);
    EXPECT_NEAR(ch.flow_rate(c).as_gb_per_s(), 4.0, 1e-9);
    ch.cancel_flow(a);
    ch.cancel_flow(b);
    ch.cancel_flow(c);
}

TEST(BandwidthChannel, RatesNeverExceedChannel)
{
    Simulator sim;
    BandwidthChannel ch(sim, "link", Bandwidth::gb_per_s(10.0));
    std::vector<FlowId> flows;
    for (int i = 0; i < 7; ++i) {
        flows.push_back(ch.start_flow(
            kGB, Bandwidth::gb_per_s(1.0 + i), [] {}));
    }
    double total = 0.0;
    for (FlowId f : flows)
        total += ch.flow_rate(f).as_gb_per_s();
    EXPECT_LE(total, 10.0 + 1e-9);
    for (FlowId f : flows)
        ch.cancel_flow(f);
}

TEST(BandwidthChannel, ZeroByteFlowCompletesImmediately)
{
    Simulator sim;
    BandwidthChannel ch(sim, "link", Bandwidth::gb_per_s(10.0));
    bool done = false;
    const FlowId id = ch.start_flow(0, Bandwidth(), [&] { done = true; });
    EXPECT_TRUE(done); // synchronous for empty payloads
    EXPECT_EQ(id, kInvalidFlow);
}

TEST(BandwidthChannel, CancelledFlowNeverCompletes)
{
    Simulator sim;
    BandwidthChannel ch(sim, "link", Bandwidth::gb_per_s(10.0));
    bool done = false;
    const FlowId id = ch.start_flow(10 * kGB, Bandwidth(),
                                    [&] { done = true; });
    sim.run_until(0.5);
    ch.cancel_flow(id);
    sim.run();
    EXPECT_FALSE(done);
    EXPECT_EQ(ch.bytes_delivered(), 0u);
}

TEST(BandwidthChannel, ChainedFlowsFromCompletionCallback)
{
    Simulator sim;
    BandwidthChannel ch(sim, "link", Bandwidth::gb_per_s(1.0));
    Seconds second_done = -1.0;
    ch.start_flow(1 * kGB, Bandwidth(), [&] {
        ch.start_flow(1 * kGB, Bandwidth(),
                      [&] { second_done = sim.now(); });
    });
    sim.run();
    EXPECT_NEAR(second_done, 2.0, kTol);
}

TEST(BandwidthChannel, LateArrivalSlowsExistingFlow)
{
    Simulator sim;
    BandwidthChannel ch(sim, "link", Bandwidth::gb_per_s(10.0));
    Seconds done_a = -1.0;
    ch.start_flow(10 * kGB, Bandwidth(), [&] { done_a = sim.now(); });
    sim.schedule(0.5, [&] {
        ch.start_flow(100 * kGB, Bandwidth(), [] {});
    });
    sim.run_until(10.0);
    // Flow A: 5 GB in the first 0.5 s, then 5 GB/s => done at 1.5 s.
    EXPECT_NEAR(done_a, 1.5, kTol);
}

TEST(BandwidthChannel, SubByteRemainderDoesNotLivelock)
{
    // Regression: remainders below one byte used to stall virtual time.
    Simulator sim;
    BandwidthChannel ch(sim, "link",
                        Bandwidth::bytes_per_s(3.0000000001e9));
    int completed = 0;
    for (int i = 0; i < 50; ++i) {
        ch.start_flow(333333333 + static_cast<Bytes>(i * 7),
                      Bandwidth::bytes_per_s(1.7e9 + i * 1.3e5),
                      [&] { ++completed; });
    }
    sim.run();
    EXPECT_EQ(completed, 50);
    EXPECT_LT(sim.events_executed(), 100000u);
}

TEST(BandwidthChannel, ManySequentialFlowsAccumulateBytes)
{
    Simulator sim;
    BandwidthChannel ch(sim, "link", Bandwidth::gb_per_s(10.0));
    Bytes expected = 0;
    std::function<void(int)> launch = [&](int remaining) {
        if (remaining == 0)
            return;
        const Bytes size = 100 * kMiB + static_cast<Bytes>(remaining);
        expected += size;
        ch.start_flow(size, Bandwidth(),
                      [&, remaining] { launch(remaining - 1); });
    };
    launch(20);
    sim.run();
    EXPECT_EQ(ch.bytes_delivered(), expected);
}

// ---- Concurrency properties (16+ heterogeneous capped flows) ----------

TEST(BandwidthChannelProperty, SumOfCapsBelowRateRunsEveryFlowAtItsCap)
{
    // 16 flows whose caps sum to 13.6 GB/s on a 100 GB/s link: no flow
    // is ever throttled by the share, so each must finish in exactly
    // bytes / cap — the "no cap exceeded" bound is tight from both
    // sides.
    Simulator sim;
    BandwidthChannel ch(sim, "link", Bandwidth::gb_per_s(100.0));
    std::vector<Seconds> done(16, -1.0);
    for (int i = 0; i < 16; ++i) {
        const double cap_gb = 0.1 * (i + 1); // 0.1 .. 1.6 GB/s
        const Bytes bytes = (i + 1) * kGB;
        ch.start_flow(bytes, Bandwidth::gb_per_s(cap_gb),
                      [&, i] { done[i] = sim.now(); });
    }
    sim.run();
    for (int i = 0; i < 16; ++i)
        EXPECT_NEAR(done[i], 10.0, 1e-6) << "flow " << i; // i+1 / 0.1(i+1)
}

TEST(BandwidthChannelProperty, SixteenUncappedEqualFlowsFinishTogether)
{
    Simulator sim;
    BandwidthChannel ch(sim, "link", Bandwidth::gb_per_s(32.0));
    std::vector<Seconds> done(16, -1.0);
    for (int i = 0; i < 16; ++i)
        ch.start_flow(4 * kGB, Bandwidth(),
                      [&, i] { done[i] = sim.now(); });
    sim.run();
    // Equal shares of 2 GB/s each; 4 GB => everyone at t = 2.
    for (int i = 0; i < 16; ++i)
        EXPECT_NEAR(done[i], 2.0, 1e-6);
    EXPECT_EQ(ch.bytes_delivered(), 64 * kGB);
}

TEST(BandwidthChannelProperty, WaterFillingGivesSlackToUncappedFlows)
{
    // Max-min fairness: 8 flows capped below the fair share keep their
    // cap; the other 8 uncapped flows water-fill the remainder evenly.
    // Rate 32, caps 1 => uncapped share = (32 - 8) / 8 = 3 GB/s.
    Simulator sim;
    BandwidthChannel ch(sim, "link", Bandwidth::gb_per_s(32.0));
    std::vector<Seconds> done(16, -1.0);
    for (int i = 0; i < 8; ++i)
        ch.start_flow(6 * kGB, Bandwidth::gb_per_s(1.0),
                      [&, i] { done[i] = sim.now(); });
    for (int i = 8; i < 16; ++i)
        ch.start_flow(6 * kGB, Bandwidth(),
                      [&, i] { done[i] = sim.now(); });
    sim.run();
    for (int i = 8; i < 16; ++i)
        EXPECT_NEAR(done[i], 2.0, 1e-6); // 6 GB at 3 GB/s
    // Once the uncapped flows drain, the capped ones still cannot
    // exceed their cap: 6 GB at 1 GB/s regardless of the free link.
    for (int i = 0; i < 8; ++i)
        EXPECT_NEAR(done[i], 6.0, 1e-6);
}

TEST(BandwidthChannelProperty, AggregateNeverExceedsChannelRate)
{
    // 24 heterogeneous flows demanding ~3x the link: the channel can
    // deliver at most rate x makespan bytes, and every flow still
    // respects its own cap (finish >= bytes / cap).
    Simulator sim;
    const double rate_gb = 20.0;
    BandwidthChannel ch(sim, "link", Bandwidth::gb_per_s(rate_gb));
    std::vector<Seconds> done(24, -1.0);
    std::vector<Bytes> sizes(24);
    std::vector<double> caps(24);
    Bytes total = 0;
    for (int i = 0; i < 24; ++i) {
        sizes[i] = (1 + (i * 7) % 5) * kGB;
        caps[i] = 0.5 + 0.25 * (i % 8); // 0.5 .. 2.25 GB/s
        total += sizes[i];
        ch.start_flow(sizes[i], Bandwidth::gb_per_s(caps[i]),
                      [&, i] { done[i] = sim.now(); });
    }
    sim.run();
    Seconds makespan = 0.0;
    for (int i = 0; i < 24; ++i) {
        ASSERT_GE(done[i], 0.0);
        const Seconds lower = static_cast<double>(sizes[i]) /
                              (caps[i] * 1e9); // cap respected
        EXPECT_GE(done[i], lower - 1e-6) << "flow " << i;
        makespan = std::max(makespan, done[i]);
    }
    EXPECT_GE(makespan,
              static_cast<double>(total) / (rate_gb * 1e9) - 1e-6);
    EXPECT_EQ(ch.bytes_delivered(), total);
}

TEST(BandwidthChannelProperty, StaggeredArrivalsPreserveMaxMinShares)
{
    // A flow arriving mid-run re-waters the level: the early flow's
    // finish reflects a full-rate phase then a shared phase.
    Simulator sim;
    BandwidthChannel ch(sim, "link", Bandwidth::gb_per_s(10.0));
    Seconds done_early = -1.0, done_late = -1.0;
    ch.start_flow(15 * kGB, Bandwidth(), [&] { done_early = sim.now(); });
    sim.schedule(1.0, [&] {
        ch.start_flow(5 * kGB, Bandwidth(),
                      [&] { done_late = sim.now(); });
    });
    sim.run();
    // t<1: early alone at 10 GB/s (10 GB moved).  t>=1: 5 GB/s each;
    // early's last 5 GB takes 1 s, late's 5 GB takes 1 s — both at 2.
    EXPECT_NEAR(done_early, 2.0, 1e-6);
    EXPECT_NEAR(done_late, 2.0, 1e-6);
}

} // namespace
} // namespace helm::sim
