/**
 * @file
 * Unit tests for the max-min fair-share bandwidth channel.
 */
#include <gtest/gtest.h>

#include "common/units.h"
#include "sim/bandwidth_channel.h"
#include "sim/simulator.h"

namespace helm::sim {
namespace {

constexpr double kTol = 1e-6;

TEST(BandwidthChannel, SingleUncappedFlow)
{
    Simulator sim;
    BandwidthChannel ch(sim, "link", Bandwidth::gb_per_s(10.0));
    Seconds done_at = -1.0;
    ch.start_flow(10 * kGB, Bandwidth(), [&] { done_at = sim.now(); });
    sim.run();
    EXPECT_NEAR(done_at, 1.0, kTol);
    EXPECT_EQ(ch.bytes_delivered(), 10 * kGB);
    EXPECT_EQ(ch.active_flows(), 0u);
}

TEST(BandwidthChannel, CapSlowerThanChannel)
{
    Simulator sim;
    BandwidthChannel ch(sim, "link", Bandwidth::gb_per_s(10.0));
    Seconds done_at = -1.0;
    ch.start_flow(10 * kGB, Bandwidth::gb_per_s(2.0),
                  [&] { done_at = sim.now(); });
    sim.run();
    EXPECT_NEAR(done_at, 5.0, kTol);
}

TEST(BandwidthChannel, CapFasterThanChannelIsIgnored)
{
    Simulator sim;
    BandwidthChannel ch(sim, "link", Bandwidth::gb_per_s(10.0));
    Seconds done_at = -1.0;
    ch.start_flow(10 * kGB, Bandwidth::gb_per_s(100.0),
                  [&] { done_at = sim.now(); });
    sim.run();
    EXPECT_NEAR(done_at, 1.0, kTol);
}

TEST(BandwidthChannel, TwoEqualFlowsShareEvenly)
{
    Simulator sim;
    BandwidthChannel ch(sim, "link", Bandwidth::gb_per_s(10.0));
    Seconds done_a = -1.0, done_b = -1.0;
    ch.start_flow(10 * kGB, Bandwidth(), [&] { done_a = sim.now(); });
    ch.start_flow(10 * kGB, Bandwidth(), [&] { done_b = sim.now(); });
    sim.run();
    // Each flow gets a 5 GB/s share; 10 GB each => both finish at t=2.
    EXPECT_NEAR(done_a, 2.0, kTol);
    EXPECT_NEAR(done_b, 2.0, kTol);
}

TEST(BandwidthChannel, ShortFlowReleasesBandwidthToLongFlow)
{
    Simulator sim;
    BandwidthChannel ch(sim, "link", Bandwidth::gb_per_s(10.0));
    Seconds done_short = -1.0, done_long = -1.0;
    ch.start_flow(5 * kGB, Bandwidth(), [&] { done_short = sim.now(); });
    ch.start_flow(15 * kGB, Bandwidth(), [&] { done_long = sim.now(); });
    sim.run();
    // Shared 5/5 until the short flow's 5 GB completes at t=1; the long
    // flow then has 10 GB left at full 10 GB/s => t=2.
    EXPECT_NEAR(done_short, 1.0, kTol);
    EXPECT_NEAR(done_long, 2.0, kTol);
}

TEST(BandwidthChannel, WaterFillingWithMixedCaps)
{
    Simulator sim;
    BandwidthChannel ch(sim, "link", Bandwidth::gb_per_s(10.0));
    // Flow A capped at 2 GB/s; flows B and C uncapped: A gets 2, B and C
    // split the remaining 8 evenly (4 each) — max-min fairness.
    FlowId a = ch.start_flow(100 * kGB, Bandwidth::gb_per_s(2.0), [] {});
    FlowId b = ch.start_flow(100 * kGB, Bandwidth(), [] {});
    FlowId c = ch.start_flow(100 * kGB, Bandwidth(), [] {});
    EXPECT_NEAR(ch.flow_rate(a).as_gb_per_s(), 2.0, 1e-9);
    EXPECT_NEAR(ch.flow_rate(b).as_gb_per_s(), 4.0, 1e-9);
    EXPECT_NEAR(ch.flow_rate(c).as_gb_per_s(), 4.0, 1e-9);
    ch.cancel_flow(a);
    ch.cancel_flow(b);
    ch.cancel_flow(c);
}

TEST(BandwidthChannel, RatesNeverExceedChannel)
{
    Simulator sim;
    BandwidthChannel ch(sim, "link", Bandwidth::gb_per_s(10.0));
    std::vector<FlowId> flows;
    for (int i = 0; i < 7; ++i) {
        flows.push_back(ch.start_flow(
            kGB, Bandwidth::gb_per_s(1.0 + i), [] {}));
    }
    double total = 0.0;
    for (FlowId f : flows)
        total += ch.flow_rate(f).as_gb_per_s();
    EXPECT_LE(total, 10.0 + 1e-9);
    for (FlowId f : flows)
        ch.cancel_flow(f);
}

TEST(BandwidthChannel, ZeroByteFlowCompletesImmediately)
{
    Simulator sim;
    BandwidthChannel ch(sim, "link", Bandwidth::gb_per_s(10.0));
    bool done = false;
    const FlowId id = ch.start_flow(0, Bandwidth(), [&] { done = true; });
    EXPECT_TRUE(done); // synchronous for empty payloads
    EXPECT_EQ(id, kInvalidFlow);
}

TEST(BandwidthChannel, CancelledFlowNeverCompletes)
{
    Simulator sim;
    BandwidthChannel ch(sim, "link", Bandwidth::gb_per_s(10.0));
    bool done = false;
    const FlowId id = ch.start_flow(10 * kGB, Bandwidth(),
                                    [&] { done = true; });
    sim.run_until(0.5);
    ch.cancel_flow(id);
    sim.run();
    EXPECT_FALSE(done);
    EXPECT_EQ(ch.bytes_delivered(), 0u);
}

TEST(BandwidthChannel, ChainedFlowsFromCompletionCallback)
{
    Simulator sim;
    BandwidthChannel ch(sim, "link", Bandwidth::gb_per_s(1.0));
    Seconds second_done = -1.0;
    ch.start_flow(1 * kGB, Bandwidth(), [&] {
        ch.start_flow(1 * kGB, Bandwidth(),
                      [&] { second_done = sim.now(); });
    });
    sim.run();
    EXPECT_NEAR(second_done, 2.0, kTol);
}

TEST(BandwidthChannel, LateArrivalSlowsExistingFlow)
{
    Simulator sim;
    BandwidthChannel ch(sim, "link", Bandwidth::gb_per_s(10.0));
    Seconds done_a = -1.0;
    ch.start_flow(10 * kGB, Bandwidth(), [&] { done_a = sim.now(); });
    sim.schedule(0.5, [&] {
        ch.start_flow(100 * kGB, Bandwidth(), [] {});
    });
    sim.run_until(10.0);
    // Flow A: 5 GB in the first 0.5 s, then 5 GB/s => done at 1.5 s.
    EXPECT_NEAR(done_a, 1.5, kTol);
}

TEST(BandwidthChannel, SubByteRemainderDoesNotLivelock)
{
    // Regression: remainders below one byte used to stall virtual time.
    Simulator sim;
    BandwidthChannel ch(sim, "link",
                        Bandwidth::bytes_per_s(3.0000000001e9));
    int completed = 0;
    for (int i = 0; i < 50; ++i) {
        ch.start_flow(333333333 + static_cast<Bytes>(i * 7),
                      Bandwidth::bytes_per_s(1.7e9 + i * 1.3e5),
                      [&] { ++completed; });
    }
    sim.run();
    EXPECT_EQ(completed, 50);
    EXPECT_LT(sim.events_executed(), 100000u);
}

TEST(BandwidthChannel, ManySequentialFlowsAccumulateBytes)
{
    Simulator sim;
    BandwidthChannel ch(sim, "link", Bandwidth::gb_per_s(10.0));
    Bytes expected = 0;
    std::function<void(int)> launch = [&](int remaining) {
        if (remaining == 0)
            return;
        const Bytes size = 100 * kMiB + static_cast<Bytes>(remaining);
        expected += size;
        ch.start_flow(size, Bandwidth(),
                      [&, remaining] { launch(remaining - 1); });
    };
    launch(20);
    sim.run();
    EXPECT_EQ(ch.bytes_delivered(), expected);
}

} // namespace
} // namespace helm::sim
