/**
 * @file
 * Unit tests for the discrete-event kernel (sim/simulator.h).
 */
#include <gtest/gtest.h>

#include <vector>

#include "sim/simulator.h"

namespace helm::sim {
namespace {

TEST(Simulator, StartsAtZero)
{
    Simulator sim;
    EXPECT_DOUBLE_EQ(sim.now(), 0.0);
    EXPECT_EQ(sim.pending_events(), 0u);
    EXPECT_FALSE(sim.step());
}

TEST(Simulator, EventsFireInTimeOrder)
{
    Simulator sim;
    std::vector<int> order;
    sim.schedule(3.0, [&] { order.push_back(3); });
    sim.schedule(1.0, [&] { order.push_back(1); });
    sim.schedule(2.0, [&] { order.push_back(2); });
    sim.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_DOUBLE_EQ(sim.now(), 3.0);
}

TEST(Simulator, EqualTimestampsFireFifo)
{
    Simulator sim;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i)
        sim.schedule(1.0, [&order, i] { order.push_back(i); });
    sim.run();
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Simulator, ClockAdvancesToEventTime)
{
    Simulator sim;
    Seconds observed = -1.0;
    sim.schedule(5.5, [&] { observed = sim.now(); });
    sim.run();
    EXPECT_DOUBLE_EQ(observed, 5.5);
}

TEST(Simulator, NestedScheduling)
{
    Simulator sim;
    std::vector<Seconds> times;
    sim.schedule(1.0, [&] {
        times.push_back(sim.now());
        sim.schedule(1.0, [&] { times.push_back(sim.now()); });
    });
    sim.run();
    ASSERT_EQ(times.size(), 2u);
    EXPECT_DOUBLE_EQ(times[0], 1.0);
    EXPECT_DOUBLE_EQ(times[1], 2.0);
}

TEST(Simulator, CancelPreventsExecution)
{
    Simulator sim;
    bool fired = false;
    const EventId id = sim.schedule(1.0, [&] { fired = true; });
    EXPECT_TRUE(sim.cancel(id));
    EXPECT_FALSE(sim.cancel(id)); // second cancel is a no-op
    sim.run();
    EXPECT_FALSE(fired);
    EXPECT_EQ(sim.events_executed(), 0u);
}

TEST(Simulator, CancelOneOfMany)
{
    Simulator sim;
    std::vector<int> order;
    sim.schedule(1.0, [&] { order.push_back(1); });
    const EventId id = sim.schedule(2.0, [&] { order.push_back(2); });
    sim.schedule(3.0, [&] { order.push_back(3); });
    sim.cancel(id);
    sim.run();
    EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(Simulator, RunUntilStopsAtDeadline)
{
    Simulator sim;
    std::vector<int> order;
    sim.schedule(1.0, [&] { order.push_back(1); });
    sim.schedule(2.0, [&] { order.push_back(2); });
    sim.schedule(3.0, [&] { order.push_back(3); });
    sim.run_until(2.0);
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
    EXPECT_DOUBLE_EQ(sim.now(), 2.0);
    sim.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulator, RunUntilAdvancesClockWhenIdle)
{
    Simulator sim;
    sim.run_until(7.0);
    EXPECT_DOUBLE_EQ(sim.now(), 7.0);
}

TEST(Simulator, EventsExecutedCounter)
{
    Simulator sim;
    for (int i = 0; i < 5; ++i)
        sim.schedule(static_cast<double>(i), [] {});
    sim.run();
    EXPECT_EQ(sim.events_executed(), 5u);
}

TEST(Simulator, ZeroDelayEventsRunAtCurrentTime)
{
    Simulator sim;
    Seconds t = -1.0;
    sim.schedule(2.0, [&] {
        sim.schedule(0.0, [&] { t = sim.now(); });
    });
    sim.run();
    EXPECT_DOUBLE_EQ(t, 2.0);
}

TEST(Simulator, StepExecutesExactlyOne)
{
    Simulator sim;
    int count = 0;
    sim.schedule(1.0, [&] { ++count; });
    sim.schedule(2.0, [&] { ++count; });
    EXPECT_TRUE(sim.step());
    EXPECT_EQ(count, 1);
    EXPECT_TRUE(sim.step());
    EXPECT_EQ(count, 2);
    EXPECT_FALSE(sim.step());
}

// ---- the accounting guarantee (see the simulator.h file header) ------

TEST(Simulator, PendingNeverCountsCancelledEntries)
{
    // Cancelled-but-unpopped entries must be invisible to
    // pending_events() immediately, not only after their heap entry
    // surfaces or a refill sweeps them.
    Simulator sim;
    std::vector<EventId> ids;
    for (int i = 0; i < 5; ++i)
        ids.push_back(sim.schedule(1.0 + i, [] {}));
    EXPECT_EQ(sim.pending_events(), 5u);
    EXPECT_TRUE(sim.cancel(ids[1]));
    EXPECT_TRUE(sim.cancel(ids[3]));
    EXPECT_EQ(sim.pending_events(), 3u);
    sim.run();
    EXPECT_EQ(sim.pending_events(), 0u);
    EXPECT_EQ(sim.events_executed(), 3u);
}

TEST(Simulator, PendingExactAcrossTiersAndSteps)
{
    // Wide spread pushes entries into the far tier; the live count
    // must stay exact through cancellations, refills, and pops.
    Simulator sim;
    std::vector<EventId> ids;
    for (std::uint64_t i = 0; i < 200; ++i)
        ids.push_back(sim.schedule(
            static_cast<double>((i * 97) % 100) * 10.0 + 1.0, [] {}));
    std::size_t live = 200;
    for (std::size_t i = 0; i < ids.size(); i += 3) {
        ASSERT_TRUE(sim.cancel(ids[i]));
        --live;
        EXPECT_EQ(sim.pending_events(), live);
    }
    while (sim.step()) {
        --live;
        EXPECT_EQ(sim.pending_events(), live);
    }
    EXPECT_EQ(live, 0u);
}

TEST(Simulator, CancelOwnFiringEventReturnsFalse)
{
    // By the time a callback runs, its event has fired: the handle
    // must read as spent, not cancel anything.
    Simulator sim;
    EventId self = kInvalidEvent;
    bool cancel_result = true;
    self = sim.schedule(1.0, [&] { cancel_result = sim.cancel(self); });
    sim.run();
    EXPECT_FALSE(cancel_result);
    EXPECT_EQ(sim.events_executed(), 1u);
}

TEST(Simulator, StaleHandleCannotCancelAcrossSlotReuse)
{
    // Cancelling frees the slot; the next schedule may reuse it.  The
    // old handle carries the old generation and must stay inert.
    Simulator sim;
    bool fired = false;
    const EventId old_id = sim.schedule(1.0, [] {});
    ASSERT_TRUE(sim.cancel(old_id));
    const EventId new_id = sim.schedule(2.0, [&] { fired = true; });
    EXPECT_FALSE(sim.cancel(old_id)); // must not kill the new event
    sim.run();
    EXPECT_TRUE(fired);
    EXPECT_NE(old_id, new_id);
}

TEST(Simulator, FiredHandleCannotCancelAcrossSlotReuse)
{
    Simulator sim;
    bool fired = false;
    const EventId spent = sim.schedule(1.0, [] {});
    sim.run();
    const EventId fresh = sim.schedule(1.0, [&] { fired = true; });
    EXPECT_FALSE(sim.cancel(spent));
    sim.run();
    EXPECT_TRUE(fired);
    EXPECT_NE(spent, fresh);
}

TEST(Simulator, RunUntilWithCancelledHeadAdvancesClock)
{
    // A cancelled earliest event must neither fire nor pin the clock:
    // run_until has to discard it and land exactly on the deadline.
    Simulator sim;
    bool fired = false;
    const EventId head = sim.schedule(1.0, [&] { fired = true; });
    sim.schedule(2.0, [] {});
    ASSERT_TRUE(sim.cancel(head));
    sim.run_until(1.5);
    EXPECT_FALSE(fired);
    EXPECT_DOUBLE_EQ(sim.now(), 1.5);
    EXPECT_EQ(sim.pending_events(), 1u);
    sim.run();
    EXPECT_EQ(sim.events_executed(), 1u);
}

TEST(Simulator, CancelSameTimestampLaterEventFromCallback)
{
    // FIFO at equal timestamps means the first-scheduled event runs
    // first and may still cancel a same-timestamp successor.
    Simulator sim;
    bool victim_fired = false;
    EventId victim = kInvalidEvent;
    sim.schedule(1.0, [&] { EXPECT_TRUE(sim.cancel(victim)); });
    victim = sim.schedule(1.0, [&] { victim_fired = true; });
    sim.run();
    EXPECT_FALSE(victim_fired);
    EXPECT_EQ(sim.events_executed(), 1u);
}

TEST(Simulator, ReserveIsBehaviorNeutral)
{
    Simulator sim;
    sim.reserve(4096);
    std::vector<int> order;
    sim.schedule(2.0, [&] { order.push_back(2); });
    sim.schedule(1.0, [&] { order.push_back(1); });
    sim.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

} // namespace
} // namespace helm::sim
