/**
 * @file
 * Unit tests for the discrete-event kernel (sim/simulator.h).
 */
#include <gtest/gtest.h>

#include <vector>

#include "sim/simulator.h"

namespace helm::sim {
namespace {

TEST(Simulator, StartsAtZero)
{
    Simulator sim;
    EXPECT_DOUBLE_EQ(sim.now(), 0.0);
    EXPECT_EQ(sim.pending_events(), 0u);
    EXPECT_FALSE(sim.step());
}

TEST(Simulator, EventsFireInTimeOrder)
{
    Simulator sim;
    std::vector<int> order;
    sim.schedule(3.0, [&] { order.push_back(3); });
    sim.schedule(1.0, [&] { order.push_back(1); });
    sim.schedule(2.0, [&] { order.push_back(2); });
    sim.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_DOUBLE_EQ(sim.now(), 3.0);
}

TEST(Simulator, EqualTimestampsFireFifo)
{
    Simulator sim;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i)
        sim.schedule(1.0, [&order, i] { order.push_back(i); });
    sim.run();
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Simulator, ClockAdvancesToEventTime)
{
    Simulator sim;
    Seconds observed = -1.0;
    sim.schedule(5.5, [&] { observed = sim.now(); });
    sim.run();
    EXPECT_DOUBLE_EQ(observed, 5.5);
}

TEST(Simulator, NestedScheduling)
{
    Simulator sim;
    std::vector<Seconds> times;
    sim.schedule(1.0, [&] {
        times.push_back(sim.now());
        sim.schedule(1.0, [&] { times.push_back(sim.now()); });
    });
    sim.run();
    ASSERT_EQ(times.size(), 2u);
    EXPECT_DOUBLE_EQ(times[0], 1.0);
    EXPECT_DOUBLE_EQ(times[1], 2.0);
}

TEST(Simulator, CancelPreventsExecution)
{
    Simulator sim;
    bool fired = false;
    const EventId id = sim.schedule(1.0, [&] { fired = true; });
    EXPECT_TRUE(sim.cancel(id));
    EXPECT_FALSE(sim.cancel(id)); // second cancel is a no-op
    sim.run();
    EXPECT_FALSE(fired);
    EXPECT_EQ(sim.events_executed(), 0u);
}

TEST(Simulator, CancelOneOfMany)
{
    Simulator sim;
    std::vector<int> order;
    sim.schedule(1.0, [&] { order.push_back(1); });
    const EventId id = sim.schedule(2.0, [&] { order.push_back(2); });
    sim.schedule(3.0, [&] { order.push_back(3); });
    sim.cancel(id);
    sim.run();
    EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(Simulator, RunUntilStopsAtDeadline)
{
    Simulator sim;
    std::vector<int> order;
    sim.schedule(1.0, [&] { order.push_back(1); });
    sim.schedule(2.0, [&] { order.push_back(2); });
    sim.schedule(3.0, [&] { order.push_back(3); });
    sim.run_until(2.0);
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
    EXPECT_DOUBLE_EQ(sim.now(), 2.0);
    sim.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulator, RunUntilAdvancesClockWhenIdle)
{
    Simulator sim;
    sim.run_until(7.0);
    EXPECT_DOUBLE_EQ(sim.now(), 7.0);
}

TEST(Simulator, EventsExecutedCounter)
{
    Simulator sim;
    for (int i = 0; i < 5; ++i)
        sim.schedule(static_cast<double>(i), [] {});
    sim.run();
    EXPECT_EQ(sim.events_executed(), 5u);
}

TEST(Simulator, ZeroDelayEventsRunAtCurrentTime)
{
    Simulator sim;
    Seconds t = -1.0;
    sim.schedule(2.0, [&] {
        sim.schedule(0.0, [&] { t = sim.now(); });
    });
    sim.run();
    EXPECT_DOUBLE_EQ(t, 2.0);
}

TEST(Simulator, StepExecutesExactlyOne)
{
    Simulator sim;
    int count = 0;
    sim.schedule(1.0, [&] { ++count; });
    sim.schedule(2.0, [&] { ++count; });
    EXPECT_TRUE(sim.step());
    EXPECT_EQ(count, 1);
    EXPECT_TRUE(sim.step());
    EXPECT_EQ(count, 2);
    EXPECT_FALSE(sim.step());
}

} // namespace
} // namespace helm::sim
