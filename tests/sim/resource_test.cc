/**
 * @file
 * Unit tests for FifoResource and CountdownLatch.
 */
#include <gtest/gtest.h>

#include <vector>

#include "sim/resource.h"
#include "sim/simulator.h"

namespace helm::sim {
namespace {

constexpr double kTol = 1e-9;

TEST(FifoResource, ImmediateGrantWhenFree)
{
    Simulator sim;
    FifoResource res(sim, "gpu", 1);
    bool granted = false;
    res.acquire([&] { granted = true; });
    EXPECT_TRUE(granted); // synchronous when capacity is available
    EXPECT_EQ(res.in_use(), 1u);
    res.release();
    EXPECT_EQ(res.in_use(), 0u);
}

TEST(FifoResource, QueuedWaiterAdmittedOnRelease)
{
    Simulator sim;
    FifoResource res(sim, "gpu", 1);
    std::vector<int> order;
    res.acquire([&] { order.push_back(1); });
    res.acquire([&] { order.push_back(2); });
    EXPECT_EQ(order, (std::vector<int>{1}));
    EXPECT_EQ(res.queue_length(), 1u);
    res.release();
    sim.run(); // admission is a zero-delay event
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(FifoResource, FifoOrderAmongWaiters)
{
    Simulator sim;
    FifoResource res(sim, "gpu", 1);
    std::vector<int> order;
    res.occupy(1.0, [&] { order.push_back(0); });
    for (int i = 1; i <= 3; ++i)
        res.occupy(1.0, [&, i] { order.push_back(i); });
    sim.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
    EXPECT_DOUBLE_EQ(sim.now(), 4.0);
}

TEST(FifoResource, CapacityTwoRunsTwoConcurrently)
{
    Simulator sim;
    FifoResource res(sim, "copy-engines", 2);
    std::vector<Seconds> done;
    for (int i = 0; i < 4; ++i)
        res.occupy(1.0, [&] { done.push_back(sim.now()); });
    sim.run();
    ASSERT_EQ(done.size(), 4u);
    EXPECT_NEAR(done[0], 1.0, kTol);
    EXPECT_NEAR(done[1], 1.0, kTol);
    EXPECT_NEAR(done[2], 2.0, kTol);
    EXPECT_NEAR(done[3], 2.0, kTol);
}

TEST(FifoResource, OccupancyHookFiresOnGrantAndReleaseEdges)
{
    Simulator sim;
    FifoResource res(sim, "h2d", 1);
    std::vector<std::pair<Seconds, std::size_t>> edges;
    res.set_occupancy_hook([&](Seconds t, std::size_t in_use) {
        edges.emplace_back(t, in_use);
    });
    res.occupy(2.0, [] {});
    res.occupy(3.0, [] {});
    sim.run();
    // Two holders on a unit resource: rise/fall, rise/fall — the edge
    // stream a time-series consumer turns into utilization buckets.
    ASSERT_EQ(edges.size(), 4u);
    EXPECT_NEAR(edges[0].first, 0.0, kTol);
    EXPECT_EQ(edges[0].second, 1u);
    EXPECT_NEAR(edges[1].first, 2.0, kTol);
    EXPECT_EQ(edges[1].second, 0u);
    EXPECT_NEAR(edges[2].first, 2.0, kTol);
    EXPECT_EQ(edges[2].second, 1u);
    EXPECT_NEAR(edges[3].first, 5.0, kTol);
    EXPECT_EQ(edges[3].second, 0u);
}

TEST(FifoResource, OccupySerializesOnUnitCapacity)
{
    Simulator sim;
    FifoResource res(sim, "gpu", 1);
    Seconds first = -1, second = -1;
    res.occupy(2.0, [&] { first = sim.now(); });
    res.occupy(3.0, [&] { second = sim.now(); });
    sim.run();
    EXPECT_NEAR(first, 2.0, kTol);
    EXPECT_NEAR(second, 5.0, kTol);
}

TEST(FifoResource, ZeroDurationOccupy)
{
    Simulator sim;
    FifoResource res(sim, "gpu", 1);
    bool done = false;
    res.occupy(0.0, [&] { done = true; });
    sim.run();
    EXPECT_TRUE(done);
    EXPECT_DOUBLE_EQ(sim.now(), 0.0);
}

TEST(FifoResource, BusyTimeIntegratesUtilization)
{
    Simulator sim;
    FifoResource res(sim, "gpu", 1);
    res.occupy(2.0, [] {});
    res.occupy(3.0, [] {});
    sim.run();
    // 5 seconds of busy time on a capacity-1 resource.
    EXPECT_NEAR(res.busy_time(), 5.0, kTol);
}

TEST(CountdownLatch, FiresAfterExactCount)
{
    CountdownLatch latch(3);
    int fired = 0;
    latch.on_zero([&] { ++fired; });
    latch.arrive();
    latch.arrive();
    EXPECT_EQ(fired, 0);
    EXPECT_EQ(latch.remaining(), 1u);
    latch.arrive();
    EXPECT_EQ(fired, 1);
}

TEST(CountdownLatch, ZeroCountFiresOnCallbackInstall)
{
    CountdownLatch latch(0);
    bool fired = false;
    latch.on_zero([&] { fired = true; });
    EXPECT_TRUE(fired);
}

TEST(CountdownLatch, ArrivalsBeforeCallbackInstall)
{
    CountdownLatch latch(2);
    latch.arrive();
    latch.arrive();
    bool fired = false;
    latch.on_zero([&] { fired = true; });
    EXPECT_TRUE(fired);
}

} // namespace
} // namespace helm::sim
