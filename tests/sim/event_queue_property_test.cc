/**
 * @file
 * Property test pinning the rewritten two-tier DES kernel
 * (sim/simulator.h) to the frozen priority_queue baseline
 * (sim/legacy_simulator.h).
 *
 * Randomized schedule/cancel/run_until programs — actions issued both
 * from outside and from inside firing callbacks — are replayed through
 * both kernels, and every observable must match exactly: the (time,
 * tag) fire trace (which pins same-timestamp FIFO order), every
 * cancel() return value (pending vs already-fired vs already-cancelled
 * vs stale-after-reuse semantics), every pending_events() checkpoint
 * (the accounting guarantee: cancelled-but-unpopped entries are never
 * counted), the clock after each run_until() boundary, and the final
 * executed-event count.  Event ids are kernel-internal (the rewrite
 * packs slot+generation where the baseline counted), so programs refer
 * to events by issue index, never by id value.
 */
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "sim/legacy_simulator.h"
#include "sim/simulator.h"

namespace helm::sim {
namespace {

/** Everything a program observes; compared across kernels. */
struct Observations
{
    std::vector<std::pair<std::uint64_t, Seconds>> fires;
    std::vector<bool> cancel_results;
    /** (pending_events, now) snapshots. */
    std::vector<std::pair<std::size_t, Seconds>> checkpoints;
    std::uint64_t executed = 0;
    Seconds final_now = 0.0;

    bool
    operator==(const Observations &other) const
    {
        return fires == other.fires &&
               cancel_results == other.cancel_results &&
               checkpoints == other.checkpoints &&
               executed == other.executed && final_now == other.final_now;
    }
};

/**
 * Interpret one random program on @p Kernel.  All randomness flows
 * through one Rng advanced inside the callbacks; because both kernels
 * must fire the same callbacks in the same order, the two replays draw
 * identical random streams — any semantic divergence desynchronizes
 * the traces and fails the comparison loudly.
 */
template <typename Kernel>
Observations
run_program(std::uint64_t seed)
{
    Kernel sim;
    Rng rng(seed);
    Observations obs;
    std::vector<EventId> ids; // issue order; programs index into this
    std::uint64_t next_tag = 0;

    std::function<void(std::uint64_t)> fire;
    const auto random_action = [&] {
        switch (rng.next_below(5)) {
        case 0: { // relative schedule
            const Seconds delay =
                static_cast<double>(rng.next_below(1000)) * 1e-3;
            const std::uint64_t tag = next_tag++;
            ids.push_back(sim.schedule(delay, [&fire, tag] { fire(tag); }));
            break;
        }
        case 1: { // absolute schedule, possibly far past the horizon
            const Seconds when =
                sim.now() +
                static_cast<double>(rng.next_below(100000)) * 1e-4;
            const std::uint64_t tag = next_tag++;
            ids.push_back(
                sim.schedule_at(when, [&fire, tag] { fire(tag); }));
            break;
        }
        case 2: // same-timestamp schedule (FIFO tiebreak coverage)
        {
            const std::uint64_t tag = next_tag++;
            ids.push_back(
                sim.schedule(0.0, [&fire, tag] { fire(tag); }));
            break;
        }
        case 3: // cancel an event picked by issue index (any state)
            if (!ids.empty()) {
                const std::size_t index = static_cast<std::size_t>(
                    rng.next_below(ids.size()));
                obs.cancel_results.push_back(sim.cancel(ids[index]));
            }
            break;
        case 4: // accounting checkpoint
            obs.checkpoints.emplace_back(sim.pending_events(),
                                         sim.now());
            break;
        }
    };
    fire = [&](std::uint64_t tag) {
        obs.fires.emplace_back(tag, sim.now());
        const std::uint64_t actions = rng.next_below(4);
        for (std::uint64_t a = 0; a < actions; ++a)
            random_action();
    };

    // Seed the queue, then alternate run_until boundaries with bursts
    // of external actions, and finally drain.
    for (int i = 0; i < 32; ++i)
        random_action();
    for (int phase = 0; phase < 4; ++phase) {
        sim.run_until(sim.now() +
                      static_cast<double>(rng.next_below(2000)) * 1e-3);
        obs.checkpoints.emplace_back(sim.pending_events(), sim.now());
        for (int i = 0; i < 8; ++i)
            random_action();
    }
    sim.run();

    obs.executed = sim.events_executed();
    obs.final_now = sim.now();
    return obs;
}

TEST(EventQueueProperty, KernelsAgreeOnRandomPrograms)
{
    for (std::uint64_t seed = 1; seed <= 24; ++seed) {
        const Observations baseline =
            run_program<LegacySimulator>(seed);
        const Observations rewritten = run_program<Simulator>(seed);
        ASSERT_TRUE(baseline == rewritten)
            << "kernels diverged on program seed " << seed << ": "
            << baseline.fires.size() << " vs " << rewritten.fires.size()
            << " fires, " << baseline.executed << " vs "
            << rewritten.executed << " executed";
        // The programs must actually exercise the machinery.
        EXPECT_GT(baseline.fires.size(), 0u) << "seed " << seed;
    }
}

TEST(EventQueueProperty, FireTimesAreMonotoneAndFifo)
{
    const Observations obs = run_program<Simulator>(7);
    ASSERT_FALSE(obs.fires.empty());
    for (std::size_t i = 1; i < obs.fires.size(); ++i)
        EXPECT_LE(obs.fires[i - 1].second, obs.fires[i].second)
            << "fire " << i << " ran before an earlier timestamp";
}

TEST(EventQueueProperty, HeavyCancellationStaysExact)
{
    // Deterministic torture: schedule a wide far-tier spread, cancel
    // every other event, and require both kernels to agree that the
    // accounting and the survivor trace are exact.
    const auto run = [](auto &&sim) {
        std::vector<EventId> ids;
        std::vector<std::uint64_t> fired;
        for (std::uint64_t i = 0; i < 4096; ++i)
            ids.push_back(sim.schedule(
                static_cast<double>((i * 37) % 1024) + 1.0,
                [&fired, i] { fired.push_back(i); }));
        std::size_t cancelled = 0;
        for (std::size_t i = 0; i < ids.size(); i += 2)
            cancelled += sim.cancel(ids[i]) ? 1 : 0;
        EXPECT_EQ(cancelled, ids.size() / 2);
        EXPECT_EQ(sim.pending_events(), ids.size() - cancelled);
        sim.run();
        EXPECT_EQ(sim.events_executed(), ids.size() - cancelled);
        return fired;
    };
    LegacySimulator legacy;
    Simulator rewritten;
    EXPECT_EQ(run(legacy), run(rewritten));
}

} // namespace
} // namespace helm::sim
