/**
 * @file
 * Unit tests for workload-driven serving (runtime/serving.h).
 */
#include <gtest/gtest.h>

#include "model/opt.h"
#include "runtime/serving.h"

namespace helm::runtime {
namespace {

using model::OptVariant;

ServingSpec
base_spec()
{
    ServingSpec spec;
    spec.model = model::opt_config(OptVariant::kOpt1_3B);
    spec.memory = mem::ConfigKind::kNvdram;
    spec.placement = placement::PlacementKind::kAllCpu;
    return spec;
}

TEST(Serving, RejectsEmptyWorkload)
{
    EXPECT_EQ(serve_workload(base_spec(), {}).status().code(),
              StatusCode::kInvalidArgument);
}

TEST(Serving, RejectsEmptyBatch)
{
    std::vector<workload::Batch> batches(1);
    EXPECT_EQ(serve_workload(base_spec(), batches).status().code(),
              StatusCode::kInvalidArgument);
}

TEST(Serving, PaperWorkloadAggregates)
{
    const auto batches = workload::paper_workload(4);
    const auto result = serve_workload(base_spec(), batches);
    ASSERT_TRUE(result.is_ok()) << result.status().to_string();
    EXPECT_EQ(result->per_batch.size(), 10u); // 10 repeats (Sec. III-B)
    EXPECT_EQ(result->aggregate.total_tokens, 10u * 4u * 21u);
    EXPECT_GT(result->aggregate.throughput, 0.0);
    EXPECT_EQ(result->padded_tokens, 0u); // fixed-length prompts
}

TEST(Serving, ColdDiscardMatchesPaperRule)
{
    const auto batches = workload::paper_workload(2);
    const auto result = serve_workload(base_spec(), batches);
    ASSERT_TRUE(result.is_ok());
    // Identical batches: aggregate TTFT equals any steady-state batch's.
    EXPECT_NEAR(result->aggregate.ttft, result->per_batch[1].ttft, 1e-9);
    EXPECT_EQ(result->aggregate.per_batch_ttft.size(), 10u);
}

TEST(Serving, VariableLengthBatchesPadPerBatch)
{
    workload::WorkloadSpec spec;
    spec.variable_lengths = true;
    const auto batches = workload::generate_batches(spec, 8, 4);
    const auto result = serve_workload(base_spec(), batches);
    ASSERT_TRUE(result.is_ok());
    // Mixed prompt lengths must produce padding overhead.
    EXPECT_GT(result->padded_tokens, 0u);
    EXPECT_EQ(result->per_batch.size(), 4u);
}

TEST(Serving, LongerPromptsCostMorePrefill)
{
    // Large batch x long prompt so prefill compute rises above the
    // weight-transfer floor (small prompts are transfer-bound and TTFT
    // is rightly insensitive to length there).
    workload::Batch short_batch;
    workload::Batch long_batch;
    for (std::uint64_t i = 0; i < 32; ++i) {
        short_batch.requests.push_back({i, 64, 8});
        long_batch.requests.push_back({i, 1024, 8});
    }
    const auto short_run =
        serve_workload(base_spec(), {short_batch, short_batch});
    const auto long_run =
        serve_workload(base_spec(), {long_batch, long_batch});
    ASSERT_TRUE(short_run.is_ok());
    ASSERT_TRUE(long_run.is_ok());
    EXPECT_GT(long_run->aggregate.ttft, short_run->aggregate.ttft);
}

TEST(Serving, BaseSpecKnobsApply)
{
    // Micro-batches on the base spec multiply tokens per batch.
    const auto batches = workload::paper_workload(2);
    ServingSpec with_micro = base_spec();
    with_micro.micro_batches = 3;
    const auto plain = serve_workload(base_spec(), batches);
    const auto micro = serve_workload(with_micro, batches);
    ASSERT_TRUE(plain.is_ok());
    ASSERT_TRUE(micro.is_ok());
    EXPECT_EQ(micro->aggregate.total_tokens,
              3 * plain->aggregate.total_tokens);
}

TEST(Serving, PropagatesEngineFailures)
{
    // A batch too large for the GPU must surface the capacity error.
    ServingSpec spec;
    spec.model = model::opt_config(OptVariant::kOpt175B);
    spec.memory = mem::ConfigKind::kNvdram;
    spec.placement = placement::PlacementKind::kAllCpu;
    spec.compress_weights = true;
    const auto batches = workload::paper_workload(500);
    EXPECT_EQ(serve_workload(spec, batches).status().code(),
              StatusCode::kCapacityExceeded);
}

TEST(Serving, ThroughputConsistent)
{
    const auto batches = workload::paper_workload(4);
    const auto result = serve_workload(base_spec(), batches);
    ASSERT_TRUE(result.is_ok());
    EXPECT_NEAR(result->aggregate.throughput,
                static_cast<double>(result->aggregate.total_tokens) /
                    result->aggregate.total_time,
                1e-9);
}

} // namespace
} // namespace helm::runtime
