/**
 * @file
 * Engine + scheduler integration tests for the tiered KV cache:
 * bit-for-bit goldens pinning the legacy offload_kv_cache paths, the
 * NVDRAM write-ceiling bound on the managed writeback, prefetch-off
 * stall accounting, the chrome-trace KV track, and the admission-side
 * batch/shedding behavior.
 */
#include <gtest/gtest.h>

#include "model/footprint.h"
#include "model/opt.h"
#include "runtime/engine.h"
#include "runtime/scheduler.h"
#include "runtime/trace.h"

namespace helm::runtime {
namespace {

using model::OptVariant;

ServingSpec
opt67b_spec(bool offload, std::uint64_t batch)
{
    ServingSpec spec;
    spec.model = model::opt_config(OptVariant::kOpt6_7B);
    spec.memory = mem::ConfigKind::kNvdram;
    spec.placement = placement::PlacementKind::kAllCpu;
    spec.batch = batch;
    spec.repeats = 2;
    spec.offload_kv_cache = offload;
    return spec;
}

RunResult
run_or_fail(const ServingSpec &spec)
{
    auto result = simulate_inference(spec);
    EXPECT_TRUE(result.is_ok()) << result.status().to_string();
    return *result;
}

Bytes
total_kv_read(const RunResult &result)
{
    Bytes bytes = 0;
    for (const auto &rec : result.records)
        bytes += rec.kv_read_bytes;
    return bytes;
}

Bytes
total_kv_write(const RunResult &result)
{
    Bytes bytes = 0;
    for (const auto &rec : result.records)
        bytes += rec.kv_write_bytes;
    return bytes;
}

/** A managed config that forces demotions on OPT-6.7B: a GPU tier of
 *  @p gpu_blocks blocks backed by an unbounded host tier. */
kvcache::KvCacheConfig
tight_tiered(std::uint64_t gpu_blocks, bool prefetch = true)
{
    const auto model = model::opt_config(OptVariant::kOpt6_7B);
    const Bytes block_bytes =
        16 * model::kv_bytes_per_block(model, 1) * model.blocks;
    auto config = kvcache::KvCacheConfig::tiered();
    config.tiers[0].auto_capacity = false;
    config.tiers[0].capacity = gpu_blocks * block_bytes;
    config.prefetch = prefetch;
    return config;
}

// ---------------------------------------------------------------------
// Bit-for-bit goldens: the legacy offload_kv_cache code paths must not
// move, even though both now run through the KvCacheManager.  Values
// captured from the seed engine (OPT-6.7B, NVDRAM, All-CPU, repeats 2,
// paper shape 128/21) at full double precision.
// ---------------------------------------------------------------------

TEST(KvCacheGolden, GpuResidentBatch4)
{
    const auto result = run_or_fail(opt67b_spec(false, 4));
    EXPECT_DOUBLE_EQ(result.metrics.ttft, 0.69851047063023763);
    EXPECT_DOUBLE_EQ(result.metrics.tbt, 0.69745220558922338);
    EXPECT_DOUBLE_EQ(result.metrics.total_time, 29.338081634818529);
    EXPECT_DOUBLE_EQ(result.metrics.throughput, 5.7263457812666614);
    EXPECT_EQ(total_kv_read(result), 0u);
    EXPECT_EQ(total_kv_write(result), 0u);
}

TEST(KvCacheGolden, OffloadBatch4)
{
    const auto result = run_or_fail(opt67b_spec(true, 4));
    EXPECT_DOUBLE_EQ(result.metrics.ttft, 0.69868648861272398);
    EXPECT_DOUBLE_EQ(result.metrics.tbt, 0.70691820135820849);
    EXPECT_DOUBLE_EQ(result.metrics.total_time, 29.717084491940515);
    EXPECT_DOUBLE_EQ(result.metrics.throughput, 5.6533136703084983);
    EXPECT_EQ(total_kv_read(result), 11618222080u);
    EXPECT_EQ(total_kv_write(result), 620756992u);
}

TEST(KvCacheGolden, OffloadBatch32)
{
    const auto result = run_or_fail(opt67b_spec(true, 32));
    EXPECT_DOUBLE_EQ(result.metrics.ttft, 1.3035037039575101);
    EXPECT_DOUBLE_EQ(result.metrics.tbt, 0.77290857573917704);
    EXPECT_DOUBLE_EQ(result.metrics.total_time, 33.566045517918269);
    EXPECT_DOUBLE_EQ(result.metrics.throughput, 40.040462892256528);
    EXPECT_EQ(total_kv_read(result), 92945776640u);
    EXPECT_EQ(total_kv_write(result), 4966055936u);
}

// ---------------------------------------------------------------------
// Compatibility shims: the explicit configs reproduce the bools.
// ---------------------------------------------------------------------

TEST(KvCacheShim, ExplicitLegacyOffloadMatchesBool)
{
    const auto via_bool = run_or_fail(opt67b_spec(true, 4));
    auto spec = opt67b_spec(false, 4);
    spec.kv_cache = kvcache::KvCacheConfig::legacy_offload();
    const auto via_config = run_or_fail(spec);

    EXPECT_DOUBLE_EQ(via_config.metrics.ttft, via_bool.metrics.ttft);
    EXPECT_DOUBLE_EQ(via_config.metrics.tbt, via_bool.metrics.tbt);
    EXPECT_DOUBLE_EQ(via_config.metrics.total_time,
                     via_bool.metrics.total_time);
    EXPECT_EQ(total_kv_read(via_config), total_kv_read(via_bool));
    EXPECT_EQ(total_kv_write(via_config), total_kv_write(via_bool));
}

TEST(KvCacheShim, ExplicitGpuOnlyMatchesDefault)
{
    const auto via_default = run_or_fail(opt67b_spec(false, 4));
    auto spec = opt67b_spec(false, 4);
    spec.kv_cache = kvcache::KvCacheConfig::gpu_only();
    const auto via_config = run_or_fail(spec);

    EXPECT_DOUBLE_EQ(via_config.metrics.ttft, via_default.metrics.ttft);
    EXPECT_DOUBLE_EQ(via_config.metrics.total_time,
                     via_default.metrics.total_time);
    EXPECT_EQ(total_kv_read(via_config), 0u);
    EXPECT_EQ(total_kv_write(via_config), 0u);
}

// ---------------------------------------------------------------------
// Managed-tier behavior on the engine timeline.
// ---------------------------------------------------------------------

TEST(KvCacheEngine, WritebackRespectsNvdramWriteCeiling)
{
    // 4 requests x 8 blocks of prompt against an 8-block GPU tier:
    // most of the cache demotes to the NVDRAM host tier, and every
    // writeback drain must stay under Optane's 3.26 GB/s (Fig. 3b).
    auto spec = opt67b_spec(false, 4);
    spec.kv_cache = tight_tiered(8);
    const auto result = run_or_fail(spec);

    EXPECT_GT(result.kv_stats.demotions, 0u);
    ASSERT_EQ(result.kv_stats.tiers.size(), 2u);
    EXPECT_GT(result.kv_stats.tiers[1].read_bytes, 0u);

    bool saw_write = false;
    for (const auto &rec : result.records) {
        if (rec.kv_write_time <= 0.0 || rec.kv_write_bytes == 0)
            continue;
        saw_write = true;
        const double rate =
            static_cast<double>(rec.kv_write_bytes) / rec.kv_write_time;
        EXPECT_LE(rate, 3.26e9 * (1.0 + 1e-6));
    }
    EXPECT_TRUE(saw_write);
}

TEST(KvCacheEngine, PrefetchOffExposesContextFetchStall)
{
    auto overlapped = opt67b_spec(false, 4);
    overlapped.kv_cache = tight_tiered(8, /*prefetch=*/true);
    const auto with_prefetch = run_or_fail(overlapped);

    auto exposed = opt67b_spec(false, 4);
    exposed.kv_cache = tight_tiered(8, /*prefetch=*/false);
    const auto without_prefetch = run_or_fail(exposed);

    Seconds stall = 0.0;
    for (const auto &rec : without_prefetch.records)
        stall += rec.kv_stall_time;
    EXPECT_GT(stall, 0.0);
    for (const auto &rec : with_prefetch.records)
        EXPECT_EQ(rec.kv_stall_time, 0.0);
    // Blocking on the fetch can only slow the run down.
    EXPECT_GE(without_prefetch.metrics.total_time,
              with_prefetch.metrics.total_time);
}

TEST(KvCacheEngine, ChromeTraceCarriesKvTrack)
{
    auto spec = opt67b_spec(true, 2);
    const auto offloaded = run_or_fail(spec);
    const std::string trace = chrome_trace_json(offloaded.records);
    EXPECT_NE(trace.find("KV host"), std::string::npos);
    EXPECT_NE(trace.find("kv-read"), std::string::npos);
    EXPECT_NE(trace.find("kv-write"), std::string::npos);

    const auto resident = run_or_fail(opt67b_spec(false, 2));
    const std::string quiet = chrome_trace_json(resident.records);
    EXPECT_EQ(quiet.find("KV "), std::string::npos);
    EXPECT_EQ(quiet.find("kv-read"), std::string::npos);
}

// ---------------------------------------------------------------------
// Admission: managed tiering beats the GPU-resident batch ceiling and
// sheds requests whose padded context can never fit bounded tiers.
// ---------------------------------------------------------------------

TEST(KvCacheScheduler, TieredAdmitsLargerBatchThanResident)
{
    ServingSpec base;
    base.model = model::opt_config(OptVariant::kOpt175B);
    base.memory = mem::ConfigKind::kNvdram;
    base.placement = placement::PlacementKind::kAllCpu;
    base.compress_weights = true;
    base.batch = 1;

    const auto resident = Server::create(base);
    ASSERT_TRUE(resident.is_ok()) << resident.status().to_string();
    EXPECT_EQ(resident->effective_max_batch(), 44u);

    base.kv_cache = kvcache::KvCacheConfig::tiered();
    const auto tiered = Server::create(base);
    ASSERT_TRUE(tiered.is_ok()) << tiered.status().to_string();
    EXPECT_EQ(tiered->effective_max_batch(), 1158u);
    EXPECT_GT(tiered->effective_max_batch(),
              resident->effective_max_batch());
    // The default tiered config's host tier is unbounded: no KV
    // admission limit applies.
    EXPECT_EQ(tiered->kv_request_slots(), 0u);
}

TEST(KvCacheScheduler, ShedsRequestsThatCanNeverFit)
{
    ServingSpec base;
    base.model = model::opt_config(OptVariant::kOpt1_3B);
    base.memory = mem::ConfigKind::kNvdram;
    base.placement = placement::PlacementKind::kAllCpu;
    const Bytes block_bytes =
        16 * model::kv_bytes_per_block(base.model, 1) * base.model.blocks;
    // One bounded host tier of 40 blocks: a paper-shape request (149
    // padded tokens = 10 blocks) fits, a 2048-token prompt never does.
    auto config = kvcache::KvCacheConfig::legacy_offload();
    config.tiers[0].capacity = 40 * block_bytes;
    base.kv_cache = config;

    auto server = Server::create(base);
    ASSERT_TRUE(server.is_ok()) << server.status().to_string();
    EXPECT_EQ(server->kv_request_slots(), 4u);

    ASSERT_TRUE(server->submit(workload::Request{0, 2048, 21}, 0.0).is_ok());
    for (std::uint64_t id = 1; id <= 3; ++id) {
        ASSERT_TRUE(
            server->submit(workload::Request{id, 128, 21}, 0.0).is_ok());
    }
    const auto report = server->run();
    ASSERT_TRUE(report.is_ok()) << report.status().to_string();
    EXPECT_EQ(report->completed, 3u);
    EXPECT_EQ(report->rejected, 1u);
    EXPECT_EQ(report->kv_rejected, 1u);
    ASSERT_EQ(report->rejected_ids.size(), 1u);
    EXPECT_EQ(report->rejected_ids[0], 0u);
}

} // namespace
} // namespace helm::runtime
