/**
 * @file
 * Unit tests for the block schedule (micro-batches) and KV-cache
 * offloading extensions of the engine.
 */
#include <gtest/gtest.h>

#include "model/opt.h"
#include "runtime/engine.h"

namespace helm::runtime {
namespace {

using model::OptVariant;
using placement::PlacementKind;

ServingSpec
base_spec()
{
    ServingSpec spec;
    spec.model = model::opt_config(OptVariant::kOpt6_7B);
    spec.memory = mem::ConfigKind::kNvdram;
    spec.placement = PlacementKind::kAllCpu;
    spec.batch = 2;
    spec.repeats = 2;
    return spec;
}

TEST(BlockSchedule, RejectsZeroMicroBatches)
{
    ServingSpec spec = base_spec();
    spec.micro_batches = 0;
    EXPECT_EQ(simulate_inference(spec).status().code(),
              StatusCode::kInvalidArgument);
}

TEST(BlockSchedule, TokensScaleWithMicroBatches)
{
    ServingSpec spec = base_spec();
    spec.micro_batches = 4;
    const auto result = simulate_inference(spec);
    ASSERT_TRUE(result.is_ok()) << result.status().to_string();
    EXPECT_EQ(result->metrics.total_tokens,
              spec.repeats * spec.batch * 4 * spec.shape.output_tokens);
}

TEST(BlockSchedule, AmortizesWeightTransfers)
{
    // Transfer-bound config: 4 micro-batches move 4x the tokens per
    // weight load, so throughput must rise substantially while TBT
    // rises by far less than 4x.
    ServingSpec spec = base_spec();
    spec.micro_batches = 1;
    const auto m1 = simulate_inference(spec);
    spec.micro_batches = 4;
    const auto m4 = simulate_inference(spec);
    ASSERT_TRUE(m1.is_ok());
    ASSERT_TRUE(m4.is_ok());
    EXPECT_GT(m4->metrics.throughput, 1.5 * m1->metrics.throughput);
    EXPECT_LT(m4->metrics.tbt, 4.0 * m1->metrics.tbt);
}

TEST(BlockSchedule, ComputeTimeScalesWithMicroBatches)
{
    ServingSpec spec = base_spec();
    spec.micro_batches = 1;
    const auto m1 = simulate_inference(spec);
    spec.micro_batches = 3;
    const auto m3 = simulate_inference(spec);
    ASSERT_TRUE(m1.is_ok());
    ASSERT_TRUE(m3.is_ok());
    EXPECT_NEAR(m3->records[10].compute_time,
                3.0 * m1->records[10].compute_time, 1e-9);
    // Weight bytes per step are unchanged — that is the amortization.
    EXPECT_EQ(m3->records[10].transfer_bytes,
              m1->records[10].transfer_bytes);
}

TEST(BlockSchedule, KvBudgetScalesWithEffectiveBatch)
{
    ServingSpec spec = base_spec();
    spec.micro_batches = 1;
    const auto m1 = simulate_inference(spec);
    spec.micro_batches = 4;
    const auto m4 = simulate_inference(spec);
    ASSERT_TRUE(m1.is_ok());
    ASSERT_TRUE(m4.is_ok());
    EXPECT_EQ(m4->budget.kv_cache, 4 * m1->budget.kv_cache);
}

TEST(BlockSchedule, CapacityLimitsMicroBatches)
{
    // OPT-175B All-CPU compressed fits 44 requests; 8 x 8 = 64 must be
    // rejected while 8 x 5 = 40 passes.
    ServingSpec spec;
    spec.model = model::opt_config(OptVariant::kOpt175B);
    spec.memory = mem::ConfigKind::kNvdram;
    spec.placement = PlacementKind::kAllCpu;
    spec.compress_weights = true;
    spec.batch = 8;
    spec.repeats = 1;
    spec.micro_batches = 8;
    EXPECT_EQ(simulate_inference(spec).status().code(),
              StatusCode::kCapacityExceeded);
    spec.micro_batches = 5;
    EXPECT_TRUE(simulate_inference(spec).is_ok());
}

TEST(KvOffload, FreesGpuKvBudget)
{
    ServingSpec spec = base_spec();
    spec.offload_kv_cache = true;
    const auto off = simulate_inference(spec);
    spec.offload_kv_cache = false;
    const auto on = simulate_inference(spec);
    ASSERT_TRUE(off.is_ok());
    ASSERT_TRUE(on.is_ok());
    EXPECT_LT(off->budget.kv_cache, on->budget.kv_cache);
}

TEST(KvOffload, EnablesOtherwiseImpossibleBatches)
{
    // OPT-175B compressed All-CPU caps at 44 with the cache on the GPU;
    // offloading the cache must admit far more.
    ServingSpec spec;
    spec.model = model::opt_config(OptVariant::kOpt175B);
    spec.memory = mem::ConfigKind::kDram;
    spec.placement = PlacementKind::kAllCpu;
    spec.compress_weights = true;
    spec.batch = 128;
    spec.repeats = 1;
    spec.offload_kv_cache = false;
    EXPECT_EQ(simulate_inference(spec).status().code(),
              StatusCode::kCapacityExceeded);
    spec.offload_kv_cache = true;
    const auto result = simulate_inference(spec);
    EXPECT_TRUE(result.is_ok()) << result.status().to_string();
}

TEST(KvOffload, MhaLayersCarryKvTraffic)
{
    ServingSpec spec = base_spec();
    spec.offload_kv_cache = true;
    const auto result = simulate_inference(spec);
    ASSERT_TRUE(result.is_ok());
    bool saw_read = false, saw_write = false;
    for (const auto &rec : result->records) {
        if (rec.type == model::LayerType::kMha) {
            if (rec.stage == gpu::Stage::kDecode) {
                EXPECT_GT(rec.kv_read_bytes, 0u);
                saw_read = true;
            }
            EXPECT_GT(rec.kv_write_bytes, 0u);
            saw_write = true;
            // Decode reads grow with the context.
        } else {
            EXPECT_EQ(rec.kv_read_bytes, 0u);
            EXPECT_EQ(rec.kv_write_bytes, 0u);
        }
    }
    EXPECT_TRUE(saw_read);
    EXPECT_TRUE(saw_write);
}

TEST(KvOffload, DecodeReadsGrowWithContext)
{
    ServingSpec spec = base_spec();
    spec.offload_kv_cache = true;
    const auto result = simulate_inference(spec);
    ASSERT_TRUE(result.is_ok());
    Bytes early = 0, late = 0;
    for (const auto &rec : result->records) {
        if (rec.type != model::LayerType::kMha || rec.batch_index != 1)
            continue;
        if (rec.token == 1)
            early = std::max(early, rec.kv_read_bytes);
        if (rec.token == spec.shape.output_tokens - 1)
            late = std::max(late, rec.kv_read_bytes);
    }
    EXPECT_GT(late, early);
}

TEST(KvOffload, SlowsDecodeOnNvdram)
{
    // Streaming the context every step costs latency — the tradeoff the
    // related-work KV papers attack (Sec. VI).
    ServingSpec spec = base_spec();
    spec.offload_kv_cache = false;
    const auto on_gpu = simulate_inference(spec);
    spec.offload_kv_cache = true;
    const auto offloaded = simulate_inference(spec);
    ASSERT_TRUE(on_gpu.is_ok());
    ASSERT_TRUE(offloaded.is_ok());
    EXPECT_GE(offloaded->metrics.tbt, on_gpu->metrics.tbt);
}

TEST(KvOffload, PrefillWritebackHurtsMostOnOptane)
{
    // Fig. 3b's 3.26 GB/s write ceiling: the prefill KV writeback is far
    // more painful on NVDRAM than on DRAM.
    ServingSpec spec = base_spec();
    spec.batch = 16;
    spec.offload_kv_cache = true;
    spec.memory = mem::ConfigKind::kNvdram;
    const auto nvdram = simulate_inference(spec);
    spec.memory = mem::ConfigKind::kDram;
    const auto dram = simulate_inference(spec);
    ASSERT_TRUE(nvdram.is_ok());
    ASSERT_TRUE(dram.is_ok());
    const double ttft_gap =
        nvdram->metrics.ttft / dram->metrics.ttft;
    // Without offload this config's TTFT gap is ~1.2x (h2d only); the
    // writeback at ~2-3 GB/s vs 26 GB/s must widen it clearly.
    spec.offload_kv_cache = false;
    spec.memory = mem::ConfigKind::kNvdram;
    const auto nv_no_offload = simulate_inference(spec);
    spec.memory = mem::ConfigKind::kDram;
    const auto dram_no_offload = simulate_inference(spec);
    ASSERT_TRUE(nv_no_offload.is_ok());
    ASSERT_TRUE(dram_no_offload.is_ok());
    const double baseline_gap = nv_no_offload->metrics.ttft /
                                dram_no_offload->metrics.ttft;
    EXPECT_GT(ttft_gap, baseline_gap * 1.05);
    EXPECT_GT(ttft_gap, 1.25);
}

} // namespace
} // namespace helm::runtime
