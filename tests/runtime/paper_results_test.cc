/**
 * @file
 * Integration tests pinning the paper's headline results (with
 * tolerances documented in EXPERIMENTS.md).  These are the assertions
 * that make the reproduction a reproduction.
 */
#include <gtest/gtest.h>

#include "model/opt.h"
#include "runtime/engine.h"

namespace helm::runtime {
namespace {

using model::OptVariant;
using placement::PlacementKind;

RunResult
run_175b(mem::ConfigKind memory, PlacementKind placement,
         std::uint64_t batch, bool compressed = true)
{
    ServingSpec spec;
    spec.model = model::opt_config(OptVariant::kOpt175B);
    spec.memory = memory;
    spec.placement = placement;
    spec.compress_weights = compressed;
    spec.batch = batch;
    spec.repeats = 2;
    auto result = simulate_inference(spec);
    EXPECT_TRUE(result.is_ok()) << result.status().to_string();
    return std::move(result).value();
}

TEST(PaperResults, HelmImprovesTbtAbout27Percent)
{
    // Abstract / Sec. V-B: HeLM improves TBT by ~27% on NVDRAM.
    const auto baseline =
        run_175b(mem::ConfigKind::kNvdram, PlacementKind::kBaseline, 1);
    const auto helm =
        run_175b(mem::ConfigKind::kNvdram, PlacementKind::kHelm, 1);
    const double improvement =
        1.0 - helm.metrics.tbt / baseline.metrics.tbt;
    EXPECT_GT(improvement, 0.20);
    EXPECT_LT(improvement, 0.36);
}

TEST(PaperResults, HelmImprovesTtftSimilarly)
{
    // Sec. V-B: TTFT improves by 27.20% alongside TBT's 27.44%.
    const auto baseline =
        run_175b(mem::ConfigKind::kNvdram, PlacementKind::kBaseline, 1);
    const auto helm =
        run_175b(mem::ConfigKind::kNvdram, PlacementKind::kHelm, 1);
    const double improvement =
        1.0 - helm.metrics.ttft / baseline.metrics.ttft;
    EXPECT_GT(improvement, 0.20);
    EXPECT_LT(improvement, 0.36);
}

TEST(PaperResults, HelmNvdramWithinTenPercentOfDram)
{
    // Abstract: "within 9%... of an all-DRAM system".
    const auto nvdram =
        run_175b(mem::ConfigKind::kNvdram, PlacementKind::kHelm, 1);
    const auto dram =
        run_175b(mem::ConfigKind::kDram, PlacementKind::kHelm, 1);
    const double gap = nvdram.metrics.tbt / dram.metrics.tbt - 1.0;
    EXPECT_GT(gap, 0.0);
    EXPECT_LT(gap, 0.13);
}

TEST(PaperResults, HelmMemoryModeWithinTwoPercentOfDram)
{
    // Sec. V-B: MemoryMode HeLM lands within 1.73% / 1.64% of DRAM.
    const auto mm =
        run_175b(mem::ConfigKind::kMemoryMode, PlacementKind::kHelm, 1);
    const auto dram =
        run_175b(mem::ConfigKind::kDram, PlacementKind::kHelm, 1);
    EXPECT_NEAR(mm.metrics.tbt / dram.metrics.tbt, 1.0, 0.05);
}

TEST(PaperResults, AllCpuFiveXThroughput)
{
    // Sec. V-C: baseline batch 8 -> All-CPU batch 44 nets ~5x tokens/s.
    const auto baseline =
        run_175b(mem::ConfigKind::kNvdram, PlacementKind::kBaseline, 8);
    const auto all_cpu =
        run_175b(mem::ConfigKind::kNvdram, PlacementKind::kAllCpu, 44);
    const double speedup =
        all_cpu.metrics.throughput / baseline.metrics.throughput;
    EXPECT_GT(speedup, 4.0);
    EXPECT_LT(speedup, 6.5);
}

TEST(PaperResults, AllCpuNvdramWithinFifteenPercentOfDram)
{
    // Abstract: within 6% of All-CPU DRAM; we land slightly wider (see
    // EXPERIMENTS.md) but well inside the qualitative claim.
    const auto nvdram =
        run_175b(mem::ConfigKind::kNvdram, PlacementKind::kAllCpu, 44);
    const auto dram =
        run_175b(mem::ConfigKind::kDram, PlacementKind::kAllCpu, 44);
    const double gap =
        1.0 - nvdram.metrics.throughput / dram.metrics.throughput;
    EXPECT_GT(gap, 0.0);
    EXPECT_LT(gap, 0.15);
}

TEST(PaperResults, AllCpuSameLatencyAsBaselineAtEqualBatch)
{
    // Sec. V-C: All-CPU costs ~1% TBT at batch 1/8 versus the baseline.
    const auto baseline =
        run_175b(mem::ConfigKind::kNvdram, PlacementKind::kBaseline, 8);
    const auto all_cpu =
        run_175b(mem::ConfigKind::kNvdram, PlacementKind::kAllCpu, 8);
    EXPECT_NEAR(all_cpu.metrics.tbt / baseline.metrics.tbt, 1.0, 0.05);
}

TEST(PaperResults, NvdramSlowerThanDramUncompressed)
{
    // Fig. 4: OPT-175B on NVDRAM trails an all-DRAM system.
    const auto nvdram = run_175b(mem::ConfigKind::kNvdram,
                                 PlacementKind::kBaseline, 1, false);
    const auto dram = run_175b(mem::ConfigKind::kDram,
                               PlacementKind::kBaseline, 1, false);
    const double slowdown = nvdram.metrics.tbt / dram.metrics.tbt - 1.0;
    EXPECT_GT(slowdown, 0.10);
    EXPECT_LT(slowdown, 0.45);
}

TEST(PaperResults, MemoryModeBetweenNvdramAndDramUncompressed)
{
    // Fig. 4: MemoryMode improves on NVDRAM but trails all-DRAM when
    // the model overflows the DRAM cache.
    const auto nvdram = run_175b(mem::ConfigKind::kNvdram,
                                 PlacementKind::kBaseline, 1, false);
    const auto mm = run_175b(mem::ConfigKind::kMemoryMode,
                             PlacementKind::kBaseline, 1, false);
    const auto dram = run_175b(mem::ConfigKind::kDram,
                               PlacementKind::kBaseline, 1, false);
    EXPECT_LT(mm.metrics.tbt, nvdram.metrics.tbt);
    EXPECT_GT(mm.metrics.tbt, dram.metrics.tbt);
}

TEST(PaperResults, CompressionReducesTransferTime)
{
    // Fig. 6: compression reduces weight transfer time by ~72% on
    // NVDIMM while inflating compute 2.5x-13x.
    const auto plain = run_175b(mem::ConfigKind::kNvdram,
                                PlacementKind::kBaseline, 1, false);
    const auto compressed = run_175b(mem::ConfigKind::kNvdram,
                                     PlacementKind::kBaseline, 1, true);
    const auto ps =
        summarize_overlap(plain.records, gpu::Stage::kDecode, 1);
    const auto cs =
        summarize_overlap(compressed.records, gpu::Stage::kDecode, 1);
    const double transfer_cut = 1.0 - cs.avg_transfer / ps.avg_transfer;
    EXPECT_NEAR(transfer_cut, 0.72, 0.06);
    const double compute_inflation = cs.avg_compute / ps.avg_compute;
    EXPECT_GT(compute_inflation, 2.5);
    EXPECT_LT(compute_inflation, 13.0);
}

TEST(PaperResults, Table4BaselineDecodeRatios)
{
    // Table IV, NVDRAM(c), batch 1, decode: 0.36 and 1.85.
    const auto result =
        run_175b(mem::ConfigKind::kNvdram, PlacementKind::kBaseline, 1);
    const auto s =
        summarize_overlap(result.records, gpu::Stage::kDecode, 1);
    EXPECT_NEAR(s.mha_compute_over_ffn_load(), 0.36, 0.08);
    EXPECT_NEAR(s.ffn_compute_over_mha_load(), 1.85, 0.30);
}

TEST(PaperResults, Table4HelmDecodeRatios)
{
    // Table IV, HeLM NVDRAM(c), batch 1, decode: 0.71 and 1.40.
    const auto result =
        run_175b(mem::ConfigKind::kNvdram, PlacementKind::kHelm, 1);
    const auto s =
        summarize_overlap(result.records, gpu::Stage::kDecode, 1);
    EXPECT_NEAR(s.mha_compute_over_ffn_load(), 0.71, 0.15);
    EXPECT_NEAR(s.ffn_compute_over_mha_load(), 1.40, 0.25);
}

TEST(PaperResults, Table4CxlOrdering)
{
    // Table IV: CXL-FPGA is far more memory-bound than NVDRAM; CXL-ASIC
    // far less.
    const auto nv =
        run_175b(mem::ConfigKind::kNvdram, PlacementKind::kBaseline, 1);
    const auto fpga =
        run_175b(mem::ConfigKind::kCxlFpga, PlacementKind::kBaseline, 1);
    const auto asic =
        run_175b(mem::ConfigKind::kCxlAsic, PlacementKind::kBaseline, 1);
    const double r_nv =
        summarize_overlap(nv.records, gpu::Stage::kDecode, 1)
            .mha_compute_over_ffn_load();
    const double r_fpga =
        summarize_overlap(fpga.records, gpu::Stage::kDecode, 1)
            .mha_compute_over_ffn_load();
    const double r_asic =
        summarize_overlap(asic.records, gpu::Stage::kDecode, 1)
            .mha_compute_over_ffn_load();
    EXPECT_LT(r_fpga, r_nv);
    EXPECT_GT(r_asic, r_nv);
    // Table IV absolute anchors: 0.1 (FPGA) and 0.55 (ASIC).
    EXPECT_NEAR(r_fpga, 0.10, 0.05);
    EXPECT_NEAR(r_asic, 0.55, 0.15);
}

TEST(PaperResults, CxlAsicOnlyConfigWithHelmPrefillCrossover)
{
    // Sec. V-D: "CXL-ASIC ... the only configuration that achieves FFN
    // load latency lower than MHA compute latency with HeLM."
    for (auto kind : {mem::ConfigKind::kNvdram, mem::ConfigKind::kCxlFpga,
                      mem::ConfigKind::kCxlAsic}) {
        const auto result = run_175b(kind, PlacementKind::kHelm, 1);
        const auto s =
            summarize_overlap(result.records, gpu::Stage::kPrefill, 1);
        const double ratio = s.mha_compute_over_ffn_load();
        if (kind == mem::ConfigKind::kCxlAsic)
            EXPECT_GT(ratio, 1.0);
        else
            EXPECT_LT(ratio, 1.0);
    }
}

TEST(PaperResults, HelmHelpsOnCxlToo)
{
    // Fig. 13a: HeLM improves TTFT/TBT by ~27% (FPGA) and ~21% (ASIC).
    for (auto kind :
         {mem::ConfigKind::kCxlFpga, mem::ConfigKind::kCxlAsic}) {
        const auto baseline =
            run_175b(kind, PlacementKind::kBaseline, 1);
        const auto helm = run_175b(kind, PlacementKind::kHelm, 1);
        const double improvement =
            1.0 - helm.metrics.tbt / baseline.metrics.tbt;
        EXPECT_GT(improvement, 0.10) << config_kind_name(kind);
        EXPECT_LT(improvement, 0.40) << config_kind_name(kind);
    }
}

TEST(PaperResults, AllCpuSpeedupHoldsAcrossCxl)
{
    // Sec. V-D: 4.74x (FPGA) and 5.04x (ASIC) going baseline b8 ->
    // All-CPU b44.
    for (auto kind :
         {mem::ConfigKind::kCxlFpga, mem::ConfigKind::kCxlAsic}) {
        const auto baseline =
            run_175b(kind, PlacementKind::kBaseline, 8);
        const auto all_cpu = run_175b(kind, PlacementKind::kAllCpu, 44);
        const double speedup =
            all_cpu.metrics.throughput / baseline.metrics.throughput;
        EXPECT_GT(speedup, 3.8) << config_kind_name(kind);
        EXPECT_LT(speedup, 6.5) << config_kind_name(kind);
    }
}

TEST(PaperResults, Opt30bNvdramSlowdownMatchesFig4)
{
    // Fig. 4: OPT-30B TBT rises ~30% on NVDRAM vs DRAM (batch 1).
    ServingSpec spec;
    spec.model = model::opt_config(OptVariant::kOpt30B);
    spec.batch = 1;
    spec.repeats = 2;
    spec.memory = mem::ConfigKind::kNvdram;
    const auto nvdram = simulate_inference(spec);
    spec.memory = mem::ConfigKind::kDram;
    const auto dram = simulate_inference(spec);
    ASSERT_TRUE(nvdram.is_ok());
    ASSERT_TRUE(dram.is_ok());
    const double slowdown =
        nvdram->metrics.tbt / dram->metrics.tbt - 1.0;
    EXPECT_GT(slowdown, 0.12);
    EXPECT_LT(slowdown, 0.40);
}

TEST(PaperResults, FsdaxBeatsSsdByAThird)
{
    // Fig. 4: FSDAX improves TTFT/TBT/throughput by ~33% over SSD for
    // OPT-175B.
    const auto ssd = run_175b(mem::ConfigKind::kSsd,
                              PlacementKind::kBaseline, 1, false);
    const auto fsdax = run_175b(mem::ConfigKind::kFsdax,
                                PlacementKind::kBaseline, 1, false);
    const double improvement =
        1.0 - fsdax.metrics.tbt / ssd.metrics.tbt;
    EXPECT_GT(improvement, 0.20);
    EXPECT_LT(improvement, 0.45);
}

TEST(PaperResults, StorageConfigsSlowestOverall)
{
    // Fig. 4: SSD and FSDAX trail every host-memory configuration.
    const auto ssd = run_175b(mem::ConfigKind::kSsd,
                              PlacementKind::kBaseline, 1, false);
    const auto fsdax = run_175b(mem::ConfigKind::kFsdax,
                                PlacementKind::kBaseline, 1, false);
    const auto nvdram = run_175b(mem::ConfigKind::kNvdram,
                                 PlacementKind::kBaseline, 1, false);
    EXPECT_GT(ssd.metrics.tbt, fsdax.metrics.tbt);
    EXPECT_GT(fsdax.metrics.tbt, nvdram.metrics.tbt);
}

} // namespace
} // namespace helm::runtime
