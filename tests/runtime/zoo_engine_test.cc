/**
 * @file
 * Engine tests for the backend-zoo seam: the default spec must stay
 * byte-identical to the pre-zoo path (no NDP steps, identical metrics
 * through the NVDRAM registry entry), near-data decode offload must
 * engage only when asked for, and the compute-site validation must
 * fail fast on non-NDP devices.
 */
#include <gtest/gtest.h>

#include "model/opt.h"
#include "runtime/engine.h"

namespace helm::runtime {
namespace {

using model::OptVariant;

ServingSpec
base_spec()
{
    ServingSpec spec;
    spec.model = model::opt_config(OptVariant::kOpt6_7B);
    spec.memory = mem::ConfigKind::kNvdram;
    spec.placement = placement::PlacementKind::kAllCpu;
    spec.compress_weights = true;
    spec.batch = 4;
    spec.repeats = 2;
    spec.keep_records = false;
    return spec;
}

TEST(ZooEngine, DefaultSpecSchedulesNoNdpWork)
{
    // The gating contract: a spec that never mentions the zoo must not
    // touch the NDP resource at all — zero offloaded steps, zero bytes
    // kept off the h2d fabric.
    const auto result = simulate_inference(base_spec());
    ASSERT_TRUE(result.is_ok());
    EXPECT_EQ(result->ndp_steps, 0u);
    EXPECT_EQ(result->ndp_bytes, 0u);
}

TEST(ZooEngine, NvdramRegistryEntryMatchesLegacyConfigExactly)
{
    // The registry's NVDRAM entry and the legacy ConfigKind path must
    // produce the same simulation to the last bit — this is the anchor
    // that keeps the zoo honest against the paper's tables.
    const ServingSpec legacy = base_spec();
    ServingSpec zoo = base_spec();
    zoo.zoo_device = "NVDRAM";

    const auto a = simulate_inference(legacy);
    const auto b = simulate_inference(zoo);
    ASSERT_TRUE(a.is_ok());
    ASSERT_TRUE(b.is_ok());
    EXPECT_EQ(a->metrics.ttft, b->metrics.ttft);
    EXPECT_EQ(a->metrics.tbt, b->metrics.tbt);
    EXPECT_EQ(a->metrics.throughput, b->metrics.throughput);
    EXPECT_EQ(a->model_bytes, b->model_bytes);
    EXPECT_EQ(b->ndp_steps, 0u);
}

TEST(ZooEngine, NdpAutoOffloadsDecodeAndWins)
{
    ServingSpec gpu_path = base_spec();
    gpu_path.zoo_device = "NDP-DIMM";

    ServingSpec ndp_path = gpu_path;
    ndp_path.compute_site = placement::ComputeSiteMode::kNdpAuto;

    const auto gpu_run = simulate_inference(gpu_path);
    const auto ndp_run = simulate_inference(ndp_path);
    ASSERT_TRUE(gpu_run.is_ok());
    ASSERT_TRUE(ndp_run.is_ok());

    // All-CPU decode is h2d-bound, so the auto policy must offload the
    // FFN layers and beat the GPU path on decode latency.
    EXPECT_EQ(gpu_run->ndp_steps, 0u);
    EXPECT_GT(ndp_run->ndp_steps, 0u);
    EXPECT_GT(ndp_run->ndp_bytes, 0u);
    EXPECT_LT(ndp_run->metrics.tbt, gpu_run->metrics.tbt);
}

TEST(ZooEngine, NdpOffloadIsDecodeOnly)
{
    // Prefill GEMMs are compute-bound and would crawl on the GEMV
    // units, so only decode steps offload: the bytes kept off the h2d
    // fabric must be bounded by decode-step count x FFN host bytes, and
    // TTFT (prefill-dominated) must not regress versus the GPU path.
    ServingSpec gpu_path = base_spec();
    gpu_path.zoo_device = "NDP-DIMM";
    ServingSpec ndp_path = gpu_path;
    ndp_path.compute_site = placement::ComputeSiteMode::kNdpAuto;

    const auto gpu_run = simulate_inference(gpu_path);
    const auto ndp_run = simulate_inference(ndp_path);
    ASSERT_TRUE(gpu_run.is_ok());
    ASSERT_TRUE(ndp_run.is_ok());
    EXPECT_LE(ndp_run->metrics.ttft,
              gpu_run->metrics.ttft * (1.0 + 1e-9));
}

TEST(ZooEngine, ComputeSiteRequiresZooDevice)
{
    ServingSpec spec = base_spec();
    spec.compute_site = placement::ComputeSiteMode::kNdpAuto;
    const Status status = spec.validate();
    ASSERT_FALSE(status.is_ok());
    EXPECT_NE(status.to_string().find("NDP-capable"), std::string::npos);
}

TEST(ZooEngine, ComputeSiteRejectsDevicesWithoutNdpUnits)
{
    ServingSpec spec = base_spec();
    spec.zoo_device = "DRAM";
    spec.compute_site = placement::ComputeSiteMode::kNdpAuto;
    const Status status = spec.validate();
    ASSERT_FALSE(status.is_ok());
    // The diagnostic names the offending pair.
    EXPECT_NE(status.to_string().find("auto"), std::string::npos);
    EXPECT_NE(status.to_string().find("DRAM"), std::string::npos);
}

TEST(ZooEngine, UnknownZooDeviceFailsFast)
{
    ServingSpec spec = base_spec();
    spec.zoo_device = "mercury-delay-line";
    const Status status = spec.validate();
    ASSERT_FALSE(status.is_ok());
    EXPECT_NE(status.to_string().find("mercury-delay-line"),
              std::string::npos);
}

TEST(ZooEngine, ZooDeviceConflictsWithCustomCxlOverride)
{
    ServingSpec spec = base_spec();
    spec.zoo_device = "CXL-ASIC";
    spec.custom_cxl_bandwidth = Bandwidth::gb_per_s(32.0);
    EXPECT_FALSE(spec.validate().is_ok());
}

TEST(ZooEngine, StorageZooDevicePairsWithDiskPolicy)
{
    // SSD through the zoo composes a DRAM host + storage tier, so the
    // default disk_offload policy applies and the run places weight
    // bytes on disk — same shape as the legacy kSsd config.
    ServingSpec spec = base_spec();
    spec.placement = placement::PlacementKind::kBaseline;
    spec.zoo_device = "SSD";
    const auto result = simulate_inference(spec);
    ASSERT_TRUE(result.is_ok());
    EXPECT_GT(result->placement.tier_total(placement::Tier::kDisk), 0u);
}

} // namespace
} // namespace helm::runtime
