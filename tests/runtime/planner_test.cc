/**
 * @file
 * Unit tests for GPU budgeting and max-batch planning, including the
 * paper's 8 -> 44 batch-size result.
 */
#include <gtest/gtest.h>

#include "model/opt.h"
#include "placement/baseline.h"
#include "placement/policy.h"
#include "runtime/planner.h"

namespace helm::runtime {
namespace {

using model::DataType;
using model::OptVariant;

class PlannerTest : public ::testing::Test
{
  protected:
    model::TransformerConfig config_ =
        model::opt_config(OptVariant::kOpt175B);
    gpu::GpuSpec gpu_ = gpu::GpuSpec::a100_40gb();
    model::SequenceShape shape_; // paper default: 128 in / 21 out
};

TEST_F(PlannerTest, MaxLayerIsTheFfn)
{
    const auto layers = model::build_layers(config_, DataType::kFp16);
    const Bytes max_fp16 = max_layer_fp16_bytes(layers);
    // OPT-175B FFN layer: 2 x 12288 x 49152 FP16 + metadata ~ 2.25 GiB.
    EXPECT_NEAR(static_cast<double>(max_fp16) /
                    static_cast<double>(kGiB),
                2.25, 0.01);
}

TEST_F(PlannerTest, BudgetComponentsPositiveAndSumCorrectly)
{
    const auto layers = model::build_layers(config_, DataType::kFp16);
    const GpuBudget budget = compute_gpu_budget(
        gpu_, config_, layers, 10 * kGiB, shape_, 4, false);
    EXPECT_EQ(budget.hbm_capacity, 40 * kGB);
    EXPECT_GT(budget.base_reserve, 0u);
    EXPECT_GT(budget.staging, 0u);
    EXPECT_EQ(budget.gpu_weights, 10 * kGiB);
    EXPECT_GT(budget.kv_cache, 0u);
    EXPECT_EQ(budget.used(),
              budget.base_reserve + budget.staging + budget.gpu_weights +
                  budget.kv_cache + budget.hidden +
                  budget.attention_scratch);
}

TEST_F(PlannerTest, CompressedStagingLargerThanUncompressed)
{
    const auto fp16 = model::build_layers(config_, DataType::kFp16);
    const auto int4 =
        model::build_layers(config_, DataType::kInt4Grouped);
    const GpuBudget plain =
        compute_gpu_budget(gpu_, config_, fp16, 0, shape_, 1, false);
    const GpuBudget compressed =
        compute_gpu_budget(gpu_, config_, int4, 0, shape_, 1, true);
    EXPECT_GT(compressed.staging, plain.staging);
}

TEST_F(PlannerTest, PaperMaxBatchBaselineUncompressedIs8)
{
    // Sec. IV-B / Fig. 4: max permissible batch for OPT-175B is 8.
    const auto layers = model::build_layers(config_, DataType::kFp16);
    const auto map = placement::BaselinePlacement().place(
        layers, placement::Policy::host_offload());
    const Bytes gpu_weights =
        map.tier_total(placement::Tier::kGpu);
    EXPECT_EQ(max_batch(gpu_, config_, layers, gpu_weights, shape_,
                        false),
              8u);
}

TEST_F(PlannerTest, PaperMaxBatchAllCpuCompressedIs44)
{
    // Sec. V-C: All-CPU raises the maximum batch size from 8 to 44.
    const auto layers =
        model::build_layers(config_, DataType::kInt4Grouped);
    EXPECT_EQ(max_batch(gpu_, config_, layers, 0, shape_, true), 44u);
}

TEST_F(PlannerTest, MaxBatchMonotoneInGpuWeights)
{
    const auto layers =
        model::build_layers(config_, DataType::kInt4Grouped);
    std::uint64_t prev = max_batch(gpu_, config_, layers, 0, shape_,
                                   true);
    for (Bytes w = 4 * kGiB; w <= 24 * kGiB; w += 4 * kGiB) {
        const std::uint64_t mb =
            max_batch(gpu_, config_, layers, w, shape_, true);
        EXPECT_LE(mb, prev);
        prev = mb;
    }
}

TEST_F(PlannerTest, InfeasibleWhenWeightsAloneOverflow)
{
    const auto layers = model::build_layers(config_, DataType::kFp16);
    EXPECT_EQ(max_batch(gpu_, config_, layers, 100 * kGiB, shape_,
                        false),
              0u);
}

TEST_F(PlannerTest, GpuWeightBudgetShrinksWithBatch)
{
    const auto layers =
        model::build_layers(config_, DataType::kInt4Grouped);
    const Bytes b1 =
        gpu_weight_budget(gpu_, config_, layers, shape_, 1, true);
    const Bytes b8 =
        gpu_weight_budget(gpu_, config_, layers, shape_, 8, true);
    EXPECT_GT(b1, b8);
}

TEST_F(PlannerTest, SmallModelAllowsHugeBatches)
{
    const auto small = model::opt_config(OptVariant::kOpt1_3B);
    const auto layers = model::build_layers(small, DataType::kFp16);
    EXPECT_GT(max_batch(gpu_, small, layers, 0, shape_, false), 256u);
}

TEST_F(PlannerTest, MaxBatchRespectsLimit)
{
    const auto small = model::opt_config(OptVariant::kOpt125M);
    const auto layers = model::build_layers(small, DataType::kFp16);
    EXPECT_EQ(max_batch(gpu_, small, layers, 0, shape_, false, 64), 64u);
}

TEST_F(PlannerTest, AttentionScratchScalesWithBatchAndPrompt)
{
    const Bytes b1 = attention_scratch_bytes(config_, shape_, 1);
    const Bytes b4 = attention_scratch_bytes(config_, shape_, 4);
    EXPECT_EQ(b4, 4 * b1);
    model::SequenceShape longer = shape_;
    longer.prompt_tokens *= 2;
    EXPECT_EQ(attention_scratch_bytes(config_, longer, 1), 4 * b1);
}

TEST_F(PlannerTest, FreeBytesZeroWhenOverBudget)
{
    const auto layers = model::build_layers(config_, DataType::kFp16);
    const GpuBudget over = compute_gpu_budget(
        gpu_, config_, layers, 200 * kGiB, shape_, 1, false);
    EXPECT_FALSE(over.fits());
    EXPECT_EQ(over.free_bytes(), 0u);
}

} // namespace
} // namespace helm::runtime
