/**
 * @file
 * Tests for the runtime telemetry feeders: the time-attribution
 * decomposition's sum-to-wall invariant, the run/serving registry
 * metrics, and the PR's acceptance artifact triple — one serve run
 * producing a Prometheus dump, a JSON snapshot whose attribution sums
 * to the wall time within 0.1%, and a Chrome trace with host-port
 * utilization counter rows, all from the same registry.
 */
#include <gtest/gtest.h>

#include "kvcache/kvcache.h"
#include "model/opt.h"
#include "runtime/instrument.h"
#include "runtime/trace.h"
#include "telemetry/export.h"
#include "workload/arrival.h"

namespace helm::runtime {
namespace {

using model::OptVariant;

ServingSpec
small_spec()
{
    ServingSpec spec;
    spec.model = model::opt_config(OptVariant::kOpt1_3B);
    spec.memory = mem::ConfigKind::kNvdram;
    spec.batch = 2;
    spec.repeats = 1;
    spec.shape.output_tokens = 3;
    return spec;
}

TEST(AttributeRecords, SumsToTotalTimeExactly)
{
    const ServingSpec spec = small_spec();
    const auto result = simulate_inference(spec);
    ASSERT_TRUE(result.is_ok());
    ASSERT_FALSE(result->records.empty());

    const auto attribution =
        attribute_records(result->records, spec.gpu.layer_overhead,
                          result->metrics.total_time);
    EXPECT_DOUBLE_EQ(attribution.wall(), result->metrics.total_time);
    // The acceptance bound is 0.1%; the decomposition is exact by
    // construction, so hold it to float noise instead.
    EXPECT_NEAR(attribution.attributed_total(), attribution.wall(),
                1e-6 * attribution.wall());
}

TEST(AttributeRecords, SeparatesLayerTypesAndPhases)
{
    const ServingSpec spec = small_spec();
    const auto result = simulate_inference(spec);
    ASSERT_TRUE(result.is_ok());

    const auto attribution =
        attribute_records(result->records, spec.gpu.layer_overhead,
                          result->metrics.total_time);
    ASSERT_TRUE(attribution.buckets().count("mha"));
    ASSERT_TRUE(attribution.buckets().count("ffn"));
    EXPECT_GT(attribution.buckets().at("mha").compute, 0.0);
    EXPECT_GT(attribution.buckets().at("ffn").compute, 0.0);
    // An out-of-core NVDIMM run must expose some transfer time.
    Seconds transfer = 0.0;
    for (const auto &[layer, bucket] : attribution.buckets())
        transfer += bucket.transfer;
    EXPECT_GT(transfer, 0.0);
}

TEST(RecordRun, PopulatesRegistrySections)
{
    const ServingSpec spec = small_spec();
    const auto result = simulate_inference(spec);
    ASSERT_TRUE(result.is_ok());

    telemetry::MetricsRegistry registry;
    record_run(registry, spec, *result, "run");

    EXPECT_DOUBLE_EQ(registry.value_or("helm_run_ttft_seconds"),
                     result->metrics.ttft);
    EXPECT_DOUBLE_EQ(registry.value_or("helm_run_tbt_seconds"),
                     result->metrics.tbt);
    const auto info = registry.label_sets("helm_run_info");
    ASSERT_EQ(info.size(), 1u);
    EXPECT_EQ(info.front().at("command"), "run");
    EXPECT_EQ(info.front().at("model"), spec.model.name);
    EXPECT_EQ(info.front().at("memory"), "NVDRAM");

    const double gpu_pct = registry.value_or(
        "helm_placement_weight_percent", {{"tier", "gpu"}});
    const double cpu_pct = registry.value_or(
        "helm_placement_weight_percent", {{"tier", "cpu"}});
    const double disk_pct = registry.value_or(
        "helm_placement_weight_percent", {{"tier", "disk"}});
    EXPECT_NEAR(gpu_pct + cpu_pct + disk_pct, 100.0, 0.1);

    // Attribution gauges ride along and sum to the run's wall time.
    EXPECT_TRUE(registry.has("helm_attribution_seconds"));
    EXPECT_NEAR(registry.value_or("helm_wall_seconds"),
                result->metrics.total_time,
                1e-9 * result->metrics.total_time);

    // Weights flowed from host RAM on every out-of-core step.
    EXPECT_GT(registry.value_or("helm_engine_transfer_bytes_total",
                                {{"device", "host"}}),
              0.0);
}

TEST(RecordRun, KvLookupCountersSplitHitAndMiss)
{
    ServingSpec spec = small_spec();
    spec.kv_cache = kvcache::KvCacheConfig::tiered(0);
    const auto result = simulate_inference(spec);
    ASSERT_TRUE(result.is_ok());

    telemetry::MetricsRegistry registry;
    record_run(registry, spec, *result, "run");

    ASSERT_TRUE(registry.has("helm_kv_lookups_total"));
    double lookups = 0.0;
    for (const auto &labels :
         registry.label_sets("helm_kv_lookups_total")) {
        EXPECT_TRUE(labels.at("result") == "hit" ||
                    labels.at("result") == "miss");
        lookups += registry.value_or("helm_kv_lookups_total", labels);
    }
    EXPECT_GT(lookups, 0.0);
    // Tier ordering survives via the index gauge.
    EXPECT_TRUE(registry.has("helm_kv_tier_index"));
}

/** One serve run must yield the full artifact triple from one registry:
 *  (a) a Prometheus dump, (b) a JSON snapshot whose attribution sums to
 *  the wall time within 0.1%, (c) a Chrome trace with host-port
 *  utilization counter rows. */
TEST(ServeTelemetry, ArtifactTripleFromOneRegistry)
{
    ServingSpec base = small_spec();
    base.batch = 1;

    workload::ArrivalSpec arrivals;
    arrivals.rate = 2.0;
    arrivals.duration = 4.0;
    arrivals.prompt_tokens = base.shape.prompt_tokens;
    arrivals.output_tokens = base.shape.output_tokens;
    arrivals.seed = 7;
    const auto stream = workload::generate_arrivals(arrivals);
    ASSERT_TRUE(stream.is_ok());

    auto server = Server::create(base);
    ASSERT_TRUE(server.is_ok()) << server.status().to_string();
    server->enable_telemetry(/*collect_records=*/true);
    ASSERT_TRUE(server->submit(*stream).is_ok());
    const auto report = server->run();
    ASSERT_TRUE(report.is_ok()) << report.status().to_string();
    ASSERT_GT(report->completed, 0u);

    // The accumulated attribution closes exactly on the makespan.
    const telemetry::TimeAttribution &attribution = server->attribution();
    EXPECT_NEAR(attribution.wall(), report->makespan,
                1e-9 * report->makespan);
    EXPECT_NEAR(attribution.attributed_total(), attribution.wall(),
                1e-3 * attribution.wall()); // acceptance bound: 0.1%

    telemetry::MetricsRegistry registry;
    record_serving(registry, base, server->effective_max_batch(),
                   server->kv_request_slots(), *report, "serve");
    attribution.record(registry);

    // (a) Prometheus text exposition.
    const std::string prom = telemetry::prometheus_text(registry);
    EXPECT_NE(prom.find("# TYPE helm_serving_ttft_seconds histogram"),
              std::string::npos);
    EXPECT_NE(prom.find("helm_attribution_seconds"), std::string::npos);
    EXPECT_NE(prom.find("helm_wall_seconds"), std::string::npos);

    // (b) JSON snapshot whose attribution sums to the wall time.
    const std::string json = telemetry::json_snapshot(registry);
    EXPECT_NE(json.find("\"schema\":\"helm-metrics-v1\""),
              std::string::npos);
    EXPECT_NE(json.find("helm_attribution_idle_seconds"),
              std::string::npos);
    const double wall = registry.value_or("helm_wall_seconds");
    double attributed = registry.value_or("helm_attribution_idle_seconds");
    for (const auto &labels :
         registry.label_sets("helm_attribution_seconds"))
        attributed += registry.value_or("helm_attribution_seconds", labels);
    EXPECT_NEAR(attributed, wall, 1e-3 * wall);

    // (c) Chrome trace with host-port utilization counter rows, scaled
    // by the same fabric rate a metrics consumer would read.
    ASSERT_FALSE(server->collected_records().empty());
    ASSERT_GT(server->h2d_rate().raw(), 0.0);
    TraceCounterOptions counters;
    counters.host_port_rate_bytes_per_s = server->h2d_rate().raw();
    const std::string trace =
        chrome_trace_json(server->collected_records(), counters);
    EXPECT_NE(trace.find("\"ph\":\"C\""), std::string::npos);
    EXPECT_NE(trace.find("host-port utilization"), std::string::npos);
}

TEST(RecordServing, QuantileGaugesMatchReportPercentiles)
{
    ServingSpec base = small_spec();
    base.batch = 1;

    workload::ArrivalSpec arrivals;
    arrivals.rate = 2.0;
    arrivals.duration = 4.0;
    arrivals.prompt_tokens = base.shape.prompt_tokens;
    arrivals.output_tokens = base.shape.output_tokens;
    const auto stream = workload::generate_arrivals(arrivals);
    ASSERT_TRUE(stream.is_ok());

    auto server = Server::create(base);
    ASSERT_TRUE(server.is_ok());
    ASSERT_TRUE(server->submit(*stream).is_ok());
    const auto report = server->run();
    ASSERT_TRUE(report.is_ok());

    telemetry::MetricsRegistry registry;
    record_serving(registry, base, server->effective_max_batch(),
                   server->kv_request_slots(), *report, "serve");

    const std::pair<const char *, double> quantiles[] = {
        {"0.50", 50.0}, {"0.90", 90.0}, {"0.95", 95.0}, {"0.99", 99.0}};
    for (const auto &[label, percent] : quantiles) {
        EXPECT_DOUBLE_EQ(
            registry.value_or("helm_serving_ttft_quantile_seconds",
                              {{"quantile", label}}),
            report->ttft_percentile(percent));
        EXPECT_DOUBLE_EQ(
            registry.value_or("helm_serving_tbt_quantile_seconds",
                              {{"quantile", label}}),
            report->tbt_percentile(percent));
    }
    EXPECT_DOUBLE_EQ(registry.value_or("helm_serving_requests_total",
                                       {{"outcome", "completed"}}),
                     static_cast<double>(report->completed));
    EXPECT_EQ(registry
                  .histogram("helm_serving_ttft_seconds", {},
                             telemetry::default_latency_buckets())
                  .count(),
              report->completed);
}

TEST(RecordServing, SchedulerFamiliesGatedOnFcfs)
{
    ServingSpec base = small_spec();
    base.batch = 1;

    std::vector<workload::TimedRequest> stream;
    const auto add = [&stream](double at, std::uint64_t prompt,
                               std::uint64_t output,
                               std::uint64_t tenant, double deadline) {
        workload::TimedRequest timed;
        timed.request = workload::Request{
            static_cast<std::uint64_t>(stream.size()), prompt, output,
            tenant};
        timed.arrival = at;
        timed.deadline = deadline;
        stream.push_back(timed);
    };
    add(0.0, 256, 64, 0, 1000.0);
    add(0.0, 256, 64, 0, 1000.0);
    add(0.1, 256, 64, 0, 1000.0);
    add(5.0, 64, 8, 1, 9.0);

    ServingConfig edf;
    edf.scheduler = SchedulerKind::kEdf;
    edf.auto_max_batch = false;
    edf.max_batch = 2;
    edf.tenants = 2;
    auto server = Server::create(base, edf);
    ASSERT_TRUE(server.is_ok()) << server.status().to_string();
    ASSERT_TRUE(server->submit(stream).is_ok());
    const auto report = server->serve();
    ASSERT_TRUE(report.is_ok());
    ASSERT_GE(report->preemptions, 1u);

    telemetry::MetricsRegistry registry;
    record_serving(registry, base, server->effective_max_batch(),
                   server->kv_request_slots(), *report, "serve");
    EXPECT_DOUBLE_EQ(registry.value_or("helm_serving_scheduler_info",
                                       {{"scheduler", "edf"}}),
                     1.0);
    EXPECT_DOUBLE_EQ(registry.value_or("helm_serving_preemptions_total"),
                     static_cast<double>(report->preemptions));
    EXPECT_DOUBLE_EQ(
        registry.value_or("helm_serving_kv_swap_bytes_total",
                          {{"direction", "demote"}}),
        static_cast<double>(report->kv_demoted_bytes));
    EXPECT_DOUBLE_EQ(
        registry.value_or("helm_serving_kv_swap_bytes_total",
                          {{"direction", "promote"}}),
        static_cast<double>(report->kv_promoted_bytes));
    EXPECT_DOUBLE_EQ(
        registry.value_or("helm_serving_tenant_tokens_total",
                          {{"tenant", "1"}}),
        static_cast<double>(report->tenants[1].tokens));

    // The fcfs report must leave every scheduler family out of the
    // registry — that is the byte-identity gate for serve output.
    auto fcfs = Server::create(base);
    ASSERT_TRUE(fcfs.is_ok());
    ASSERT_TRUE(fcfs->submit(workload::Request{0, 128, 21}, 0.0).is_ok());
    const auto fcfs_report = fcfs->run();
    ASSERT_TRUE(fcfs_report.is_ok());
    telemetry::MetricsRegistry fcfs_registry;
    record_serving(fcfs_registry, base, fcfs->effective_max_batch(),
                   fcfs->kv_request_slots(), *fcfs_report, "serve");
    for (const char *name :
         {"helm_serving_scheduler_info", "helm_serving_iterations_total",
          "helm_serving_preemptions_total",
          "helm_serving_kv_swap_bytes_total",
          "helm_serving_jain_fairness",
          "helm_serving_tenant_tokens_total"}) {
        EXPECT_FALSE(fcfs_registry.has(name)) << name;
    }
}

TEST(ServingReportPercentiles, TbtPercentileIsMonotone)
{
    ServingSpec base = small_spec();
    base.batch = 1;

    workload::ArrivalSpec arrivals;
    arrivals.rate = 3.0;
    arrivals.duration = 4.0;
    arrivals.prompt_tokens = base.shape.prompt_tokens;
    arrivals.output_tokens = base.shape.output_tokens;
    arrivals.variable_lengths = true;
    const auto stream = workload::generate_arrivals(arrivals);
    ASSERT_TRUE(stream.is_ok());

    auto server = Server::create(base);
    ASSERT_TRUE(server.is_ok());
    ASSERT_TRUE(server->submit(*stream).is_ok());
    const auto report = server->run();
    ASSERT_TRUE(report.is_ok());
    ASSERT_GT(report->completed, 1u);

    EXPECT_GT(report->tbt_percentile(50.0), 0.0);
    EXPECT_LE(report->tbt_percentile(50.0), report->tbt_percentile(95.0));
    EXPECT_LE(report->tbt_percentile(95.0), report->tbt_percentile(99.0));
}

TEST(ServerTelemetry, DoesNotPerturbTheReport)
{
    ServingSpec base = small_spec();
    base.batch = 1;

    workload::ArrivalSpec arrivals;
    arrivals.rate = 2.0;
    arrivals.duration = 4.0;
    arrivals.prompt_tokens = base.shape.prompt_tokens;
    arrivals.output_tokens = base.shape.output_tokens;
    const auto stream = workload::generate_arrivals(arrivals);
    ASSERT_TRUE(stream.is_ok());

    auto plain = Server::create(base);
    auto instrumented = Server::create(base);
    ASSERT_TRUE(plain.is_ok());
    ASSERT_TRUE(instrumented.is_ok());
    instrumented->enable_telemetry(true);
    ASSERT_TRUE(plain->submit(*stream).is_ok());
    ASSERT_TRUE(instrumented->submit(*stream).is_ok());
    const auto a = plain->run();
    const auto b = instrumented->run();
    ASSERT_TRUE(a.is_ok());
    ASSERT_TRUE(b.is_ok());

    EXPECT_EQ(a->completed, b->completed);
    EXPECT_EQ(a->batches_formed, b->batches_formed);
    EXPECT_DOUBLE_EQ(a->makespan, b->makespan);
    EXPECT_DOUBLE_EQ(a->throughput, b->throughput);
    ASSERT_EQ(a->requests.size(), b->requests.size());
    for (std::size_t i = 0; i < a->requests.size(); ++i) {
        EXPECT_DOUBLE_EQ(a->requests[i].ttft, b->requests[i].ttft);
        EXPECT_DOUBLE_EQ(a->requests[i].e2e_latency,
                         b->requests[i].e2e_latency);
    }
}

} // namespace
} // namespace helm::runtime
