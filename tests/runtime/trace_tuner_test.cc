/**
 * @file
 * Unit tests for Chrome-trace export and the QoS auto-tuner.
 */
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "model/opt.h"
#include "runtime/trace.h"
#include "runtime/tuner.h"

namespace helm::runtime {
namespace {

using model::OptVariant;

RunResult
small_run()
{
    ServingSpec spec;
    spec.model = model::opt_config(OptVariant::kOpt1_3B);
    spec.memory = mem::ConfigKind::kNvdram;
    spec.batch = 2;
    spec.repeats = 1;
    spec.shape.output_tokens = 3;
    auto result = simulate_inference(spec);
    EXPECT_TRUE(result.is_ok());
    return std::move(result).value();
}

TEST(Trace, JsonShapeAndContent)
{
    const auto result = small_run();
    const std::string json = chrome_trace_json(result.records);
    EXPECT_EQ(json.front(), '{');
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("GPU compute"), std::string::npos);
    EXPECT_NE(json.find("h2d transfers"), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(json.find("mha"), std::string::npos);
    EXPECT_NE(json.find("ffn"), std::string::npos);
    // One compute event per record at minimum.
    std::size_t events = 0, pos = 0;
    while ((pos = json.find("\"ph\":\"X\"", pos)) != std::string::npos) {
        ++events;
        pos += 8;
    }
    EXPECT_GE(events, result.records.size());
}

TEST(Trace, ClusterRecordsGetOneProcessRowPerGpu)
{
    const auto result = small_run();
    // Duplicate the single-GPU records onto a second GPU: the trace
    // must grow a second process row ("GPU 1") with its own compute
    // and PCIe tracks, while GPU 0's rows keep pid 0.
    auto records = result.records;
    const std::size_t single = records.size();
    records.insert(records.end(), result.records.begin(),
                   result.records.end());
    for (std::size_t i = single; i < records.size(); ++i)
        records[i].gpu_index = 1;

    const std::string json = chrome_trace_json(records);
    EXPECT_NE(json.find("\"name\":\"GPU 0\""), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"GPU 1\""), std::string::npos);
    EXPECT_NE(json.find("\"pid\":1,\"tid\":1"), std::string::npos);
    std::size_t pid1_events = 0, pos = 0;
    while ((pos = json.find("\"pid\":1", pos)) != std::string::npos) {
        ++pid1_events;
        pos += 7;
    }
    // At least one compute event per duplicated record, plus metadata.
    EXPECT_GE(pid1_events, single);
}

TEST(Trace, WritesFile)
{
    const auto result = small_run();
    const std::string path = "/tmp/helm_trace_test.json";
    ASSERT_TRUE(write_chrome_trace(result.records, path).is_ok());
    std::ifstream file(path);
    ASSERT_TRUE(file.is_open());
    std::string first_line;
    std::getline(file, first_line);
    EXPECT_NE(first_line.find("traceEvents"), std::string::npos);
    std::remove(path.c_str());
}

TEST(Trace, EmptyRecordsRejected)
{
    EXPECT_EQ(write_chrome_trace({}, "/tmp/never.json").code(),
              StatusCode::kFailedPrecondition);
}

TEST(Trace, BadPathRejected)
{
    const auto result = small_run();
    EXPECT_FALSE(
        write_chrome_trace(result.records, "/nonexistent-dir/x.json")
            .is_ok());
}

class TunerTest : public ::testing::Test
{
  protected:
    TuneRequest
    request(TuneObjective objective) const
    {
        TuneRequest req;
        req.model = model::opt_config(OptVariant::kOpt13B);
        req.memory = mem::ConfigKind::kNvdram;
        req.objective = objective;
        req.batch_limit = 64;
        req.explore_micro_batches = false; // keep the test fast
        req.explore_kv_offload = false;
        return req;
    }
};

TEST_F(TunerTest, ThroughputObjectivePicksLargeBatch)
{
    const auto result = auto_tune(request(TuneObjective::kThroughput));
    ASSERT_TRUE(result.is_ok()) << result.status().to_string();
    EXPECT_GT(result->best.spec.batch, 8u);
    EXPECT_FALSE(result->explored.empty());
    // The best candidate must dominate every explored one.
    for (const auto &c : result->explored) {
        EXPECT_GE(result->best.metrics.throughput,
                  c.metrics.throughput - 1e-9);
    }
}

TEST_F(TunerTest, LatencyObjectivePicksABalancedSchemeAtBatchOne)
{
    const auto result = auto_tune(request(TuneObjective::kLatency));
    ASSERT_TRUE(result.is_ok());
    EXPECT_EQ(result->best.spec.batch, 1u);
    // A pipeline-balancing scheme must win the latency objective —
    // either HeLM or the profile-guided Balanced that refines it.
    EXPECT_TRUE(result->best.spec.placement ==
                    placement::PlacementKind::kHelm ||
                result->best.spec.placement ==
                    placement::PlacementKind::kBalanced)
        << result->best.describe();
}

TEST_F(TunerTest, QosCeilingFiltersCandidates)
{
    // First find the unconstrained latency optimum, then demand it.
    auto unconstrained = auto_tune(request(TuneObjective::kLatency));
    ASSERT_TRUE(unconstrained.is_ok());
    const Seconds best_tbt = unconstrained->best.metrics.tbt;

    TuneRequest req = request(TuneObjective::kThroughput);
    req.tbt_ceiling = best_tbt * 1.05;
    const auto constrained = auto_tune(req);
    ASSERT_TRUE(constrained.is_ok());
    EXPECT_LE(constrained->best.metrics.tbt, *req.tbt_ceiling);
    // The constrained throughput cannot exceed the unconstrained one.
    TuneRequest free_req = request(TuneObjective::kThroughput);
    const auto free_run = auto_tune(free_req);
    ASSERT_TRUE(free_run.is_ok());
    EXPECT_LE(constrained->best.metrics.throughput,
              free_run->best.metrics.throughput + 1e-9);
}

TEST_F(TunerTest, ImpossibleQosFails)
{
    TuneRequest req = request(TuneObjective::kLatency);
    req.tbt_ceiling = 1e-6; // one microsecond TBT: impossible
    const auto result = auto_tune(req);
    EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST_F(TunerTest, RejectsEmptyModel)
{
    TuneRequest req = request(TuneObjective::kLatency);
    req.model = model::TransformerConfig{};
    EXPECT_EQ(auto_tune(req).status().code(),
              StatusCode::kInvalidArgument);
}

TEST_F(TunerTest, ExploredSortedByObjective)
{
    const auto result = auto_tune(request(TuneObjective::kThroughput));
    ASSERT_TRUE(result.is_ok());
    for (std::size_t i = 1; i < result->explored.size(); ++i) {
        EXPECT_GE(result->explored[i - 1].metrics.throughput,
                  result->explored[i].metrics.throughput - 1e-9);
    }
}

TEST_F(TunerTest, MicroBatchesExpandTheFrontier)
{
    TuneRequest narrow = request(TuneObjective::kThroughput);
    TuneRequest wide = narrow;
    wide.explore_micro_batches = true;
    const auto a = auto_tune(narrow);
    const auto b = auto_tune(wide);
    ASSERT_TRUE(a.is_ok());
    ASSERT_TRUE(b.is_ok());
    EXPECT_GE(b->best.metrics.throughput,
              a->best.metrics.throughput - 1e-9);
    EXPECT_GT(b->explored.size(), a->explored.size());
}

TEST_F(TunerTest, DescribeMentionsScheme)
{
    const auto result = auto_tune(request(TuneObjective::kLatency));
    ASSERT_TRUE(result.is_ok());
    const std::string desc = result->best.describe();
    EXPECT_EQ(desc.find(desc), 0u);
    EXPECT_NE(desc.find(placement::placement_kind_name(
                  result->best.spec.placement)),
              std::string::npos);
    EXPECT_NE(desc.find("b="), std::string::npos);
}

TEST(TunerObjective, Names)
{
    EXPECT_STREQ(tune_objective_name(TuneObjective::kLatency), "latency");
    EXPECT_STREQ(tune_objective_name(TuneObjective::kThroughput),
                 "throughput");
}

} // namespace
} // namespace helm::runtime
