/**
 * @file
 * Tests for the iteration-level schedulers (runtime/continuous.cc) and
 * the unified ServingConfig: preemption round-trip accounting, EDF
 * fairness/starvation under adversarial tenant mixes, FCFS identity
 * with the deprecated entry point, and validate() diagnostics.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "model/opt.h"
#include "runtime/scheduler.h"
#include "workload/arrival.h"

namespace helm::runtime {
namespace {

using model::OptVariant;

ServingSpec
small_spec()
{
    ServingSpec spec;
    spec.model = model::opt_config(OptVariant::kOpt1_3B);
    spec.memory = mem::ConfigKind::kNvdram;
    spec.placement = placement::PlacementKind::kAllCpu;
    return spec;
}

workload::TimedRequest
timed(std::uint64_t id, Seconds arrival, std::uint64_t prompt,
      std::uint64_t output, std::uint64_t tenant = 0,
      Seconds deadline = 0.0)
{
    workload::TimedRequest request;
    request.request = workload::Request{id, prompt, output, tenant};
    request.arrival = arrival;
    request.deadline = deadline;
    return request;
}

ServingReport
serve_stream(const ServingConfig &config,
             const std::vector<workload::TimedRequest> &stream)
{
    auto server = Server::create(small_spec(), config);
    EXPECT_TRUE(server.is_ok()) << server.status().to_string();
    EXPECT_TRUE(server->submit(stream).is_ok());
    auto report = server->serve();
    EXPECT_TRUE(report.is_ok()) << report.status().to_string();
    return std::move(report).value();
}

/** The preemption microcosm: two slots, three long lax jobs, two
 *  urgent short arrivals at t=5 s whose deadlines EDF can only meet
 *  by swapping a running job's KV out to the host tiers. */
std::vector<workload::TimedRequest>
preemption_microcosm()
{
    return {timed(0, 0.0, 256, 64, 0, 1000.0),
            timed(1, 0.0, 256, 64, 0, 1000.0),
            timed(2, 0.1, 256, 64, 0, 1000.0),
            timed(3, 5.0, 64, 8, 1, 9.0),
            timed(4, 5.1, 64, 8, 1, 9.2)};
}

ServingConfig
edf_two_slots()
{
    ServingConfig config;
    config.scheduler = SchedulerKind::kEdf;
    config.auto_max_batch = false;
    config.max_batch = 2;
    config.tenants = 2;
    return config;
}

TEST(Continuous, ReportAggregatesAndTenantStatsAreConsistent)
{
    workload::ArrivalSpec arrivals;
    arrivals.kind = workload::ArrivalKind::kBursty;
    arrivals.rate = 3.0;
    arrivals.duration = 8.0;
    arrivals.tenants = 3;
    arrivals.burst_factor = 6.0;
    arrivals.burst_period = 4.0;
    const auto stream = workload::generate_arrivals(arrivals);
    ASSERT_TRUE(stream.is_ok());

    ServingConfig config;
    config.scheduler = SchedulerKind::kContinuous;
    config.auto_max_batch = false;
    config.max_batch = 4;
    config.tenants = 3;
    const auto report = serve_stream(config, *stream);

    EXPECT_EQ(report.scheduler, SchedulerKind::kContinuous);
    EXPECT_EQ(report.completed + report.rejected, report.submitted);
    EXPECT_GT(report.iterations, 0u);
    EXPECT_EQ(report.batches_formed, report.iterations);
    EXPECT_EQ(report.preemptions, 0u); // continuous never preempts
    EXPECT_TRUE(report.kv_swap_events.empty());
    EXPECT_EQ(report.kv_demoted_bytes, 0u);
    EXPECT_GT(report.jain_fairness, 0.0);
    EXPECT_LE(report.jain_fairness, 1.0 + 1e-12);

    // Tenant aggregates must tile the global counters.
    ASSERT_EQ(report.tenants.size(), 3u);
    std::uint64_t submitted = 0, completed = 0, tokens = 0;
    std::uint64_t starved = 0, misses = 0;
    for (const auto &t : report.tenants) {
        submitted += t.submitted;
        completed += t.completed;
        tokens += t.tokens;
        starved += t.starvation_events;
        misses += t.deadline_misses;
    }
    EXPECT_EQ(submitted, report.submitted);
    EXPECT_EQ(completed, report.completed);
    EXPECT_EQ(tokens, report.total_tokens);
    EXPECT_EQ(starved, report.starvation_events);
    EXPECT_EQ(misses, report.deadline_misses);
}

TEST(Continuous, LateShortRequestEscapesTheRunningBatchTail)
{
    // Three long jobs occupy the engine from t=0; a short job lands at
    // t=1.  FCFS makes it wait for the whole formed batch; continuous
    // admits it at the next iteration boundary into the free slot.
    const std::vector<workload::TimedRequest> stream = {
        timed(0, 0.0, 256, 96), timed(1, 0.0, 256, 96),
        timed(2, 0.0, 256, 96), timed(3, 1.0, 64, 8)};

    ServingConfig fcfs;
    fcfs.scheduler = SchedulerKind::kFcfs;
    fcfs.auto_max_batch = false;
    fcfs.max_batch = 4;
    fcfs.max_queue_delay = 0.0; // greedy: batch of 3 launches at t=0
    const auto fcfs_report = serve_stream(fcfs, stream);

    ServingConfig continuous;
    continuous.scheduler = SchedulerKind::kContinuous;
    continuous.auto_max_batch = false;
    continuous.max_batch = 4;
    const auto cont_report = serve_stream(continuous, stream);

    ASSERT_EQ(fcfs_report.completed, 4u);
    ASSERT_EQ(cont_report.completed, 4u);
    auto ttft_of = [](const ServingReport &report, std::uint64_t id) {
        for (const auto &r : report.requests)
            if (r.id == id)
                return r.ttft;
        ADD_FAILURE() << "request " << id << " missing";
        return -1.0;
    };
    EXPECT_LT(ttft_of(cont_report, 3), ttft_of(fcfs_report, 3));
}

TEST(Edf, PreemptionRoundTripConservesWorkAndBytes)
{
    const auto stream = preemption_microcosm();
    const auto report = serve_stream(edf_two_slots(), stream);

    // The urgent tenant forced at least one swap-out, and every
    // swapped-out request came back and finished.
    EXPECT_GE(report.preemptions, 1u);
    EXPECT_EQ(report.resumes, report.preemptions);
    EXPECT_GT(report.kv_demoted_bytes, 0u);
    EXPECT_EQ(report.kv_promoted_bytes, report.kv_demoted_bytes);
    EXPECT_EQ(report.completed, stream.size());
    EXPECT_EQ(report.deadline_misses, 0u);

    // Work is conserved: preempted requests still generate every
    // output token.
    std::uint64_t expected_tokens = 0;
    for (const auto &r : stream)
        expected_tokens += r.request.output_tokens;
    EXPECT_EQ(report.total_tokens, expected_tokens);

    // Per-request preemption counts sum to the report total.
    std::uint64_t preemptions = 0;
    for (const auto &r : report.requests)
        preemptions += r.preemptions;
    EXPECT_EQ(preemptions, report.preemptions);

    // The swap-event timeline tiles the byte totals exactly: one
    // demote per preemption, one promote per resume, every interval
    // non-degenerate.  This is what the chrome-trace swap track draws.
    ASSERT_EQ(report.kv_swap_events.size(),
              report.preemptions + report.resumes);
    Bytes demoted = 0, promoted = 0;
    for (const auto &swap : report.kv_swap_events) {
        EXPECT_GT(swap.bytes, 0u);
        EXPECT_LT(swap.start, swap.end);
        (swap.demote ? demoted : promoted) += swap.bytes;
    }
    EXPECT_EQ(demoted, report.kv_demoted_bytes);
    EXPECT_EQ(promoted, report.kv_promoted_bytes);
}

TEST(Edf, PreemptionOnlyDelaysTheVictim)
{
    // Round trip against the uncontended timeline: serving the three
    // lax jobs alone, then with the urgent arrivals on top, must never
    // make a lax job finish *earlier* — preemption adds swap time and
    // lost decode slots, it cannot create work.
    auto lax_only = preemption_microcosm();
    lax_only.resize(3);
    const auto baseline = serve_stream(edf_two_slots(), lax_only);
    const auto contended =
        serve_stream(edf_two_slots(), preemption_microcosm());

    ASSERT_EQ(baseline.completed, 3u);
    auto e2e_of = [](const ServingReport &report, std::uint64_t id) {
        for (const auto &r : report.requests)
            if (r.id == id)
                return r.e2e_latency;
        ADD_FAILURE() << "request " << id << " missing";
        return -1.0;
    };
    for (std::uint64_t id = 0; id < 3; ++id)
        EXPECT_GE(e2e_of(contended, id), e2e_of(baseline, id) - 1e-12)
            << "lax job " << id;
}

TEST(Edf, ExposedSwapChargesMoreThanOverlapped)
{
    ServingConfig overlapped = edf_two_slots();
    overlapped.overlap_kv_swap = true;
    ServingConfig exposed = edf_two_slots();
    exposed.overlap_kv_swap = false;

    const auto over = serve_stream(overlapped, preemption_microcosm());
    const auto expo = serve_stream(exposed, preemption_microcosm());

    // Same schedule, same swap traffic — only the charging differs.
    ASSERT_GE(over.preemptions, 1u);
    EXPECT_EQ(expo.preemptions, over.preemptions);
    EXPECT_EQ(expo.kv_demoted_bytes, over.kv_demoted_bytes);
    EXPECT_GE(expo.kv_swap_exposed_seconds,
              over.kv_swap_exposed_seconds);
    EXPECT_GT(expo.kv_swap_exposed_seconds, 0.0);
}

TEST(Edf, MaxPreemptionsBoundsEveryRequest)
{
    // An adversarial drip of urgent arrivals tries to bounce the lax
    // jobs in and out of the batch; the livelock guard caps how often
    // each victim can be swapped.
    std::vector<workload::TimedRequest> stream = {
        timed(0, 0.0, 256, 96, 0, 1000.0),
        timed(1, 0.0, 256, 96, 0, 1000.0)};
    for (std::uint64_t i = 0; i < 6; ++i) {
        stream.push_back(timed(2 + i, 4.0 + 2.0 * i, 64, 8, 1,
                               4.0 + 2.0 * i + 4.0));
    }
    ServingConfig config = edf_two_slots();
    config.max_preemptions = 1;
    const auto report = serve_stream(config, stream);

    EXPECT_EQ(report.completed, stream.size());
    for (const auto &r : report.requests)
        EXPECT_LE(r.preemptions, 1u) << "request " << r.id;
}

TEST(Edf, AdversarialTenantMixStarvesTheDeadlineLessTenant)
{
    // Tenant 0 floods tight-deadline requests; tenant 1's two
    // deadline-free requests sort last under EDF and keep losing the
    // admission race to later arrivals — exactly what the starvation
    // counter and the fairness index must surface.
    std::vector<workload::TimedRequest> stream;
    for (std::uint64_t i = 0; i < 6; ++i)
        stream.push_back(timed(i, 0.0, 128, 32, 0, 3.0));
    stream.push_back(timed(6, 0.1, 128, 24, 1));
    stream.push_back(timed(7, 0.1, 128, 24, 1));
    for (std::uint64_t i = 0; i < 8; ++i) {
        const Seconds at = 0.5 + 0.5 * static_cast<double>(i);
        stream.push_back(timed(8 + i, at, 128, 32, 0, at + 3.0));
    }
    std::stable_sort(stream.begin(), stream.end(),
                     [](const workload::TimedRequest &a,
                        const workload::TimedRequest &b) {
                         return a.arrival < b.arrival;
                     });

    ServingConfig edf = edf_two_slots();
    const auto edf_report = serve_stream(edf, stream);
    ServingConfig rr = edf_two_slots();
    rr.scheduler = SchedulerKind::kContinuous;
    const auto rr_report = serve_stream(rr, stream);

    EXPECT_EQ(edf_report.completed, stream.size());
    ASSERT_EQ(edf_report.tenants.size(), 2u);
    EXPECT_GT(edf_report.starvation_events, 0u);
    EXPECT_GT(edf_report.tenants[1].starvation_events, 0u);
    EXPECT_GT(edf_report.tenants[1].max_queue_wait,
              edf_report.tenants[0].max_queue_wait);
    EXPECT_LT(edf_report.jain_fairness, 1.0);
    // Round-robin tenant draining is the fairness baseline EDF trades
    // away for deadlines.
    EXPECT_GE(rr_report.jain_fairness, edf_report.jain_fairness);
}

TEST(UnifiedConfig, FcfsPathIsFieldExactWithLegacyCreate)
{
    workload::ArrivalSpec arrivals;
    arrivals.rate = 3.0;
    arrivals.duration = 8.0;
    arrivals.seed = 7;
    const auto stream = workload::generate_arrivals(arrivals);
    ASSERT_TRUE(stream.is_ok());

    SchedulerPolicy policy;
    policy.max_queue_delay = 0.25;
    SloSpec slo;
    slo.ttft_target = 10.0;
    auto legacy = Server::create(small_spec(), policy, slo);
    ASSERT_TRUE(legacy.is_ok());
    ASSERT_TRUE(legacy->submit(*stream).is_ok());
    const auto legacy_report = legacy->run();
    ASSERT_TRUE(legacy_report.is_ok());

    const auto unified_report = serve_stream(
        ServingConfig::from_legacy(policy, slo), *stream);

    EXPECT_EQ(unified_report.scheduler, SchedulerKind::kFcfs);
    EXPECT_EQ(unified_report.completed, legacy_report->completed);
    EXPECT_EQ(unified_report.batches_formed,
              legacy_report->batches_formed);
    EXPECT_EQ(unified_report.total_tokens, legacy_report->total_tokens);
    EXPECT_DOUBLE_EQ(unified_report.goodput, legacy_report->goodput);
    EXPECT_DOUBLE_EQ(unified_report.makespan, legacy_report->makespan);
    ASSERT_EQ(unified_report.requests.size(),
              legacy_report->requests.size());
    for (std::size_t i = 0; i < unified_report.requests.size(); ++i) {
        const auto &a = unified_report.requests[i];
        const auto &b = legacy_report->requests[i];
        EXPECT_EQ(a.id, b.id);
        EXPECT_DOUBLE_EQ(a.queueing_delay, b.queueing_delay);
        EXPECT_DOUBLE_EQ(a.ttft, b.ttft);
        EXPECT_DOUBLE_EQ(a.e2e_latency, b.e2e_latency);
        EXPECT_EQ(a.slo_met, b.slo_met);
    }
    // FCFS reports carry none of the continuous/EDF extensions.
    EXPECT_EQ(unified_report.iterations, 0u);
    EXPECT_TRUE(unified_report.tenants.empty());
}

TEST(ServingConfigValidate, EveryErrorNamesItsHelmsimFlag)
{
    const auto message = [](ServingConfig config) {
        return config.validate().to_string();
    };
    ServingConfig explicit_zero;
    explicit_zero.auto_max_batch = false;
    explicit_zero.max_batch = 0;
    EXPECT_NE(message(explicit_zero).find("--max-batch"),
              std::string::npos);

    ServingConfig negative_delay;
    negative_delay.max_queue_delay = -0.1;
    EXPECT_NE(message(negative_delay).find("--max-queue-delay-ms"),
              std::string::npos);

    ServingConfig no_queue;
    no_queue.max_queue_length = 0;
    EXPECT_NE(message(no_queue).find("--max-queue"), std::string::npos);

    ServingConfig bad_ttft;
    bad_ttft.enforce_ttft = true;
    EXPECT_NE(message(bad_ttft).find("--slo-ttft-ms"),
              std::string::npos);

    ServingConfig no_tenants;
    no_tenants.tenants = 0;
    EXPECT_NE(message(no_tenants).find("--tenants"), std::string::npos);

    ServingConfig bad_deadline;
    bad_deadline.has_default_deadline = true;
    EXPECT_NE(message(bad_deadline).find("--deadline-ms"),
              std::string::npos);

    ServingConfig no_preemptions;
    no_preemptions.max_preemptions = 0;
    EXPECT_NE(message(no_preemptions).find("--max-preemptions"),
              std::string::npos);

    EXPECT_TRUE(ServingConfig{}.validate().is_ok());
}

TEST(ServingConfigValidate, SchedulerNamesRoundTrip)
{
    for (const auto kind :
         {SchedulerKind::kFcfs, SchedulerKind::kContinuous,
          SchedulerKind::kEdf}) {
        const auto parsed =
            parse_scheduler_kind(scheduler_kind_name(kind));
        ASSERT_TRUE(parsed.is_ok());
        EXPECT_EQ(*parsed, kind);
    }
    const auto bad = parse_scheduler_kind("lifo");
    ASSERT_FALSE(bad.is_ok());
    EXPECT_NE(bad.status().to_string().find("--scheduler"),
              std::string::npos);
}

} // namespace
} // namespace helm::runtime
