/**
 * @file
 * Unit tests for the inference engine: validation, schedule mechanics,
 * record consistency, and determinism.
 */
#include <gtest/gtest.h>

#include <algorithm>

#include "model/opt.h"
#include "runtime/engine.h"

namespace helm::runtime {
namespace {

using model::OptVariant;

ServingSpec
small_spec()
{
    ServingSpec spec;
    spec.model = model::opt_config(OptVariant::kOpt1_3B);
    spec.memory = mem::ConfigKind::kNvdram;
    spec.batch = 2;
    spec.repeats = 2;
    return spec;
}

TEST(Engine, RejectsZeroBatch)
{
    ServingSpec spec = small_spec();
    spec.batch = 0;
    EXPECT_EQ(simulate_inference(spec).status().code(),
              StatusCode::kInvalidArgument);
}

TEST(Engine, RejectsZeroRepeats)
{
    ServingSpec spec = small_spec();
    spec.repeats = 0;
    EXPECT_EQ(simulate_inference(spec).status().code(),
              StatusCode::kInvalidArgument);
}

TEST(Engine, RejectsEmptyShape)
{
    ServingSpec spec = small_spec();
    spec.shape.output_tokens = 0;
    EXPECT_EQ(simulate_inference(spec).status().code(),
              StatusCode::kInvalidArgument);
}

TEST(Engine, RejectsIncompleteModel)
{
    ServingSpec spec = small_spec();
    spec.model = model::TransformerConfig{};
    EXPECT_EQ(simulate_inference(spec).status().code(),
              StatusCode::kInvalidArgument);
}

TEST(Engine, RejectsInvalidPolicy)
{
    ServingSpec spec = small_spec();
    spec.policy = placement::Policy{50.0, 50.0, 50.0, false};
    EXPECT_EQ(simulate_inference(spec).status().code(),
              StatusCode::kInvalidArgument);
}

TEST(Engine, RejectsDiskWeightsWithoutStorageTier)
{
    ServingSpec spec = small_spec();
    spec.memory = mem::ConfigKind::kNvdram;
    spec.policy = placement::Policy{65.0, 15.0, 20.0, false};
    const auto result = simulate_inference(spec);
    EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(Engine, RejectsImpossibleBatch)
{
    ServingSpec spec;
    spec.model = model::opt_config(OptVariant::kOpt175B);
    spec.memory = mem::ConfigKind::kNvdram;
    spec.placement = placement::PlacementKind::kAllCpu;
    spec.compress_weights = true;
    spec.batch = 500; // KV alone exceeds 40 GB
    EXPECT_EQ(simulate_inference(spec).status().code(),
              StatusCode::kCapacityExceeded);
}

TEST(Engine, ValidateAcceptsWellFormedSpec)
{
    EXPECT_TRUE(small_spec().validate().is_ok());
}

TEST(Engine, ValidateRejectsWithoutSimulating)
{
    // validate() alone flags the same errors simulate_inference would.
    ServingSpec zero_batch = small_spec();
    zero_batch.batch = 0;
    EXPECT_EQ(zero_batch.validate().code(), StatusCode::kInvalidArgument);

    ServingSpec bad_cxl = small_spec();
    bad_cxl.custom_cxl_bandwidth = Bandwidth::gb_per_s(0.0);
    EXPECT_EQ(bad_cxl.validate().code(), StatusCode::kInvalidArgument);

    ServingSpec cxl_disk = small_spec();
    cxl_disk.custom_cxl_bandwidth = Bandwidth::gb_per_s(16.0);
    cxl_disk.policy = placement::Policy{65.0, 15.0, 20.0, false};
    EXPECT_EQ(cxl_disk.validate().code(), StatusCode::kInvalidArgument);

    ServingSpec impossible;
    impossible.model = model::opt_config(OptVariant::kOpt175B);
    impossible.memory = mem::ConfigKind::kNvdram;
    impossible.placement = placement::PlacementKind::kAllCpu;
    impossible.compress_weights = true;
    impossible.batch = 500;
    EXPECT_EQ(impossible.validate().code(),
              StatusCode::kCapacityExceeded);
}

TEST(Engine, DefaultPolicyMatchesMemoryKind)
{
    EXPECT_DOUBLE_EQ(default_policy(mem::ConfigKind::kSsd).disk_percent,
                     65.0);
    EXPECT_DOUBLE_EQ(default_policy(mem::ConfigKind::kFsdax).disk_percent,
                     65.0);
    EXPECT_DOUBLE_EQ(
        default_policy(mem::ConfigKind::kNvdram).disk_percent, 0.0);
    EXPECT_DOUBLE_EQ(default_policy(mem::ConfigKind::kDram).cpu_percent,
                     80.0);
}

TEST(Engine, RecordCountMatchesSchedule)
{
    const ServingSpec spec = small_spec();
    const auto result = simulate_inference(spec);
    ASSERT_TRUE(result.is_ok()) << result.status().to_string();
    const std::uint64_t expected = spec.repeats *
                                   spec.shape.output_tokens *
                                   spec.model.num_layers();
    EXPECT_EQ(result->records.size(), expected);
}

TEST(Engine, RecordsAreTemporallyConsistent)
{
    const auto result = simulate_inference(small_spec());
    ASSERT_TRUE(result.is_ok());
    Seconds prev_end = 0.0;
    for (const auto &rec : result->records) {
        EXPECT_GE(rec.step_end, rec.step_start);
        EXPECT_GE(rec.step_start, prev_end - 1e-12)
            << "steps must retire in order";
        prev_end = rec.step_end;
        EXPECT_GE(rec.compute_time, 0.0);
        EXPECT_GE(rec.transfer_time, 0.0);
    }
}

TEST(Engine, StepDurationIsAtLeastComputePlusOverhead)
{
    const ServingSpec spec = small_spec();
    const auto result = simulate_inference(spec);
    ASSERT_TRUE(result.is_ok());
    for (const auto &rec : result->records) {
        EXPECT_GE(rec.step_end - rec.step_start,
                  rec.compute_time + spec.gpu.layer_overhead - 1e-9);
    }
}

TEST(Engine, TransferBytesMatchPlacement)
{
    const auto result = simulate_inference(small_spec());
    ASSERT_TRUE(result.is_ok());
    const auto &placement = result->placement;
    for (const auto &rec : result->records) {
        const auto &lp =
            placement.layers[static_cast<std::size_t>(rec.layer)];
        EXPECT_EQ(rec.transfer_bytes, lp.off_gpu_bytes());
    }
}

TEST(Engine, FirstTokenIsPrefillRestAreDecode)
{
    const auto result = simulate_inference(small_spec());
    ASSERT_TRUE(result.is_ok());
    for (const auto &rec : result->records) {
        if (rec.token == 0)
            EXPECT_EQ(rec.stage, gpu::Stage::kPrefill);
        else
            EXPECT_EQ(rec.stage, gpu::Stage::kDecode);
    }
}

TEST(Engine, DeterministicAcrossRuns)
{
    const ServingSpec spec = small_spec();
    const auto a = simulate_inference(spec);
    const auto b = simulate_inference(spec);
    ASSERT_TRUE(a.is_ok());
    ASSERT_TRUE(b.is_ok());
    EXPECT_DOUBLE_EQ(a->metrics.ttft, b->metrics.ttft);
    EXPECT_DOUBLE_EQ(a->metrics.tbt, b->metrics.tbt);
    EXPECT_DOUBLE_EQ(a->metrics.total_time, b->metrics.total_time);
}

TEST(Engine, RepeatsAfterFirstAreIdentical)
{
    ServingSpec spec = small_spec();
    spec.repeats = 4;
    const auto result = simulate_inference(spec);
    ASSERT_TRUE(result.is_ok());
    const auto &ttfts = result->metrics.per_batch_ttft;
    ASSERT_EQ(ttfts.size(), 4u);
    // Steady-state repeats coincide; the paper discards the first.
    EXPECT_NEAR(ttfts[1], ttfts[2], 1e-9);
    EXPECT_NEAR(ttfts[2], ttfts[3], 1e-9);
}

TEST(Engine, KeepRecordsFalseDropsRecords)
{
    ServingSpec spec = small_spec();
    spec.keep_records = false;
    const auto result = simulate_inference(spec);
    ASSERT_TRUE(result.is_ok());
    EXPECT_TRUE(result->records.empty());
    EXPECT_GT(result->metrics.ttft, 0.0);
}

TEST(Engine, ThroughputConsistentWithTotals)
{
    const auto result = simulate_inference(small_spec());
    ASSERT_TRUE(result.is_ok());
    const auto &m = result->metrics;
    EXPECT_NEAR(m.throughput,
                static_cast<double>(m.total_tokens) / m.total_time,
                1e-9);
}

TEST(Engine, TtftExceedsTbtAtLargeBatch)
{
    // Prefill processes 128 tokens per request; decode processes one.
    ServingSpec spec = small_spec();
    spec.batch = 16;
    const auto result = simulate_inference(spec);
    ASSERT_TRUE(result.is_ok());
    EXPECT_GT(result->metrics.ttft, result->metrics.tbt);
}

TEST(Engine, PipelineOverlapLaw)
{
    // For interior steps, step duration ~= max(own compute + overhead,
    // next step's transfer) — Listing 1's sync semantics.
    ServingSpec spec = small_spec();
    spec.repeats = 1;
    const auto result = simulate_inference(spec);
    ASSERT_TRUE(result.is_ok());
    const auto &recs = result->records;
    for (std::size_t k = 5; k + 1 < recs.size(); ++k) {
        const Seconds duration = recs[k].step_end - recs[k].step_start;
        const Seconds expect = std::max(
            recs[k].compute_time + spec.gpu.layer_overhead,
            recs[k + 1].transfer_time);
        EXPECT_NEAR(duration, expect, 1e-6)
            << "step " << k;
    }
}

TEST(Engine, OverlapSummarySkipsEmbeddingLayers)
{
    const auto result = simulate_inference(small_spec());
    ASSERT_TRUE(result.is_ok());
    const auto summary = summarize_overlap(result->records,
                                           gpu::Stage::kDecode, 1);
    EXPECT_GT(summary.avg_compute, 0.0);
    EXPECT_GT(summary.avg_transfer, 0.0);
    EXPECT_GT(summary.avg_mha_compute, 0.0);
    EXPECT_GT(summary.avg_ffn_compute, 0.0);
    EXPECT_GT(summary.mha_compute_over_ffn_load(), 0.0);
    EXPECT_GT(summary.ffn_compute_over_mha_load(), 0.0);
}

TEST(Engine, SpilledPlacementStillRuns)
{
    // A policy demanding far more GPU share than fits must spill and
    // then run cleanly.
    ServingSpec spec;
    spec.model = model::opt_config(OptVariant::kOpt175B);
    spec.memory = mem::ConfigKind::kNvdram;
    spec.policy = placement::Policy{0.0, 10.0, 90.0, false};
    spec.batch = 1;
    spec.repeats = 1;
    const auto result = simulate_inference(spec);
    ASSERT_TRUE(result.is_ok()) << result.status().to_string();
    EXPECT_TRUE(result->spill.spilled());
    EXPECT_TRUE(result->budget.fits());
}

TEST(Engine, MemoryModeResidentSetApplied)
{
    // The MemoryMode host device must see the host-tier weights as its
    // working set, degrading bandwidth for the uncompressed model.
    ServingSpec spec;
    spec.model = model::opt_config(OptVariant::kOpt175B);
    spec.batch = 1;
    spec.repeats = 1;
    spec.memory = mem::ConfigKind::kMemoryMode;
    const auto mm = simulate_inference(spec);
    spec.memory = mem::ConfigKind::kDram;
    const auto dram = simulate_inference(spec);
    ASSERT_TRUE(mm.is_ok());
    ASSERT_TRUE(dram.is_ok());
    // Uncompressed OPT-175B (~300 GiB) overflows the 256 GiB cache.
    EXPECT_GT(mm->metrics.tbt, dram->metrics.tbt * 1.05);
}

} // namespace
} // namespace helm::runtime
