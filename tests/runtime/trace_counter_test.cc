/**
 * @file
 * Tests for the Chrome-trace counter rows ("ph":"C"): host-port
 * utilization pairs scaled by the fabric rate, KV-tier occupancy
 * samples, JSON escaping of hostile tier names, and the per-GPU pid
 * layout when counters and cluster records coexist.
 */
#include <gtest/gtest.h>

#include <cstdio>

#include "kvcache/kvcache.h"
#include "model/opt.h"
#include "runtime/engine.h"
#include "runtime/trace.h"
#include "tracing/flight_recorder.h"
#include "tracing/synthesize.h"

namespace helm::runtime {
namespace {

using model::OptVariant;

/**
 * Minimal structural JSON check: braces/brackets balance outside string
 * literals and no unterminated string remains.  Not a full parser, but
 * enough to catch truncated or unescaped output.
 */
bool
json_balanced(const std::string &text)
{
    int depth = 0;
    bool in_string = false;
    for (std::size_t i = 0; i < text.size(); ++i) {
        const char c = text[i];
        if (in_string) {
            if (c == '\\')
                ++i;
            else if (c == '"')
                in_string = false;
            continue;
        }
        if (c == '"')
            in_string = true;
        else if (c == '{' || c == '[')
            ++depth;
        else if (c == '}' || c == ']') {
            if (--depth < 0)
                return false;
        }
    }
    return depth == 0 && !in_string;
}

std::size_t
count_of(const std::string &haystack, const std::string &needle)
{
    std::size_t n = 0, pos = 0;
    while ((pos = haystack.find(needle, pos)) != std::string::npos) {
        ++n;
        pos += needle.size();
    }
    return n;
}

RunResult
small_run(bool kv_tiering = false)
{
    ServingSpec spec;
    spec.model = model::opt_config(OptVariant::kOpt1_3B);
    spec.memory = mem::ConfigKind::kNvdram;
    spec.batch = 2;
    spec.repeats = 1;
    spec.shape.output_tokens = 3;
    if (kv_tiering)
        spec.kv_cache = kvcache::KvCacheConfig::tiered(0);
    auto result = simulate_inference(spec);
    EXPECT_TRUE(result.is_ok()) << result.status().to_string();
    return std::move(result).value();
}

TEST(TraceCounters, DisabledOptionsMatchLegacyOverload)
{
    const auto result = small_run();
    // Rate 0 and no KV occupancy: the counters overload must emit the
    // exact bytes of the legacy two-argument form.
    EXPECT_EQ(chrome_trace_json(result.records),
              chrome_trace_json(result.records, TraceCounterOptions{}));
}

TEST(TraceCounters, HostPortUtilizationPairsPerTransfer)
{
    const auto result = small_run();
    TraceCounterOptions counters;
    counters.host_port_rate_bytes_per_s = result.h2d_rate.raw();
    ASSERT_GT(counters.host_port_rate_bytes_per_s, 0.0);

    const std::string json =
        chrome_trace_json(result.records, counters);
    EXPECT_TRUE(json_balanced(json));
    EXPECT_NE(json.find("\"name\":\"host-port utilization\""),
              std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
    // Every utilization rise is paired with a fall back to zero.
    const std::size_t rises = count_of(json, "host-port utilization");
    const std::size_t falls = count_of(json, "{\"utilization\":0}");
    EXPECT_GT(rises, 0u);
    EXPECT_EQ(rises % 2, 0u);
    EXPECT_EQ(falls, rises / 2);
    // Legacy duration events survive untouched alongside the counters.
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
}

TEST(TraceCounters, KvOccupancyRowsForTieredRuns)
{
    const auto result = small_run(/*kv_tiering=*/true);
    bool sampled = false;
    for (const auto &rec : result.records)
        sampled |= !rec.kv_occupancy.empty();
    ASSERT_TRUE(sampled);

    // Occupancy counters need no port rate — options with defaults.
    const std::string json =
        chrome_trace_json(result.records, TraceCounterOptions{});
    EXPECT_TRUE(json_balanced(json));
    EXPECT_NE(json.find("\"name\":\"KV tier occupancy (MiB)\""),
              std::string::npos);
    EXPECT_NE(json.find("\"gpu\":"), std::string::npos);
    EXPECT_NE(json.find("\"host\":"), std::string::npos);
}

TEST(TraceCounters, HostileTierNamesAreEscaped)
{
    auto result = small_run(/*kv_tiering=*/true);
    for (auto &rec : result.records) {
        for (auto &occupancy : rec.kv_occupancy) {
            if (occupancy.tier == "host")
                occupancy.tier = "we\"ird\\tier";
        }
        for (auto &traffic : rec.kv_tiers) {
            if (traffic.tier == "host")
                traffic.tier = "we\"ird\\tier";
        }
    }
    const std::string json =
        chrome_trace_json(result.records, TraceCounterOptions{});
    EXPECT_TRUE(json_balanced(json)) << "tier name broke the JSON";
    EXPECT_NE(json.find("we\\\"ird\\\\tier"), std::string::npos);
    EXPECT_EQ(json.find("we\"ird"), std::string::npos);
}

TEST(TraceCounters, ClusterPidLayoutCoexistsWithCounters)
{
    const auto result = small_run();
    auto records = result.records;
    const std::size_t single = records.size();
    records.insert(records.end(), result.records.begin(),
                   result.records.end());
    for (std::size_t i = single; i < records.size(); ++i)
        records[i].gpu_index = 1;

    TraceCounterOptions counters;
    counters.host_port_rate_bytes_per_s = result.h2d_rate.raw();
    const std::string json = chrome_trace_json(records, counters);
    EXPECT_TRUE(json_balanced(json));
    // One process row per GPU, exactly as without counters...
    EXPECT_NE(json.find("\"name\":\"GPU 0\""), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"GPU 1\""), std::string::npos);
    // ...and the counter track rides on the global pid 0.
    EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
    std::size_t pid1_events = 0, pos = 0;
    while ((pos = json.find("\"pid\":1", pos)) != std::string::npos) {
        ++pid1_events;
        pos += 7;
    }
    EXPECT_GE(pid1_events, single);
}

TEST(TraceLayout, ThreadTracksArePinned)
{
    // The pid/tid scheme is part of the format contract (trace.h):
    // tid 0 compute, tid 1 transfers, tid 2 reserved for KV swaps,
    // KV tier tracks from tid 3 in first-seen order — even when the
    // run had no swaps.  Hand-crafted records so both tiers move bytes.
    LayerStepRecord step;
    step.compute_time = 0.001;
    step.transfer_time = 0.001;
    step.transfer_bytes = 4096;
    step.kv_read_bytes = 1024;
    step.kv_tiers.push_back({"host", 1024, 0});
    step.kv_tiers.push_back({"pmem", 0, 2048});
    step.kv_write_time = 0.0005;

    const std::string json = chrome_trace_json({step});
    EXPECT_NE(json.find("\"tid\":0,\"args\":{\"name\":\"GPU compute\"}"),
              std::string::npos);
    EXPECT_NE(
        json.find("\"tid\":1,\"args\":{\"name\":\"h2d transfers\"}"),
        std::string::npos);
    // No preemptions: the swap track stays silent but its tid stays
    // reserved — the first tier row lands at tid 3, never tid 2.
    EXPECT_EQ(json.find("KV swap (preemption)"), std::string::npos);
    EXPECT_EQ(json.find("\"tid\":2,\"args\":{\"name\":\"KV "),
              std::string::npos);
    EXPECT_NE(json.find("\"tid\":3,\"args\":{\"name\":\"KV host\"}"),
              std::string::npos);
    EXPECT_NE(json.find("\"tid\":4,\"args\":{\"name\":\"KV pmem\"}"),
              std::string::npos);
}

TEST(TraceLayout, SwapTrackUsesTheReservedTid)
{
    const auto result = small_run(/*kv_tiering=*/true);
    TraceCounterOptions counters;
    KvSwapEvent swap;
    swap.request_id = 7;
    swap.demote = true;
    swap.start = 0.5;
    swap.end = 0.75;
    swap.bytes = 4096;
    counters.kv_swaps.push_back(swap);

    const std::string json =
        chrome_trace_json(result.records, counters);
    EXPECT_TRUE(json_balanced(json));
    EXPECT_NE(
        json.find(
            "\"tid\":2,\"args\":{\"name\":\"KV swap (preemption)\"}"),
        std::string::npos);
    EXPECT_NE(json.find("KV demote r7"), std::string::npos);
}

TEST(TraceLayout, FlightRecorderRowsAndFlowArrows)
{
    tracing::FlightRecorder recorder({8, 16});
    tracing::TurnTraceInput input;
    input.turn_id = 42;
    input.session = 1;
    input.prompt_tokens = 128;
    input.output_tokens = 8;
    input.submitted = 0.0;
    input.dispatched = 0.25;
    input.first_token = 0.5;
    input.completed = 1.0;
    input.tbt = 0.0625;
    recorder.admit(tracing::build_turn_trace(input, 16));
    recorder.admit(tracing::build_shed_turn_trace(
        43, 1, 1.0, 1.25, "accept-queue-full", 16));

    const auto result = small_run();
    TraceCounterOptions counters;
    counters.flight_recorder = &recorder;
    const std::string json =
        chrome_trace_json(result.records, counters);
    EXPECT_TRUE(json_balanced(json));

    // One "requests" process at the pinned pid, one thread row per
    // retained trace in sorted order, flags suffixed to the row name.
    EXPECT_NE(json.find("\"pid\":1000,\"tid\":0,\"args\":{\"name\":"
                        "\"requests (flight recorder)\"}"),
              std::string::npos);
    EXPECT_NE(json.find("\"name\":\"turn 42\""), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"turn 43 [shed]\""),
              std::string::npos);

    // Span events carry their phase; consecutive root children are
    // joined by s/f flow pairs whose id is the target's derived span
    // id — a pure function of (trace id, phase, seq).
    EXPECT_NE(json.find("\"cat\":\"span\""), std::string::npos);
    EXPECT_NE(json.find("\"phase\":\"queue\""), std::string::npos);
    char flow_id[32];
    std::snprintf(flow_id, sizeof(flow_id), "\"id\":\"0x%llx\"",
                  static_cast<unsigned long long>(tracing::derive_span_id(
                      42, tracing::SpanPhase::kStream, 3)));
    EXPECT_EQ(count_of(json, flow_id), 2u); // one s + one f event
    EXPECT_NE(json.find("\"ph\":\"s\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"f\",\"bp\":\"e\""),
              std::string::npos);
}

TEST(TraceLayout, IdenticalInputsRenderIdenticalBytes)
{
    const auto result = small_run(/*kv_tiering=*/true);
    tracing::FlightRecorder recorder({8, 16});
    tracing::TurnTraceInput input;
    input.turn_id = 5;
    input.completed = 1.0;
    input.first_token = 0.5;
    recorder.admit(tracing::build_turn_trace(input, 16));

    TraceCounterOptions counters;
    counters.host_port_rate_bytes_per_s = result.h2d_rate.raw();
    counters.flight_recorder = &recorder;
    const std::string once = chrome_trace_json(result.records, counters);
    const std::string twice =
        chrome_trace_json(result.records, counters);
    ASSERT_FALSE(once.empty());
    EXPECT_EQ(once, twice);
}

} // namespace
} // namespace helm::runtime
