/**
 * @file
 * Tests for the Chrome-trace counter rows ("ph":"C"): host-port
 * utilization pairs scaled by the fabric rate, KV-tier occupancy
 * samples, JSON escaping of hostile tier names, and the per-GPU pid
 * layout when counters and cluster records coexist.
 */
#include <gtest/gtest.h>

#include "kvcache/kvcache.h"
#include "model/opt.h"
#include "runtime/engine.h"
#include "runtime/trace.h"

namespace helm::runtime {
namespace {

using model::OptVariant;

/**
 * Minimal structural JSON check: braces/brackets balance outside string
 * literals and no unterminated string remains.  Not a full parser, but
 * enough to catch truncated or unescaped output.
 */
bool
json_balanced(const std::string &text)
{
    int depth = 0;
    bool in_string = false;
    for (std::size_t i = 0; i < text.size(); ++i) {
        const char c = text[i];
        if (in_string) {
            if (c == '\\')
                ++i;
            else if (c == '"')
                in_string = false;
            continue;
        }
        if (c == '"')
            in_string = true;
        else if (c == '{' || c == '[')
            ++depth;
        else if (c == '}' || c == ']') {
            if (--depth < 0)
                return false;
        }
    }
    return depth == 0 && !in_string;
}

std::size_t
count_of(const std::string &haystack, const std::string &needle)
{
    std::size_t n = 0, pos = 0;
    while ((pos = haystack.find(needle, pos)) != std::string::npos) {
        ++n;
        pos += needle.size();
    }
    return n;
}

RunResult
small_run(bool kv_tiering = false)
{
    ServingSpec spec;
    spec.model = model::opt_config(OptVariant::kOpt1_3B);
    spec.memory = mem::ConfigKind::kNvdram;
    spec.batch = 2;
    spec.repeats = 1;
    spec.shape.output_tokens = 3;
    if (kv_tiering)
        spec.kv_cache = kvcache::KvCacheConfig::tiered(0);
    auto result = simulate_inference(spec);
    EXPECT_TRUE(result.is_ok()) << result.status().to_string();
    return std::move(result).value();
}

TEST(TraceCounters, DisabledOptionsMatchLegacyOverload)
{
    const auto result = small_run();
    // Rate 0 and no KV occupancy: the counters overload must emit the
    // exact bytes of the legacy two-argument form.
    EXPECT_EQ(chrome_trace_json(result.records),
              chrome_trace_json(result.records, TraceCounterOptions{}));
}

TEST(TraceCounters, HostPortUtilizationPairsPerTransfer)
{
    const auto result = small_run();
    TraceCounterOptions counters;
    counters.host_port_rate_bytes_per_s = result.h2d_rate.raw();
    ASSERT_GT(counters.host_port_rate_bytes_per_s, 0.0);

    const std::string json =
        chrome_trace_json(result.records, counters);
    EXPECT_TRUE(json_balanced(json));
    EXPECT_NE(json.find("\"name\":\"host-port utilization\""),
              std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
    // Every utilization rise is paired with a fall back to zero.
    const std::size_t rises = count_of(json, "host-port utilization");
    const std::size_t falls = count_of(json, "{\"utilization\":0}");
    EXPECT_GT(rises, 0u);
    EXPECT_EQ(rises % 2, 0u);
    EXPECT_EQ(falls, rises / 2);
    // Legacy duration events survive untouched alongside the counters.
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
}

TEST(TraceCounters, KvOccupancyRowsForTieredRuns)
{
    const auto result = small_run(/*kv_tiering=*/true);
    bool sampled = false;
    for (const auto &rec : result.records)
        sampled |= !rec.kv_occupancy.empty();
    ASSERT_TRUE(sampled);

    // Occupancy counters need no port rate — options with defaults.
    const std::string json =
        chrome_trace_json(result.records, TraceCounterOptions{});
    EXPECT_TRUE(json_balanced(json));
    EXPECT_NE(json.find("\"name\":\"KV tier occupancy (MiB)\""),
              std::string::npos);
    EXPECT_NE(json.find("\"gpu\":"), std::string::npos);
    EXPECT_NE(json.find("\"host\":"), std::string::npos);
}

TEST(TraceCounters, HostileTierNamesAreEscaped)
{
    auto result = small_run(/*kv_tiering=*/true);
    for (auto &rec : result.records) {
        for (auto &occupancy : rec.kv_occupancy) {
            if (occupancy.tier == "host")
                occupancy.tier = "we\"ird\\tier";
        }
        for (auto &traffic : rec.kv_tiers) {
            if (traffic.tier == "host")
                traffic.tier = "we\"ird\\tier";
        }
    }
    const std::string json =
        chrome_trace_json(result.records, TraceCounterOptions{});
    EXPECT_TRUE(json_balanced(json)) << "tier name broke the JSON";
    EXPECT_NE(json.find("we\\\"ird\\\\tier"), std::string::npos);
    EXPECT_EQ(json.find("we\"ird"), std::string::npos);
}

TEST(TraceCounters, ClusterPidLayoutCoexistsWithCounters)
{
    const auto result = small_run();
    auto records = result.records;
    const std::size_t single = records.size();
    records.insert(records.end(), result.records.begin(),
                   result.records.end());
    for (std::size_t i = single; i < records.size(); ++i)
        records[i].gpu_index = 1;

    TraceCounterOptions counters;
    counters.host_port_rate_bytes_per_s = result.h2d_rate.raw();
    const std::string json = chrome_trace_json(records, counters);
    EXPECT_TRUE(json_balanced(json));
    // One process row per GPU, exactly as without counters...
    EXPECT_NE(json.find("\"name\":\"GPU 0\""), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"GPU 1\""), std::string::npos);
    // ...and the counter track rides on the global pid 0.
    EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
    std::size_t pid1_events = 0, pos = 0;
    while ((pos = json.find("\"pid\":1", pos)) != std::string::npos) {
        ++pid1_events;
        pos += 7;
    }
    EXPECT_GE(pid1_events, single);
}

} // namespace
} // namespace helm::runtime
