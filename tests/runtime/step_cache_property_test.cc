/**
 * @file
 * Property test for the step-schedule cache: across every
 * (scheduler, host-memory configuration) pair, a preemption-heavy
 * bursty serve must be byte-identical with the cache on and off on
 * all three artifact surfaces — the full ServingReport, the metrics
 * JSON snapshot, and the chrome-trace.  The arrival stream is seeded
 * per case (splitmix of the coordinates), so every pair exercises a
 * different randomized workload while staying deterministic.
 */
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <string>
#include <tuple>
#include <vector>

#include "mem/host_system.h"
#include "model/opt.h"
#include "runtime/instrument.h"
#include "runtime/scheduler.h"
#include "runtime/step_cache.h"
#include "runtime/trace.h"
#include "telemetry/export.h"
#include "telemetry/metrics.h"
#include "workload/arrival.h"

namespace helm::runtime {
namespace {

/** Restore the process-global cache to its default state no matter
 *  how the test exits. */
struct CacheGuard
{
    ~CacheGuard()
    {
        set_step_cache_enabled(true);
        step_cache().clear();
    }
};

std::uint64_t
splitmix64(std::uint64_t x)
{
    x += 0x9E3779B97F4A7C15ull;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    return x ^ (x >> 31);
}

void
append_f(std::string &out, double v)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.17g,", v);
    out += buf;
}

void
append_u(std::string &out, std::uint64_t v)
{
    char buf[32];
    std::snprintf(buf, sizeof buf, "%llu,",
                  static_cast<unsigned long long>(v));
    out += buf;
}

/** Exact textual image of a ServingReport: every scalar at full
 *  precision, every per-request / per-tenant / per-swap row. */
std::string
serialize_report(const ServingReport &report)
{
    std::string out;
    out.reserve(1 << 16);
    append_u(out, report.submitted);
    append_u(out, report.completed);
    append_u(out, report.rejected);
    append_u(out, report.kv_rejected);
    append_u(out, report.batches_formed);
    append_u(out, report.max_queue_depth);
    append_f(out, report.mean_batch_size);
    append_f(out, report.makespan);
    append_u(out, report.total_tokens);
    append_f(out, report.throughput);
    append_f(out, report.goodput);
    append_f(out, report.slo_attainment);
    append_u(out, report.iterations);
    append_u(out, report.preemptions);
    append_u(out, report.resumes);
    append_u(out, report.kv_demoted_bytes);
    append_u(out, report.kv_promoted_bytes);
    append_f(out, report.kv_swap_exposed_seconds);
    append_u(out, report.deadline_misses);
    append_u(out, report.starvation_events);
    append_f(out, report.jain_fairness);
    for (const std::uint64_t id : report.rejected_ids)
        append_u(out, id);
    for (const RequestMetrics &r : report.requests) {
        append_u(out, r.id);
        append_u(out, r.tenant);
        append_u(out, r.prompt_tokens);
        append_u(out, r.output_tokens);
        append_u(out, r.batch_index);
        append_f(out, r.arrival);
        append_f(out, r.queueing_delay);
        append_f(out, r.ttft);
        append_f(out, r.tbt);
        append_f(out, r.e2e_latency);
        append_f(out, r.deadline);
        append_u(out, r.preemptions);
        out += r.slo_met ? "t," : "f,";
        out += r.deadline_met ? "t,\n" : "f,\n";
    }
    for (const TenantStats &t : report.tenants) {
        append_u(out, t.tenant);
        append_u(out, t.submitted);
        append_u(out, t.completed);
        append_u(out, t.rejected);
        append_u(out, t.tokens);
        append_u(out, t.starvation_events);
        append_f(out, t.mean_ttft);
        append_f(out, t.max_queue_wait);
        out += '\n';
    }
    for (const KvSwapEvent &s : report.kv_swap_events) {
        append_u(out, s.request_id);
        append_u(out, s.tenant);
        out += s.demote ? "d," : "p,";
        append_u(out, s.bytes);
        append_f(out, s.start);
        append_f(out, s.end);
        out += '\n';
    }
    return out;
}

struct RunArtifacts
{
    std::string report;  //!< serialize_report image
    std::string metrics; //!< telemetry::json_snapshot
    std::string trace;   //!< runtime::chrome_trace_json
    std::uint64_t preemptions = 0;
    std::uint64_t cache_hits = 0; //!< engine replays during this run
};

/**
 * Three bursty tenant streams with *heterogeneous* deadlines, merged.
 * Homogeneous relative deadlines make EDF degenerate to FCFS order
 * (every later arrival also has a later deadline); a tight-deadline
 * tenant arriving mid-burst against lax running requests is what
 * forces swap-out/resume cycles — the preemption-heavy regime.
 */
std::vector<workload::TimedRequest>
make_stream(std::uint64_t seed)
{
    const double rates[3] = {14.0, 8.0, 6.0};
    const double deadlines[3] = {0.15, 0.8, 3.0};
    std::vector<std::vector<workload::TimedRequest>> streams;

    // Deterministic preemption kernel, independent of how fast the
    // memory configuration decodes: a full batch of lax long-output
    // requests at t=0, then a batch of tight-deadline requests just
    // after.  The tight batch misses the first formation (arrival >
    // 0) but lands before any config can finish a 100-token decode,
    // so under EDF it displaces the running lax batch at the first
    // iteration boundary — guaranteed swap-out/resume traffic.
    std::vector<workload::TimedRequest> lax_kernel, tight_kernel;
    for (int i = 0; i < 8; ++i) {
        workload::TimedRequest lax;
        lax.arrival = 0.0;
        lax.deadline = 1e4;
        lax.request.prompt_tokens = 128;
        lax.request.output_tokens = 100;
        lax.request.tenant = 2;
        lax_kernel.push_back(lax);
        workload::TimedRequest tight;
        tight.arrival = 1e-4;
        tight.deadline = 1e-4 + 0.15;
        tight.request.prompt_tokens = 128;
        tight.request.output_tokens = 21;
        tight.request.tenant = 0;
        tight_kernel.push_back(tight);
    }
    streams.push_back(std::move(lax_kernel));
    streams.push_back(std::move(tight_kernel));
    for (std::uint64_t t = 0; t < 3; ++t) {
        workload::ArrivalSpec arrivals;
        arrivals.kind = workload::ArrivalKind::kBursty;
        arrivals.rate = rates[t];
        arrivals.duration = 8.0;
        arrivals.burst_factor = 8.0;
        arrivals.burst_period = 2.0;
        arrivals.burst_duty = 0.25;
        arrivals.prompt_tokens = 128;
        arrivals.output_tokens = 21;
        arrivals.seed = splitmix64(seed + t);
        arrivals.deadline = deadlines[t];
        auto stream = workload::generate_arrivals(arrivals);
        EXPECT_TRUE(stream.is_ok()) << stream.status().to_string();
        for (workload::TimedRequest &timed : *stream)
            timed.request.tenant = t;
        streams.push_back(std::move(*stream));
    }
    return workload::merge_arrivals(streams);
}

/** One full serve of the merged stream, cache on or off.  @p warm
 *  keeps previously cached timelines (a fresh Server replays them —
 *  the cross-instance hit pattern gateway replicas produce). */
RunArtifacts
run_once(SchedulerKind scheduler, mem::ConfigKind memory,
         const std::vector<workload::TimedRequest> &stream,
         bool cache_on, bool warm)
{
    set_step_cache_enabled(cache_on);
    if (!warm)
        step_cache().clear();

    ServingSpec spec;
    spec.model = model::opt_config(model::OptVariant::kOpt1_3B);
    spec.memory = memory;
    spec.shape.prompt_tokens = 128;
    spec.shape.output_tokens = 100; // stream max (the lax kernel)

    ServingConfig config;
    config.scheduler = scheduler;
    config.tenants = 3;
    config.max_queue_delay = 0.02;
    config.max_queue_length = 1u << 16;
    // A fixed batch ceiling keeps the flash-crowd phases forming
    // full batches of the same composition — the repeated signature
    // the replay path memoizes — and concentrates contention so EDF
    // actually preempts.
    config.auto_max_batch = false;
    config.max_batch = 8;

    auto created = Server::create(spec, config);
    EXPECT_TRUE(created.is_ok()) << created.status().to_string();
    Server server = std::move(*created);
    server.enable_telemetry(true);
    const Status submitted = server.submit(stream);
    EXPECT_TRUE(submitted.is_ok()) << submitted.to_string();
    const std::uint64_t hits_before = step_cache().hits();
    const auto report = server.serve();
    EXPECT_TRUE(report.is_ok()) << report.status().to_string();

    telemetry::MetricsRegistry registry;
    record_serving(registry, server.serving_spec(),
                   server.effective_max_batch(),
                   server.kv_request_slots(), *report, "serve");

    RunArtifacts artifacts;
    artifacts.report = serialize_report(*report);
    artifacts.metrics = telemetry::json_snapshot(registry);
    artifacts.trace = chrome_trace_json(server.serving_records());
    artifacts.preemptions = report->preemptions;
    artifacts.cache_hits = step_cache().hits() - hits_before;
    return artifacts;
}

using StepCacheCase = std::tuple<SchedulerKind, mem::ConfigKind>;

class StepCacheProperty : public ::testing::TestWithParam<StepCacheCase>
{
};

TEST_P(StepCacheProperty, CacheOnOffByteIdentical)
{
    const auto [scheduler, memory] = GetParam();
    CacheGuard guard;
    const std::uint64_t seed =
        splitmix64((static_cast<std::uint64_t>(scheduler) << 8) ^
                   static_cast<std::uint64_t>(memory));

    const auto stream = make_stream(seed);

    const RunArtifacts off =
        run_once(scheduler, memory, stream, false, false);
    const RunArtifacts on =
        run_once(scheduler, memory, stream, true, false);
    // A second cache-on serve on a fresh Server replays every batch
    // signature the first one simulated — the cross-instance hit
    // pattern gateway replicas produce.  It must be exercised, not
    // just enabled, and must reproduce the same bytes.
    const RunArtifacts warm =
        run_once(scheduler, memory, stream, true, true);
    EXPECT_EQ(off.cache_hits, 0u);
    EXPECT_GT(warm.cache_hits, 0u);

    // Byte identity on every artifact surface.
    EXPECT_EQ(off.report, on.report);
    EXPECT_EQ(off.metrics, on.metrics);
    EXPECT_EQ(off.trace, on.trace);
    EXPECT_EQ(off.report, warm.report);
    EXPECT_EQ(off.metrics, warm.metrics);
    EXPECT_EQ(off.trace, warm.trace);

    // The workload is preemption-heavy under EDF: tight-deadline
    // arrivals mid-burst preempt lax running requests, and every run
    // must agree on every swap-out/resume cycle.
    if (scheduler == SchedulerKind::kEdf) {
        EXPECT_GT(on.preemptions, 0u);
        EXPECT_EQ(off.preemptions, on.preemptions);
        EXPECT_EQ(off.preemptions, warm.preemptions);
    }
}

INSTANTIATE_TEST_SUITE_P(
    SchedulersAcrossMemoryConfigs, StepCacheProperty,
    ::testing::Combine(
        ::testing::Values(SchedulerKind::kFcfs,
                          SchedulerKind::kContinuous,
                          SchedulerKind::kEdf),
        ::testing::ValuesIn(mem::all_config_kinds())),
    [](const auto &info) {
        std::string name =
            scheduler_kind_name(std::get<0>(info.param));
        name += "_";
        name += mem::config_kind_name(std::get<1>(info.param));
        for (char &c : name) {
            if (c == '-' || c == '.' || c == '+' || c == ' ')
                c = '_';
        }
        return name;
    });

} // namespace
} // namespace helm::runtime
