/**
 * @file
 * Unit + integration tests for the request-level scheduler
 * (runtime/scheduler.h) and the serve_workload compatibility shim.
 */
#include <gtest/gtest.h>

#include "common/summary.h"
#include "model/opt.h"
#include "runtime/scheduler.h"
#include "runtime/serving.h"

namespace helm::runtime {
namespace {

using model::OptVariant;

ServingSpec
small_spec()
{
    ServingSpec spec;
    spec.model = model::opt_config(OptVariant::kOpt1_3B);
    spec.memory = mem::ConfigKind::kNvdram;
    spec.placement = placement::PlacementKind::kAllCpu;
    return spec;
}

/** n requests of the paper shape, all arriving at @p arrival. */
std::vector<workload::TimedRequest>
burst(std::uint64_t n, Seconds arrival, std::uint64_t first_id = 0)
{
    std::vector<workload::TimedRequest> stream;
    for (std::uint64_t i = 0; i < n; ++i) {
        stream.push_back(workload::TimedRequest{
            workload::Request{first_id + i, 128, 21}, arrival});
    }
    return stream;
}

TEST(Scheduler, CreateValidatesSpecAndPolicy)
{
    ServingSpec bad = small_spec();
    bad.shape.output_tokens = 0;
    EXPECT_EQ(Server::create(bad).status().code(),
              StatusCode::kInvalidArgument);

    SchedulerPolicy no_queue;
    no_queue.max_queue_length = 0;
    EXPECT_EQ(Server::create(small_spec(), no_queue).status().code(),
              StatusCode::kInvalidArgument);

    SchedulerPolicy negative_delay;
    negative_delay.max_queue_delay = -0.1;
    EXPECT_EQ(
        Server::create(small_spec(), negative_delay).status().code(),
        StatusCode::kInvalidArgument);
}

TEST(Scheduler, AutoSizedBatchCeilingIsPositive)
{
    auto server = Server::create(small_spec());
    ASSERT_TRUE(server.is_ok()) << server.status().to_string();
    EXPECT_GE(server->effective_max_batch(), 1u);
}

TEST(Scheduler, RejectsBadSubmissions)
{
    auto server = Server::create(small_spec());
    ASSERT_TRUE(server.is_ok());
    EXPECT_EQ(server->submit(workload::Request{0, 128, 21}, -1.0).code(),
              StatusCode::kInvalidArgument);
    EXPECT_EQ(server->submit(workload::Request{0, 0, 21}, 0.0).code(),
              StatusCode::kInvalidArgument);
}

TEST(Scheduler, EmptyRunYieldsEmptyReport)
{
    auto server = Server::create(small_spec());
    ASSERT_TRUE(server.is_ok());
    const auto report = server->run();
    ASSERT_TRUE(report.is_ok());
    EXPECT_EQ(report->submitted, 0u);
    EXPECT_EQ(report->completed, 0u);
    EXPECT_EQ(report->batches_formed, 0u);
}

TEST(Scheduler, FcfsOrderingAndGreedyBatching)
{
    SchedulerPolicy policy;
    policy.max_batch = 4;
    policy.max_queue_delay = 0.0; // greedy dispatch
    auto server = Server::create(small_spec(), policy);
    ASSERT_TRUE(server.is_ok());
    ASSERT_TRUE(server->submit(burst(8, 0.0)).is_ok());
    const auto report = server->run();
    ASSERT_TRUE(report.is_ok()) << report.status().to_string();

    ASSERT_EQ(report->completed, 8u);
    EXPECT_EQ(report->batches_formed, 2u);
    EXPECT_DOUBLE_EQ(report->mean_batch_size, 4.0);
    for (std::size_t i = 0; i < report->requests.size(); ++i) {
        // FCFS: dispatch order == arrival (id) order.
        EXPECT_EQ(report->requests[i].id, i);
        EXPECT_EQ(report->requests[i].batch_index, i / 4);
    }
    // First batch launches immediately; second waits for the engine.
    for (std::size_t i = 0; i < 4; ++i)
        EXPECT_DOUBLE_EQ(report->requests[i].queueing_delay, 0.0);
    for (std::size_t i = 4; i < 8; ++i)
        EXPECT_GT(report->requests[i].queueing_delay, 0.0);
}

TEST(Scheduler, MaxQueueDelayHonored)
{
    // A lone request with batch-mates that never come: the scheduler
    // must give up waiting exactly at max_queue_delay.
    SchedulerPolicy policy;
    policy.max_batch = 8;
    policy.max_queue_delay = 0.3;
    auto server = Server::create(small_spec(), policy);
    ASSERT_TRUE(server.is_ok());
    ASSERT_TRUE(server->submit(workload::Request{0, 128, 21}, 0.0).is_ok());
    const auto report = server->run();
    ASSERT_TRUE(report.is_ok());
    ASSERT_EQ(report->completed, 1u);
    EXPECT_NEAR(report->requests[0].queueing_delay, 0.3, 1e-12);

    // Greedy mode: no waiting at all.
    SchedulerPolicy greedy;
    greedy.max_batch = 8;
    greedy.max_queue_delay = 0.0;
    auto greedy_server = Server::create(small_spec(), greedy);
    ASSERT_TRUE(greedy_server.is_ok());
    ASSERT_TRUE(
        greedy_server->submit(workload::Request{0, 128, 21}, 0.0).is_ok());
    const auto greedy_report = greedy_server->run();
    ASSERT_TRUE(greedy_report.is_ok());
    EXPECT_DOUBLE_EQ(greedy_report->requests[0].queueing_delay, 0.0);
}

TEST(Scheduler, BatchLaunchesEarlyOnceFull)
{
    // Two requests 0.1 s apart with a generous delay budget: the batch
    // fills at 0.1 s and must launch then, not at the deadline.
    SchedulerPolicy policy;
    policy.max_batch = 2;
    policy.max_queue_delay = 5.0;
    auto server = Server::create(small_spec(), policy);
    ASSERT_TRUE(server.is_ok());
    ASSERT_TRUE(server->submit(workload::Request{0, 128, 21}, 0.0).is_ok());
    ASSERT_TRUE(server->submit(workload::Request{1, 128, 21}, 0.1).is_ok());
    const auto report = server->run();
    ASSERT_TRUE(report.is_ok());
    ASSERT_EQ(report->completed, 2u);
    EXPECT_EQ(report->batches_formed, 1u);
    EXPECT_NEAR(report->requests[0].queueing_delay, 0.1, 1e-12);
    EXPECT_NEAR(report->requests[1].queueing_delay, 0.0, 1e-12);
}

TEST(Scheduler, QueueCapShedsLoadAndDepthStaysBounded)
{
    SchedulerPolicy policy;
    policy.max_batch = 4;
    policy.max_queue_delay = 0.0;
    policy.max_queue_length = 8;
    auto server = Server::create(small_spec(), policy);
    ASSERT_TRUE(server.is_ok());
    ASSERT_TRUE(server->submit(burst(20, 0.0)).is_ok());
    const auto report = server->run();
    ASSERT_TRUE(report.is_ok());

    EXPECT_EQ(report->submitted, 20u);
    EXPECT_EQ(report->completed, 8u);
    EXPECT_EQ(report->rejected, 12u);
    EXPECT_EQ(report->rejected_ids.size(), 12u);
    EXPECT_LE(report->max_queue_depth, 8u);
    // FCFS admission: the first 8 ids survive.
    for (std::size_t i = 0; i < 8; ++i)
        EXPECT_EQ(report->requests[i].id, i);
}

TEST(Scheduler, ReportAggregatesAreConsistent)
{
    SchedulerPolicy policy;
    policy.max_batch = 4;
    policy.max_queue_delay = 0.1;
    SloSpec slo;
    slo.ttft_target = 1e9; // everything meets it
    auto server = Server::create(small_spec(), policy, slo);
    ASSERT_TRUE(server.is_ok());
    ASSERT_TRUE(server->submit(burst(6, 0.0)).is_ok());
    ASSERT_TRUE(server->submit(burst(3, 2.0, 6)).is_ok());
    const auto report = server->run();
    ASSERT_TRUE(report.is_ok());

    ASSERT_EQ(report->completed, 9u);
    EXPECT_EQ(report->total_tokens, 9u * 21u);
    EXPECT_DOUBLE_EQ(report->slo_attainment, 1.0);
    EXPECT_DOUBLE_EQ(report->goodput, report->throughput);
    EXPECT_GT(report->makespan, 0.0);
    EXPECT_NEAR(report->throughput,
                static_cast<double>(report->total_tokens) /
                    report->makespan,
                1e-9);
    // e2e >= ttft >= queueing delay for every request.
    for (const auto &r : report->requests) {
        EXPECT_GE(r.ttft, r.queueing_delay);
        EXPECT_GE(r.e2e_latency, r.ttft);
    }
    // Percentiles come from the shared nearest-rank helper.
    std::vector<double> ttfts;
    for (const auto &r : report->requests)
        ttfts.push_back(r.ttft);
    EXPECT_DOUBLE_EQ(report->ttft_percentile(99.0),
                     percentile_nearest_rank(ttfts, 99.0));
}

TEST(Scheduler, SloSplitsGoodputFromThroughput)
{
    // Impossible TTFT target: goodput collapses to zero while
    // throughput does not.
    SchedulerPolicy policy;
    policy.max_batch = 4;
    SloSpec slo;
    slo.ttft_target = 1e-6;
    auto server = Server::create(small_spec(), policy, slo);
    ASSERT_TRUE(server.is_ok());
    ASSERT_TRUE(server->submit(burst(4, 0.0)).is_ok());
    const auto report = server->run();
    ASSERT_TRUE(report.is_ok());
    EXPECT_DOUBLE_EQ(report->slo_attainment, 0.0);
    EXPECT_DOUBLE_EQ(report->goodput, 0.0);
    EXPECT_GT(report->throughput, 0.0);
}

TEST(Scheduler, ShimReproducesSeedAggregatesBitForBit)
{
    // The serve_workload shim must reproduce the seed's serving loop
    // exactly: same simulate_inference calls, same aggregation.
    const auto batches = workload::paper_workload(4);
    const ServingSpec base = small_spec();

    // Golden: the pre-Server loop, inlined.
    Seconds total_time = 0.0;
    std::uint64_t total_tokens = 0;
    std::vector<double> ttfts;
    std::vector<double> tbts;
    for (const auto &batch : batches) {
        ServingSpec spec = base;
        spec.batch = batch.size();
        spec.shape = batch.shape();
        spec.repeats = 1;
        spec.keep_records = false;
        const auto run = simulate_inference(spec);
        ASSERT_TRUE(run.is_ok());
        total_time += run->metrics.total_time;
        total_tokens += run->metrics.total_tokens;
        ttfts.push_back(run->metrics.ttft);
        tbts.push_back(run->metrics.tbt);
    }

    const auto shim = serve_workload(base, batches);
    ASSERT_TRUE(shim.is_ok()) << shim.status().to_string();
    EXPECT_EQ(shim->aggregate.ttft, mean_discarding_first(ttfts));
    EXPECT_EQ(shim->aggregate.tbt, mean_discarding_first(tbts));
    EXPECT_EQ(shim->aggregate.total_time, total_time);
    EXPECT_EQ(shim->aggregate.total_tokens, total_tokens);
    EXPECT_EQ(shim->aggregate.throughput,
              static_cast<double>(total_tokens) / total_time);
    ASSERT_EQ(shim->per_batch.size(), batches.size());
    for (std::size_t b = 0; b < batches.size(); ++b) {
        EXPECT_EQ(shim->per_batch[b].ttft, ttfts[b]);
        EXPECT_EQ(shim->per_batch[b].tbt, tbts[b]);
    }
    EXPECT_EQ(shim->padded_tokens, 0u);
}

TEST(Scheduler, ShimPropagatesEngineFailures)
{
    ServingSpec spec;
    spec.model = model::opt_config(OptVariant::kOpt175B);
    spec.memory = mem::ConfigKind::kNvdram;
    spec.placement = placement::PlacementKind::kAllCpu;
    spec.compress_weights = true;
    const auto batches = workload::paper_workload(500);
    EXPECT_EQ(serve_workload(spec, batches).status().code(),
              StatusCode::kCapacityExceeded);
}

TEST(SchedulerIntegration, HelmBeatsBaselineP99TtftOnNvdram)
{
    // The paper's HeLM-vs-Baseline latency gap (Sec. V-B) must survive
    // the serving front end: same arrival stream, same scheduler, HeLM
    // takes the p99 TTFT on NVDRAM.
    workload::ArrivalSpec arrivals;
    arrivals.kind = workload::ArrivalKind::kUniform; // deterministic
    arrivals.rate = 0.25;
    arrivals.duration = 40.0; // 9 requests, 4 s apart
    const auto stream = workload::generate_arrivals(arrivals);
    ASSERT_TRUE(stream.is_ok());

    auto p99_ttft = [&](placement::PlacementKind scheme) {
        ServingSpec spec;
        spec.model = model::opt_config(OptVariant::kOpt175B);
        spec.memory = mem::ConfigKind::kNvdram;
        spec.placement = scheme;
        spec.compress_weights = true;
        SchedulerPolicy policy;
        policy.max_batch = 2;
        policy.max_queue_delay = 0.5;
        auto server = Server::create(spec, policy);
        EXPECT_TRUE(server.is_ok()) << server.status().to_string();
        EXPECT_TRUE(server->submit(*stream).is_ok());
        auto report = server->run();
        EXPECT_TRUE(report.is_ok()) << report.status().to_string();
        EXPECT_EQ(report->completed, stream->size());
        return report->ttft_percentile(99.0);
    };

    const double baseline = p99_ttft(placement::PlacementKind::kBaseline);
    const double helm = p99_ttft(placement::PlacementKind::kHelm);
    EXPECT_LT(helm, baseline);
}

} // namespace
} // namespace helm::runtime
