/**
 * @file
 * Additional engine/metrics coverage: custom CXL bandwidth, overlap
 * summarization edge cases, and spill-report consistency.
 */
#include <gtest/gtest.h>

#include "model/opt.h"
#include "runtime/engine.h"

namespace helm::runtime {
namespace {

using model::OptVariant;

TEST(CustomCxl, BandwidthMonotone)
{
    // Faster expanders must never be slower end to end.
    ServingSpec spec;
    spec.model = model::opt_config(OptVariant::kOpt13B);
    spec.placement = placement::PlacementKind::kAllCpu;
    spec.batch = 1;
    spec.repeats = 2;
    spec.keep_records = false;
    double prev_tbt = 1e18;
    for (double gbps : {4.0, 8.0, 16.0, 32.0}) {
        spec.custom_cxl_bandwidth = Bandwidth::gb_per_s(gbps);
        const auto result = simulate_inference(spec);
        ASSERT_TRUE(result.is_ok());
        EXPECT_LT(result->metrics.tbt, prev_tbt);
        prev_tbt = result->metrics.tbt;
    }
}

TEST(CustomCxl, MatchesNamedConfigsAtTheirBandwidths)
{
    // A custom expander at 5.12 GB/s must replicate CXL-FPGA.
    ServingSpec spec;
    spec.model = model::opt_config(OptVariant::kOpt175B);
    spec.placement = placement::PlacementKind::kBaseline;
    spec.compress_weights = true;
    spec.batch = 1;
    spec.repeats = 2;
    spec.keep_records = false;

    spec.memory = mem::ConfigKind::kCxlFpga;
    const auto named = simulate_inference(spec);
    spec.memory = mem::ConfigKind::kNvdram; // ignored when custom set
    spec.custom_cxl_bandwidth = Bandwidth::gb_per_s(5.12);
    const auto custom = simulate_inference(spec);
    ASSERT_TRUE(named.is_ok());
    ASSERT_TRUE(custom.is_ok());
    EXPECT_NEAR(custom->metrics.tbt, named->metrics.tbt,
                named->metrics.tbt * 0.01);
}

TEST(CustomCxl, CanExceedPcieDmaPath)
{
    // Sec. V-D projection: a 40 GB/s expander beats the ~24.5 GB/s PCIe
    // DMA path that binds the DRAM configuration.
    ServingSpec spec;
    spec.model = model::opt_config(OptVariant::kOpt175B);
    spec.placement = placement::PlacementKind::kAllCpu;
    spec.compress_weights = true;
    spec.batch = 1;
    spec.repeats = 2;
    spec.keep_records = false;
    spec.custom_cxl_bandwidth = Bandwidth::gb_per_s(40.0);
    const auto cxl = simulate_inference(spec);
    spec.custom_cxl_bandwidth.reset();
    spec.memory = mem::ConfigKind::kDram;
    const auto dram = simulate_inference(spec);
    ASSERT_TRUE(cxl.is_ok());
    ASSERT_TRUE(dram.is_ok());
    EXPECT_LT(cxl->metrics.tbt, dram->metrics.tbt);
}

TEST(OverlapSummary, EmptyInputsYieldZeros)
{
    const auto s = summarize_overlap({}, gpu::Stage::kDecode, 0);
    EXPECT_DOUBLE_EQ(s.avg_compute, 0.0);
    EXPECT_DOUBLE_EQ(s.avg_transfer, 0.0);
    EXPECT_DOUBLE_EQ(s.mha_compute_over_ffn_load(), 0.0);
    EXPECT_DOUBLE_EQ(s.ffn_compute_over_mha_load(), 0.0);
}

TEST(OverlapSummary, SkipBatchesDiscardsColdRepeats)
{
    std::vector<LayerStepRecord> records;
    // Batch 0 (cold): inflated transfer; batch 1: steady state.
    for (std::uint64_t rep = 0; rep < 2; ++rep) {
        LayerStepRecord mha;
        mha.batch_index = rep;
        mha.type = model::LayerType::kMha;
        mha.stage = gpu::Stage::kDecode;
        mha.compute_time = 1.0;
        mha.transfer_time = rep == 0 ? 100.0 : 2.0;
        records.push_back(mha);
        LayerStepRecord ffn = mha;
        ffn.type = model::LayerType::kFfn;
        ffn.compute_time = 3.0;
        ffn.transfer_time = rep == 0 ? 100.0 : 4.0;
        records.push_back(ffn);
    }
    const auto all = summarize_overlap(records, gpu::Stage::kDecode, 0);
    const auto warm = summarize_overlap(records, gpu::Stage::kDecode, 1);
    EXPECT_GT(all.avg_transfer, warm.avg_transfer);
    EXPECT_DOUBLE_EQ(warm.avg_mha_transfer, 2.0);
    EXPECT_DOUBLE_EQ(warm.avg_ffn_transfer, 4.0);
    EXPECT_DOUBLE_EQ(warm.mha_compute_over_ffn_load(), 0.25);
    EXPECT_DOUBLE_EQ(warm.ffn_compute_over_mha_load(), 1.5);
}

TEST(OverlapSummary, EmbeddingLayersExcluded)
{
    std::vector<LayerStepRecord> records;
    LayerStepRecord emb;
    emb.type = model::LayerType::kInputEmbedding;
    emb.stage = gpu::Stage::kDecode;
    emb.compute_time = 1000.0;
    records.push_back(emb);
    const auto s = summarize_overlap(records, gpu::Stage::kDecode, 0);
    EXPECT_DOUBLE_EQ(s.avg_compute, 0.0);
}

TEST(SpillReport, ConsistentWithPlacement)
{
    ServingSpec spec;
    spec.model = model::opt_config(OptVariant::kOpt175B);
    spec.memory = mem::ConfigKind::kNvdram;
    spec.placement = placement::PlacementKind::kHelm;
    spec.compress_weights = true;
    spec.batch = 8; // forces HeLM to spill
    spec.repeats = 1;
    const auto result = simulate_inference(spec);
    ASSERT_TRUE(result.is_ok());
    const auto &spill = result->spill;
    EXPECT_TRUE(spill.fits);
    EXPECT_EQ(spill.gpu_weight_bytes_after,
              result->placement.tier_total(placement::Tier::kGpu));
    EXPECT_EQ(spill.gpu_weight_bytes_before - spill.spilled_bytes,
              spill.gpu_weight_bytes_after);
    if (spill.spilled()) {
        EXPECT_GT(spill.spilled_weights, 0u);
    }
}

TEST(Engine, DisablingCapacityEnforcementFailsWhenOverBudget)
{
    ServingSpec spec;
    spec.model = model::opt_config(OptVariant::kOpt175B);
    spec.memory = mem::ConfigKind::kNvdram;
    spec.placement = placement::PlacementKind::kHelm;
    spec.compress_weights = true;
    spec.batch = 8;
    spec.repeats = 1;
    spec.enforce_gpu_capacity = false;
    EXPECT_EQ(simulate_inference(spec).status().code(),
              StatusCode::kCapacityExceeded);
}

TEST(Engine, PcieGenerationAffectsDramRuns)
{
    ServingSpec spec;
    spec.model = model::opt_config(OptVariant::kOpt13B);
    spec.memory = mem::ConfigKind::kDram;
    spec.placement = placement::PlacementKind::kAllCpu;
    spec.batch = 1;
    spec.repeats = 2;
    spec.keep_records = false;
    spec.pcie = mem::PcieLink(3, 16);
    const auto gen3 = simulate_inference(spec);
    spec.pcie = mem::PcieLink(5, 16);
    const auto gen5 = simulate_inference(spec);
    ASSERT_TRUE(gen3.is_ok());
    ASSERT_TRUE(gen5.is_ok());
    // DRAM feeds faster than any link here, so the link is binding.
    EXPECT_LT(gen5->metrics.tbt, gen3->metrics.tbt);
}

} // namespace
} // namespace helm::runtime
