/**
 * @file
 * End-to-end smoke test: the full stack simulates a small model without
 * error and produces sane metrics.
 */
#include <gtest/gtest.h>

#include "core/helm.h"

namespace helm {
namespace {

TEST(Smoke, Version)
{
    EXPECT_STREQ(version(), "1.0.0");
    EXPECT_NE(std::string(paper_citation()).find("IISWC"),
              std::string::npos);
}

TEST(Smoke, SimulateSmallModelOnNvdram)
{
    runtime::ServingSpec spec;
    spec.model = model::opt_config(model::OptVariant::kOpt1_3B);
    spec.memory = mem::ConfigKind::kNvdram;
    spec.placement = placement::PlacementKind::kBaseline;
    spec.batch = 2;
    spec.repeats = 2;

    auto result = runtime::simulate_inference(spec);
    ASSERT_TRUE(result.is_ok()) << result.status().to_string();
    EXPECT_GT(result->metrics.ttft, 0.0);
    EXPECT_GT(result->metrics.tbt, 0.0);
    EXPECT_GT(result->metrics.throughput, 0.0);
    EXPECT_EQ(result->metrics.total_tokens, 2u * 2u * 21u);
    EXPECT_FALSE(result->records.empty());
}

TEST(Smoke, HelmBeatsBaselineOnNvdram175B)
{
    runtime::ServingSpec spec;
    spec.model = model::opt_config(model::OptVariant::kOpt175B);
    spec.memory = mem::ConfigKind::kNvdram;
    spec.compress_weights = true;
    spec.batch = 1;
    spec.repeats = 2;

    spec.placement = placement::PlacementKind::kBaseline;
    auto baseline = runtime::simulate_inference(spec);
    ASSERT_TRUE(baseline.is_ok()) << baseline.status().to_string();

    spec.placement = placement::PlacementKind::kHelm;
    auto helm = runtime::simulate_inference(spec);
    ASSERT_TRUE(helm.is_ok()) << helm.status().to_string();

    EXPECT_LT(helm->metrics.tbt, baseline->metrics.tbt);
}

} // namespace
} // namespace helm
