/**
 * @file
 * End-to-end CLI tests: run the real helmsim binary (path injected via
 * the HELMSIM_PATH compile definition) and check exit codes and
 * output.  Covers the flag-conflict diagnostics — an incompatible
 * combination must fail fast with a one-line message, not silently
 * measure the wrong thing — and the serve/cluster N=1 equivalence.
 */
#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include <sys/wait.h>

namespace {

struct CliResult
{
    int exit_code = -1;
    std::string output; //!< stdout + stderr interleaved
};

CliResult
run_cli(const std::string &args)
{
    CliResult result;
    const std::string command =
        std::string(HELMSIM_PATH) + " " + args + " 2>&1";
    FILE *pipe = popen(command.c_str(), "r");
    if (pipe == nullptr)
        return result;
    std::array<char, 4096> buffer;
    while (std::fgets(buffer.data(), buffer.size(), pipe) != nullptr)
        result.output += buffer.data();
    const int status = pclose(pipe);
    if (WIFEXITED(status))
        result.exit_code = WEXITSTATUS(status);
    return result;
}

/** Like run_cli but discards stderr: progress and timing lines carry
 *  wall-clock values, so byte-identity checks compare stdout only. */
CliResult
run_cli_stdout(const std::string &args)
{
    CliResult result;
    const std::string command =
        std::string(HELMSIM_PATH) + " " + args + " 2>/dev/null";
    FILE *pipe = popen(command.c_str(), "r");
    if (pipe == nullptr)
        return result;
    std::array<char, 4096> buffer;
    while (std::fgets(buffer.data(), buffer.size(), pipe) != nullptr)
        result.output += buffer.data();
    const int status = pclose(pipe);
    if (WIFEXITED(status))
        result.exit_code = WEXITSTATUS(status);
    return result;
}

/** The serving block common to `serve` and `cluster` output: drop the
 *  cluster-only header and the trailing per-GPU/port tables. */
std::string
serving_block(const std::string &output)
{
    const std::size_t start = output.find("OPT-1.3B on");
    if (start == std::string::npos)
        return output;
    const std::size_t end = output.find("Per-GPU utilization", start);
    return output.substr(
        start, end == std::string::npos ? end : end - start);
}

constexpr const char *kSmall =
    "--model OPT-1.3B --memory NVDRAM --placement All-CPU "
    "--rate 2 --duration 5";

TEST(Cli, HelpExitsZero)
{
    EXPECT_EQ(run_cli("--help").exit_code, 0);
    EXPECT_EQ(run_cli("cluster --help").exit_code, 0);
}

TEST(Cli, UnknownSubcommandFails)
{
    const CliResult result = run_cli("frobnicate");
    EXPECT_NE(result.exit_code, 0);
    EXPECT_NE(result.output.find("unknown subcommand"),
              std::string::npos);
}

TEST(Cli, KvNoPrefetchWithoutTieringFailsFast)
{
    for (const char *cmd : {"run", "serve", "cluster"}) {
        const CliResult result = run_cli(
            std::string(cmd) + " --model OPT-1.3B --kv-no-prefetch");
        EXPECT_EQ(result.exit_code, 2) << cmd;
        EXPECT_NE(result.output.find("--kv-no-prefetch"),
                  std::string::npos)
            << cmd;
        EXPECT_NE(result.output.find("--kv-tiering"), std::string::npos)
            << cmd;
        // One-line diagnostic: no usage dump appended.
        EXPECT_EQ(result.output.find("subcommands"), std::string::npos);
    }
}

TEST(Cli, KvTierKnobsWithoutTieringFailFast)
{
    EXPECT_EQ(run_cli("run --kv-host-gb 16").exit_code, 2);
    EXPECT_EQ(run_cli("serve --kv-block-tokens 32").exit_code, 2);
    EXPECT_EQ(run_cli("run --kv-eviction lru").exit_code, 2);
}

TEST(Cli, KvOffloadConflictsWithTiering)
{
    const CliResult result =
        run_cli("run --model OPT-1.3B --kv-offload --kv-tiering");
    EXPECT_EQ(result.exit_code, 2);
    EXPECT_NE(result.output.find("mutually exclusive"),
              std::string::npos);
}

TEST(Cli, ClusterRejectsRouterOutsideReplicaMode)
{
    const CliResult result =
        run_cli("cluster --gpus 2 --parallelism tensor --router jsq");
    EXPECT_EQ(result.exit_code, 2);
    EXPECT_NE(result.output.find("--router"), std::string::npos);
}

TEST(Cli, ClusterRejectsMicroBatchesOutsidePipelineMode)
{
    const CliResult result =
        run_cli("cluster --gpus 2 --parallelism replica "
                "--micro-batches 4");
    EXPECT_EQ(result.exit_code, 2);
    EXPECT_NE(result.output.find("--micro-batches"), std::string::npos);
}

TEST(Cli, ClusterRejectsArrivalFlagsWithSaturate)
{
    const CliResult result = run_cli("cluster --saturate --rate 3");
    EXPECT_EQ(result.exit_code, 2);
    EXPECT_NE(result.output.find("--saturate"), std::string::npos);
}

TEST(Cli, ClusterRejectsSaturateFlagsWithoutSaturate)
{
    const CliResult result = run_cli("cluster --batch 4");
    EXPECT_EQ(result.exit_code, 2);
    EXPECT_NE(result.output.find("--saturate"), std::string::npos);
}

TEST(Cli, ClusterRejectsUnknownParallelism)
{
    const CliResult result = run_cli("cluster --parallelism diagonal");
    EXPECT_EQ(result.exit_code, 2);
}

TEST(Cli, ClusterOneGpuReproducesServeExactly)
{
    const CliResult serve = run_cli(std::string("serve ") + kSmall);
    const CliResult clustered = run_cli(
        std::string("cluster --gpus 1 --parallelism replica ") + kSmall);
    ASSERT_EQ(serve.exit_code, 0) << serve.output;
    ASSERT_EQ(clustered.exit_code, 0) << clustered.output;
    // Identical serving metrics, bit for bit, through the real binary.
    EXPECT_EQ(serving_block(serve.output),
              serving_block(clustered.output));
}

TEST(Cli, SweepJobsOutputIsByteIdentical)
{
    constexpr const char *kGrid =
        "sweep --dims \"model=OPT-1.3B;memory=NVDRAM,DRAM;"
        "batch=1,2;placement=Baseline,All-CPU\" "
        "--pivot memory,batch,tokens_per_s";
    const CliResult sequential =
        run_cli_stdout(std::string(kGrid) + " --jobs 1");
    const CliResult parallel =
        run_cli_stdout(std::string(kGrid) + " --jobs 4");
    ASSERT_EQ(sequential.exit_code, 0) << sequential.output;
    ASSERT_EQ(parallel.exit_code, 0) << parallel.output;
    EXPECT_NE(sequential.output.find("tokens_per_s"), std::string::npos);
    EXPECT_EQ(parallel.output, sequential.output);
}

TEST(Cli, SweepReportsTimingSummary)
{
    const CliResult result = run_cli(
        "sweep --dims \"model=OPT-1.3B;batch=1,2\" --jobs 2");
    ASSERT_EQ(result.exit_code, 0) << result.output;
    EXPECT_NE(result.output.find("swept 2 points in"),
              std::string::npos);
    EXPECT_NE(result.output.find("points/s"), std::string::npos);
    EXPECT_NE(result.output.find("jobs=2"), std::string::npos);
}

TEST(Cli, TuneJobsOutputIsByteIdentical)
{
    constexpr const char *kSearch =
        "tune --model OPT-1.3B --batch-limit 4";
    const CliResult sequential =
        run_cli_stdout(std::string(kSearch) + " --jobs 1");
    const CliResult parallel =
        run_cli_stdout(std::string(kSearch) + " --jobs 4");
    ASSERT_EQ(sequential.exit_code, 0) << sequential.output;
    ASSERT_EQ(parallel.exit_code, 0) << parallel.output;
    EXPECT_NE(sequential.output.find("best:"), std::string::npos);
    EXPECT_EQ(parallel.output, sequential.output);
}

TEST(Cli, SchedulerKnobsRequireIterationScheduler)
{
    for (const char *cmd : {"serve", "cluster"}) {
        const CliResult result = run_cli(
            std::string(cmd) + " --model OPT-1.3B --deadline-ms 5000");
        EXPECT_EQ(result.exit_code, 2) << cmd;
        EXPECT_NE(result.output.find("--deadline-ms"),
                  std::string::npos)
            << cmd;
        EXPECT_NE(result.output.find("--scheduler"), std::string::npos)
            << cmd;
    }
    EXPECT_EQ(run_cli("serve --max-preemptions 2").exit_code, 2);
    EXPECT_EQ(run_cli("serve --kv-swap-exposed").exit_code, 2);
}

TEST(Cli, MaxQueueDelayConflictsWithContinuousSchedulers)
{
    const CliResult result = run_cli(
        "serve --model OPT-1.3B --scheduler continuous "
        "--max-queue-delay-ms 100");
    EXPECT_EQ(result.exit_code, 2);
    EXPECT_NE(result.output.find("--max-queue-delay-ms"),
              std::string::npos);
}

TEST(Cli, BurstKnobsRequireModulatedArrival)
{
    const CliResult result =
        run_cli("serve --model OPT-1.3B --burst-factor 4");
    EXPECT_EQ(result.exit_code, 2);
    EXPECT_NE(result.output.find("--burst-factor"), std::string::npos);
    EXPECT_NE(result.output.find("--arrival"), std::string::npos);

    // Diurnal has no duty cycle.
    EXPECT_EQ(run_cli("serve --model OPT-1.3B --arrival diurnal "
                      "--burst-duty 0.5")
                  .exit_code,
              2);
}

TEST(Cli, UnknownSchedulerFailsFast)
{
    const CliResult result =
        run_cli("serve --model OPT-1.3B --scheduler lifo");
    EXPECT_EQ(result.exit_code, 2);
    EXPECT_NE(result.output.find("fcfs | continuous | edf"),
              std::string::npos);
}

TEST(Cli, ClusterRejectsIterationSchedulersBeyondOneGpu)
{
    const CliResult result = run_cli(
        "cluster --model OPT-1.3B --gpus 2 --scheduler edf "
        "--rate 2 --duration 5");
    EXPECT_EQ(result.exit_code, 2);
    EXPECT_NE(result.output.find("--scheduler"), std::string::npos);

    const CliResult saturate =
        run_cli("cluster --saturate --scheduler continuous");
    EXPECT_EQ(saturate.exit_code, 2);
    EXPECT_NE(saturate.output.find("--saturate"), std::string::npos);
}

TEST(Cli, ExplicitFcfsSchedulerFlagIsByteIdenticalToDefault)
{
    const CliResult plain = run_cli_stdout(std::string("serve ") + kSmall);
    const CliResult fcfs = run_cli_stdout(
        std::string("serve --scheduler fcfs ") + kSmall);
    ASSERT_EQ(plain.exit_code, 0) << plain.output;
    ASSERT_EQ(fcfs.exit_code, 0) << fcfs.output;
    EXPECT_EQ(fcfs.output, plain.output);
    // No scheduler section leaks into fcfs output.
    EXPECT_EQ(plain.output.find("scheduler:"), std::string::npos);
}

TEST(Cli, EdfServePrintsSchedulerAndSwapSections)
{
    const CliResult result = run_cli_stdout(
        std::string("serve --scheduler edf --deadline-ms 20000 ") +
        kSmall);
    ASSERT_EQ(result.exit_code, 0) << result.output;
    EXPECT_NE(result.output.find("scheduler:"), std::string::npos);
    EXPECT_NE(result.output.find("edf"), std::string::npos);
    EXPECT_NE(result.output.find("kv swap"), std::string::npos);
    EXPECT_NE(result.output.find("deadlines:"), std::string::npos);
}

TEST(Cli, EdfTraceShowsKvSwapTrackAndFcfsTraceDoesNot)
{
    // Hand-crafted preemption microcosm: two long lax jobs hold both
    // slots when two urgent tight-deadline jobs land, forcing EDF to
    // demote and later promote the victims' KV.  The chrome trace must
    // draw that traffic; the fcfs trace of the same stream must not
    // even declare the track.
    const std::string arrivals = "/tmp/helm_cli_swap_arrivals.txt";
    {
        std::ofstream file(arrivals);
        file << "0.0 256 64 0 1000.0\n0.0 256 64 0 1000.0\n"
                "0.1 256 64 0 1000.0\n5.0 64 8 1 9.0\n5.1 64 8 1 9.2\n";
    }
    const std::string base =
        "serve --model OPT-1.3B --memory NVDRAM --placement All-CPU "
        "--arrivals " +
        arrivals + " --max-batch 2 ";

    const std::string edf_trace = "/tmp/helm_cli_swap_edf_trace.json";
    const CliResult edf = run_cli_stdout(
        base + "--scheduler edf --tenants 2 --trace " + edf_trace);
    ASSERT_EQ(edf.exit_code, 0) << edf.output;
    std::ifstream edf_file(edf_trace);
    std::stringstream edf_json;
    edf_json << edf_file.rdbuf();
    EXPECT_NE(edf_json.str().find("KV swap (preemption)"),
              std::string::npos);
    EXPECT_NE(edf_json.str().find("KV demote r"), std::string::npos);
    EXPECT_NE(edf_json.str().find("KV promote r"), std::string::npos);

    const std::string fcfs_trace = "/tmp/helm_cli_swap_fcfs_trace.json";
    const CliResult fcfs = run_cli_stdout(base + "--trace " + fcfs_trace);
    ASSERT_EQ(fcfs.exit_code, 0) << fcfs.output;
    std::ifstream fcfs_file(fcfs_trace);
    std::stringstream fcfs_json;
    fcfs_json << fcfs_file.rdbuf();
    EXPECT_GT(fcfs_json.str().size(), 0u);
    EXPECT_EQ(fcfs_json.str().find("KV swap"), std::string::npos);
    std::remove(arrivals.c_str());
    std::remove(edf_trace.c_str());
    std::remove(fcfs_trace.c_str());
}

TEST(Cli, DevicesListsTheWholeZoo)
{
    const CliResult result = run_cli("devices");
    ASSERT_EQ(result.exit_code, 0) << result.output;
    for (const char *name :
         {"DRAM", "NVDRAM", "MemoryMode", "SSD", "FSDAX", "CXL-FPGA",
          "CXL-ASIC", "NDP-DIMM", "HBF"}) {
        EXPECT_NE(result.output.find(name), std::string::npos) << name;
    }
    // Tier column distinguishes host-tier from storage-tier devices.
    EXPECT_NE(result.output.find("storage"), std::string::npos);
    EXPECT_NE(result.output.find("host"), std::string::npos);
}

TEST(Cli, RunDeviceZooConflictsFailFastNamingThePair)
{
    // --memory and --device-zoo both select the host memory.
    CliResult result = run_cli(
        "run --model OPT-1.3B --memory NVDRAM --device-zoo NDP-DIMM");
    EXPECT_EQ(result.exit_code, 2);
    EXPECT_NE(result.output.find("--memory"), std::string::npos);
    EXPECT_NE(result.output.find("--device-zoo"), std::string::npos);
    // One-line diagnostic: no usage dump appended.
    EXPECT_EQ(result.output.find("subcommands"), std::string::npos);

    // --cxl-gbps and --device-zoo both replace the host tier.
    result = run_cli(
        "run --model OPT-1.3B --cxl-gbps 32 --device-zoo HBF");
    EXPECT_EQ(result.exit_code, 2);
    EXPECT_NE(result.output.find("--cxl-gbps"), std::string::npos);
    EXPECT_NE(result.output.find("--device-zoo"), std::string::npos);

    // --compute-site without an NDP-capable zoo device.
    result = run_cli("run --model OPT-1.3B --compute-site auto");
    EXPECT_EQ(result.exit_code, 2);
    EXPECT_NE(result.output.find("--compute-site"), std::string::npos);
    EXPECT_NE(result.output.find("--device-zoo"), std::string::npos);
}

TEST(Cli, RunOnZooDeviceReportsNearDataSteps)
{
    const CliResult result = run_cli_stdout(
        "run --model OPT-1.3B --device-zoo NDP-DIMM "
        "--compute-site auto --placement All-CPU --batch 4");
    ASSERT_EQ(result.exit_code, 0) << result.output;
    EXPECT_NE(result.output.find("near-data"), std::string::npos);
}

TEST(Cli, ZooSubcommandPrintsAFrontier)
{
    const CliResult result = run_cli_stdout(
        "zoo --model OPT-1.3B --devices DRAM,NDP-DIMM --batches 1,4 "
        "--no-anchor --no-hbf");
    ASSERT_EQ(result.exit_code, 0) << result.output;
    EXPECT_NE(result.output.find("frontier"), std::string::npos);
    EXPECT_NE(result.output.find("NDP-DIMM"), std::string::npos);
}

TEST(Cli, ZooUnknownDeviceFailsFast)
{
    const CliResult result =
        run_cli("zoo --model OPT-1.3B --devices DRAM,abacus");
    EXPECT_NE(result.exit_code, 0);
    EXPECT_NE(result.output.find("abacus"), std::string::npos);
}

TEST(Cli, TuneDeviceZooConflictsWithMemory)
{
    const CliResult result = run_cli(
        "tune --model OPT-1.3B --memory NVDRAM --device-zoo NDP-DIMM");
    EXPECT_EQ(result.exit_code, 2);
    EXPECT_NE(result.output.find("--memory"), std::string::npos);
    EXPECT_NE(result.output.find("--device-zoo"), std::string::npos);
}

TEST(Cli, ClusterSaturateReportsPortUtilization)
{
    const CliResult result = run_cli(
        "cluster --model OPT-1.3B --memory NVDRAM --placement All-CPU "
        "--gpus 2 --parallelism tensor --saturate");
    ASSERT_EQ(result.exit_code, 0) << result.output;
    EXPECT_NE(result.output.find("host-read"), std::string::npos);
    EXPECT_NE(result.output.find("Per-GPU utilization"),
              std::string::npos);
}

} // namespace
