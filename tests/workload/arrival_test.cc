/**
 * @file
 * Unit tests for the arrival process (workload/arrival.h).
 */
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>

#include "workload/arrival.h"

namespace helm::workload {
namespace {

TEST(Arrival, ValidatesSpec)
{
    ArrivalSpec bad_rate;
    bad_rate.rate = 0.0;
    EXPECT_EQ(generate_arrivals(bad_rate).status().code(),
              StatusCode::kInvalidArgument);

    ArrivalSpec bad_duration;
    bad_duration.duration = -1.0;
    EXPECT_EQ(generate_arrivals(bad_duration).status().code(),
              StatusCode::kInvalidArgument);

    ArrivalSpec bad_tokens;
    bad_tokens.output_tokens = 0;
    EXPECT_EQ(generate_arrivals(bad_tokens).status().code(),
              StatusCode::kInvalidArgument);
}

TEST(Arrival, DeterministicForSeed)
{
    ArrivalSpec spec;
    spec.rate = 5.0;
    spec.duration = 20.0;
    spec.seed = 123;
    const auto a = generate_arrivals(spec);
    const auto b = generate_arrivals(spec);
    ASSERT_TRUE(a.is_ok());
    ASSERT_TRUE(b.is_ok());
    ASSERT_EQ(a->size(), b->size());
    for (std::size_t i = 0; i < a->size(); ++i) {
        EXPECT_DOUBLE_EQ((*a)[i].arrival, (*b)[i].arrival);
        EXPECT_EQ((*a)[i].request.id, (*b)[i].request.id);
    }

    spec.seed = 124;
    const auto c = generate_arrivals(spec);
    ASSERT_TRUE(c.is_ok());
    bool differs = c->size() != a->size();
    for (std::size_t i = 0; !differs && i < a->size(); ++i)
        differs = (*a)[i].arrival != (*c)[i].arrival;
    EXPECT_TRUE(differs);
}

TEST(Arrival, TimesOrderedInsideHorizonIdsSequential)
{
    ArrivalSpec spec;
    spec.rate = 10.0;
    spec.duration = 50.0;
    const auto stream = generate_arrivals(spec);
    ASSERT_TRUE(stream.is_ok());
    ASSERT_FALSE(stream->empty());
    for (std::size_t i = 0; i < stream->size(); ++i) {
        const auto &timed = (*stream)[i];
        EXPECT_EQ(timed.request.id, i);
        EXPECT_GE(timed.arrival, 0.0);
        EXPECT_LT(timed.arrival, spec.duration);
        if (i > 0)
            EXPECT_GE(timed.arrival, (*stream)[i - 1].arrival);
        EXPECT_EQ(timed.request.prompt_tokens, spec.prompt_tokens);
        EXPECT_EQ(timed.request.output_tokens, spec.output_tokens);
    }
}

TEST(Arrival, PoissonCountNearRateTimesDuration)
{
    ArrivalSpec spec;
    spec.rate = 10.0;
    spec.duration = 100.0;
    const auto stream = generate_arrivals(spec);
    ASSERT_TRUE(stream.is_ok());
    // Mean 1000, sigma ~31.6; +-20 % is ~6 sigma.
    EXPECT_GT(stream->size(), 800u);
    EXPECT_LT(stream->size(), 1200u);
}

TEST(Arrival, UniformKindIsExactlyPaced)
{
    ArrivalSpec spec;
    spec.kind = ArrivalKind::kUniform;
    spec.rate = 2.0;
    spec.duration = 10.0;
    const auto stream = generate_arrivals(spec);
    ASSERT_TRUE(stream.is_ok());
    // Gaps of 0.5 s starting at 0.5: 19 arrivals fall inside [0, 10).
    ASSERT_EQ(stream->size(), 19u);
    for (std::size_t i = 0; i < stream->size(); ++i) {
        EXPECT_NEAR((*stream)[i].arrival,
                    0.5 * static_cast<double>(i + 1), 1e-9);
    }
}

TEST(Arrival, MaxRequestsCapsTheStream)
{
    ArrivalSpec spec;
    spec.rate = 100.0;
    spec.duration = 100.0;
    spec.max_requests = 7;
    const auto stream = generate_arrivals(spec);
    ASSERT_TRUE(stream.is_ok());
    EXPECT_EQ(stream->size(), 7u);
}

TEST(Arrival, VariableLengthsRespectFloorAndCap)
{
    ArrivalSpec spec;
    spec.rate = 20.0;
    spec.duration = 50.0;
    spec.variable_lengths = true;
    const auto stream = generate_arrivals(spec);
    ASSERT_TRUE(stream.is_ok());
    bool saw_non_median = false;
    for (const auto &timed : *stream) {
        EXPECT_GE(timed.request.prompt_tokens, spec.min_prompt);
        EXPECT_LE(timed.request.prompt_tokens, spec.prompt_tokens * 4);
        saw_non_median |=
            timed.request.prompt_tokens != spec.prompt_tokens;
    }
    EXPECT_TRUE(saw_non_median);
}

TEST(Arrival, TraceRoundTrips)
{
    ArrivalSpec spec;
    spec.rate = 3.0;
    spec.duration = 15.0;
    spec.variable_lengths = true;
    const auto stream = generate_arrivals(spec);
    ASSERT_TRUE(stream.is_ok());

    const std::string path = "/tmp/helm_arrival_trace_test.txt";
    ASSERT_TRUE(save_arrival_trace(*stream, path).is_ok());
    const auto loaded = load_arrival_trace(path);
    ASSERT_TRUE(loaded.is_ok()) << loaded.status().to_string();
    ASSERT_EQ(loaded->size(), stream->size());
    for (std::size_t i = 0; i < stream->size(); ++i) {
        EXPECT_DOUBLE_EQ((*loaded)[i].arrival, (*stream)[i].arrival);
        EXPECT_EQ((*loaded)[i].request.prompt_tokens,
                  (*stream)[i].request.prompt_tokens);
        EXPECT_EQ((*loaded)[i].request.output_tokens,
                  (*stream)[i].request.output_tokens);
    }
    std::remove(path.c_str());
}

TEST(Arrival, TraceLoaderRejectsBadInput)
{
    EXPECT_EQ(load_arrival_trace("/nonexistent/trace").status().code(),
              StatusCode::kNotFound);

    const std::string path = "/tmp/helm_arrival_bad_trace.txt";
    {
        std::FILE *f = std::fopen(path.c_str(), "w");
        ASSERT_NE(f, nullptr);
        std::fputs("1.0 128 21\n0.5 128 21\n", f); // time goes backwards
        std::fclose(f);
    }
    EXPECT_EQ(load_arrival_trace(path).status().code(),
              StatusCode::kInvalidArgument);
    {
        std::FILE *f = std::fopen(path.c_str(), "w");
        ASSERT_NE(f, nullptr);
        std::fputs("1.0 128\n", f); // missing output tokens
        std::fclose(f);
    }
    EXPECT_EQ(load_arrival_trace(path).status().code(),
              StatusCode::kInvalidArgument);
    std::remove(path.c_str());
}

TEST(Arrival, BurstKnobsValidated)
{
    ArrivalSpec shrinking;
    shrinking.kind = ArrivalKind::kBursty;
    shrinking.burst_factor = 0.5;
    EXPECT_EQ(generate_arrivals(shrinking).status().code(),
              StatusCode::kInvalidArgument);

    ArrivalSpec no_period;
    no_period.kind = ArrivalKind::kDiurnal;
    no_period.burst_period = 0.0;
    EXPECT_EQ(generate_arrivals(no_period).status().code(),
              StatusCode::kInvalidArgument);

    ArrivalSpec full_duty;
    full_duty.kind = ArrivalKind::kBursty;
    full_duty.burst_duty = 1.0;
    EXPECT_EQ(generate_arrivals(full_duty).status().code(),
              StatusCode::kInvalidArgument);

    ArrivalSpec no_tenants;
    no_tenants.tenants = 0;
    EXPECT_EQ(generate_arrivals(no_tenants).status().code(),
              StatusCode::kInvalidArgument);
}

TEST(Arrival, BurstyClumpsArrivalsInsideTheDutyWindow)
{
    // With a strong burst the on-phase must hold more arrivals than
    // its share of the timeline.
    ArrivalSpec spec;
    spec.kind = ArrivalKind::kBursty;
    spec.rate = 4.0;
    spec.duration = 40.0;
    spec.burst_factor = 10.0;
    spec.burst_period = 8.0;
    spec.burst_duty = 0.25;
    const auto stream = generate_arrivals(spec);
    ASSERT_TRUE(stream.is_ok());
    ASSERT_GT(stream->size(), 20u);
    std::size_t in_burst = 0;
    for (const auto &timed : *stream) {
        const double phase =
            std::fmod(timed.arrival, spec.burst_period) /
            spec.burst_period;
        if (phase < spec.burst_duty)
            ++in_burst;
    }
    EXPECT_GT(static_cast<double>(in_burst) /
                  static_cast<double>(stream->size()),
              2.0 * spec.burst_duty);
}

TEST(Arrival, TenantsAssignedRoundRobinAndDeadlinesStamped)
{
    ArrivalSpec spec;
    spec.rate = 5.0;
    spec.duration = 10.0;
    spec.tenants = 3;
    spec.deadline = 2.5;
    const auto stream = generate_arrivals(spec);
    ASSERT_TRUE(stream.is_ok());
    ASSERT_GT(stream->size(), 3u);
    for (const auto &timed : *stream) {
        EXPECT_EQ(timed.request.tenant, timed.request.id % 3);
        EXPECT_DOUBLE_EQ(timed.deadline, timed.arrival + 2.5);
    }
}

TEST(Arrival, MergeOrdersByTimeAndReassignsIds)
{
    ArrivalSpec lax;
    lax.rate = 2.0;
    lax.duration = 10.0;
    lax.seed = 3;
    ArrivalSpec urgent;
    urgent.rate = 1.0;
    urgent.duration = 10.0;
    urgent.deadline = 4.0;
    urgent.seed = 11;
    auto a = generate_arrivals(lax);
    auto b = generate_arrivals(urgent);
    ASSERT_TRUE(a.is_ok());
    ASSERT_TRUE(b.is_ok());
    for (auto &timed : *b)
        timed.request.tenant = 1;

    const auto merged = merge_arrivals({*a, *b});
    ASSERT_EQ(merged.size(), a->size() + b->size());
    std::size_t urgent_seen = 0;
    for (std::size_t i = 0; i < merged.size(); ++i) {
        EXPECT_EQ(merged[i].request.id, i); // ids follow merged order
        if (i > 0)
            EXPECT_GE(merged[i].arrival, merged[i - 1].arrival);
        if (merged[i].request.tenant == 1) {
            ++urgent_seen;
            EXPECT_GT(merged[i].deadline, merged[i].arrival);
        } else {
            EXPECT_DOUBLE_EQ(merged[i].deadline, 0.0);
        }
    }
    EXPECT_EQ(urgent_seen, b->size());
}

} // namespace
} // namespace helm::workload
