/**
 * @file
 * Unit tests for workload-file loading/saving.
 */
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "workload/workload.h"

namespace helm::workload {
namespace {

class WorkloadFileTest : public ::testing::Test
{
  protected:
    void
    TearDown() override
    {
        std::remove(path_.c_str());
    }

    void
    write(const std::string &content)
    {
        std::ofstream file(path_);
        file << content;
    }

    std::string path_ = "/tmp/helm_workload_test.txt";
};

TEST_F(WorkloadFileTest, ParsesBatchesAndComments)
{
    write("# header comment\n"
          "128 21\n"
          "64 21   # inline comment\n"
          "\n"
          "256 8\n");
    const auto batches = load_workload_file(path_);
    ASSERT_TRUE(batches.is_ok()) << batches.status().to_string();
    ASSERT_EQ(batches->size(), 2u);
    EXPECT_EQ((*batches)[0].size(), 2u);
    EXPECT_EQ((*batches)[1].size(), 1u);
    EXPECT_EQ((*batches)[0].requests[0].prompt_tokens, 128u);
    EXPECT_EQ((*batches)[0].requests[1].prompt_tokens, 64u);
    EXPECT_EQ((*batches)[1].requests[0].output_tokens, 8u);
    // Ids assigned in file order.
    EXPECT_EQ((*batches)[0].requests[0].id, 0u);
    EXPECT_EQ((*batches)[1].requests[0].id, 2u);
}

TEST_F(WorkloadFileTest, MissingFile)
{
    const auto batches = load_workload_file("/nonexistent/workload");
    EXPECT_EQ(batches.status().code(), StatusCode::kNotFound);
}

TEST_F(WorkloadFileTest, MalformedLineReportsLineNumber)
{
    write("128 21\nbananas\n");
    const auto batches = load_workload_file(path_);
    ASSERT_FALSE(batches.is_ok());
    EXPECT_NE(batches.status().message().find(":2"), std::string::npos);
}

TEST_F(WorkloadFileTest, ZeroTokensRejected)
{
    write("0 21\n");
    EXPECT_EQ(load_workload_file(path_).status().code(),
              StatusCode::kInvalidArgument);
    write("128 0\n");
    EXPECT_EQ(load_workload_file(path_).status().code(),
              StatusCode::kInvalidArgument);
}

TEST_F(WorkloadFileTest, TrailingContentRejected)
{
    write("128 21 99\n");
    const auto batches = load_workload_file(path_);
    ASSERT_FALSE(batches.is_ok());
    EXPECT_NE(batches.status().message().find("trailing"),
              std::string::npos);
}

TEST_F(WorkloadFileTest, EmptyFileRejected)
{
    write("# only comments\n\n");
    EXPECT_EQ(load_workload_file(path_).status().code(),
              StatusCode::kInvalidArgument);
}

TEST_F(WorkloadFileTest, RoundTrip)
{
    const auto original = paper_workload(3);
    ASSERT_TRUE(save_workload_file(original, path_).is_ok());
    const auto loaded = load_workload_file(path_);
    ASSERT_TRUE(loaded.is_ok());
    ASSERT_EQ(loaded->size(), original.size());
    for (std::size_t b = 0; b < original.size(); ++b) {
        ASSERT_EQ((*loaded)[b].size(), original[b].size());
        for (std::size_t r = 0; r < original[b].requests.size(); ++r) {
            EXPECT_EQ((*loaded)[b].requests[r].prompt_tokens,
                      original[b].requests[r].prompt_tokens);
            EXPECT_EQ((*loaded)[b].requests[r].output_tokens,
                      original[b].requests[r].output_tokens);
        }
    }
}

TEST_F(WorkloadFileTest, SaveToBadPathFails)
{
    EXPECT_FALSE(save_workload_file(paper_workload(1),
                                    "/nonexistent-dir/wl.txt")
                     .is_ok());
}

} // namespace
} // namespace helm::workload
