/**
 * @file
 * Unit tests for the synthetic workload generator.
 */
#include <gtest/gtest.h>

#include <set>

#include "workload/workload.h"

namespace helm::workload {
namespace {

TEST(Workload, PaperDefaults)
{
    // Sec. III-B: 128-token inputs, 21 output tokens, 10 repeats.
    const auto batches = paper_workload(8);
    EXPECT_EQ(batches.size(), 10u);
    for (const auto &batch : batches) {
        EXPECT_EQ(batch.size(), 8u);
        for (const auto &req : batch.requests) {
            EXPECT_EQ(req.prompt_tokens, 128u);
            EXPECT_EQ(req.output_tokens, 21u);
        }
    }
}

TEST(Workload, ShapeReflectsPaddedLengths)
{
    const auto batches = paper_workload(4);
    const auto shape = batches.front().shape();
    EXPECT_EQ(shape.prompt_tokens, 128u);
    EXPECT_EQ(shape.output_tokens, 21u);
    EXPECT_EQ(shape.max_context(), 149u);
}

TEST(Workload, RequestIdsUnique)
{
    const auto batches = paper_workload(4);
    std::set<std::uint64_t> ids;
    std::size_t total = 0;
    for (const auto &batch : batches) {
        for (const auto &req : batch.requests) {
            ids.insert(req.id);
            ++total;
        }
    }
    EXPECT_EQ(ids.size(), total);
}

TEST(Workload, VariableLengthsDeterministicPerSeed)
{
    WorkloadSpec spec;
    spec.variable_lengths = true;
    const auto a = generate_batches(spec, 8, 3);
    const auto b = generate_batches(spec, 8, 3);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        for (std::size_t j = 0; j < a[i].requests.size(); ++j) {
            EXPECT_EQ(a[i].requests[j].prompt_tokens,
                      b[i].requests[j].prompt_tokens);
        }
    }
}

TEST(Workload, VariableLengthsRespectBounds)
{
    WorkloadSpec spec;
    spec.variable_lengths = true;
    const auto batches = generate_batches(spec, 32, 8);
    bool saw_variation = false;
    std::uint64_t first = 0;
    for (const auto &batch : batches) {
        for (const auto &req : batch.requests) {
            EXPECT_GE(req.prompt_tokens, spec.min_prompt);
            EXPECT_LE(req.prompt_tokens, spec.prompt_tokens * 4);
            if (first == 0)
                first = req.prompt_tokens;
            else if (req.prompt_tokens != first)
                saw_variation = true;
        }
    }
    EXPECT_TRUE(saw_variation);
}

TEST(Workload, DifferentSeedsDiffer)
{
    WorkloadSpec a, b;
    a.variable_lengths = b.variable_lengths = true;
    b.seed = a.seed + 1;
    const auto ba = generate_batches(a, 16, 2);
    const auto bb = generate_batches(b, 16, 2);
    bool differ = false;
    for (std::size_t i = 0; i < ba.size() && !differ; ++i) {
        for (std::size_t j = 0; j < ba[i].requests.size(); ++j) {
            if (ba[i].requests[j].prompt_tokens !=
                bb[i].requests[j].prompt_tokens) {
                differ = true;
                break;
            }
        }
    }
    EXPECT_TRUE(differ);
}

TEST(Workload, PaddedMaxima)
{
    Batch batch;
    batch.requests = {{0, 100, 10}, {1, 250, 21}, {2, 30, 5}};
    EXPECT_EQ(batch.max_prompt_tokens(), 250u);
    EXPECT_EQ(batch.max_output_tokens(), 21u);
    EXPECT_EQ(batch.shape().max_context(), 271u);
}

} // namespace
} // namespace helm::workload
