/**
 * @file
 * Tests for the multi-window SLO burn-rate evaluator
 * (telemetry/burnrate.h): burn arithmetic, the both-windows firing
 * rule, hysteresis on clear, zero-traffic behaviour, and peak-burn
 * tracking.
 */
#include <gtest/gtest.h>

#include "telemetry/burnrate.h"

namespace helm::telemetry {
namespace {

constexpr double kTol = 1e-12;

BurnRatePolicy
simple_policy()
{
    BurnRatePolicy policy;
    policy.slo = "availability";
    policy.objective = 0.9; // error budget 0.1
    policy.fast_window = 10.0;
    policy.slow_window = 10.0;
    policy.threshold = 1.0;
    policy.clear_fraction = 0.5;
    policy.buckets = 10;
    return policy;
}

TEST(BurnRate, BurnIsBadFractionOverBudget)
{
    BurnRateEvaluator eval(simple_policy());
    eval.observe(0.5, 9, 1); // bad fraction 0.1 / budget 0.1 = 1.0
    EXPECT_NEAR(eval.fast_burn(), 1.0, kTol);
    EXPECT_NEAR(eval.slow_burn(), 1.0, kTol);
    // Burn 1.0 meets the threshold exactly: spends the budget on
    // schedule, and >= fires.
    EXPECT_TRUE(eval.firing());
    EXPECT_EQ(eval.fired_count(), 1u);
    ASSERT_EQ(eval.events().size(), 1u);
    EXPECT_TRUE(eval.events()[0].firing);
    EXPECT_NEAR(eval.events()[0].at, 0.5, kTol);
}

TEST(BurnRate, FiringNeedsBothWindowsOverThreshold)
{
    BurnRatePolicy policy = simple_policy();
    policy.fast_window = 10.0;
    policy.slow_window = 100.0;
    BurnRateEvaluator eval(policy);

    // History: plenty of good traffic inside the slow window only.
    eval.observe(5.0, 190, 0);
    // A burst of failures at t=95: the fast window sees only the
    // burst (burn 10), but the slow window still holds the history
    // (bad fraction 10/200 -> burn 0.5 < 1).
    eval.observe(95.0, 0, 10);
    EXPECT_NEAR(eval.fast_burn(), 10.0, kTol);
    EXPECT_NEAR(eval.slow_burn(), 0.5, kTol);
    EXPECT_FALSE(eval.firing());
    EXPECT_EQ(eval.fired_count(), 0u);
    // Peak burn tracks min(fast, slow): the slow window's 0.5 caps it,
    // never the fast window's 10.
    EXPECT_NEAR(eval.peak_burn(), 0.5, kTol);

    // Sustained failures push the slow window over too -> fires.
    eval.observe(96.0, 0, 200);
    EXPECT_GE(eval.slow_burn(), 1.0);
    EXPECT_TRUE(eval.firing());
    EXPECT_EQ(eval.fired_count(), 1u);
}

TEST(BurnRate, ClearsWithHysteresis)
{
    BurnRateEvaluator eval(simple_policy());
    eval.observe(1.0, 0, 1); // burn 10 -> fires
    ASSERT_TRUE(eval.firing());

    // Recovery: bad fraction 1/15 -> burn 0.667.  Below the firing
    // threshold but above threshold * clear_fraction = 0.5, so the
    // alert holds (no flapping).
    eval.observe(2.0, 14, 0);
    EXPECT_LT(eval.fast_burn(), 1.0);
    EXPECT_GT(eval.fast_burn(), 0.5);
    EXPECT_TRUE(eval.firing());
    EXPECT_EQ(eval.cleared_count(), 0u);

    // More good traffic: bad fraction 1/35 -> burn 0.286 < 0.5.
    eval.observe(3.0, 20, 0);
    EXPECT_LT(eval.fast_burn(), 0.5);
    EXPECT_FALSE(eval.firing());
    EXPECT_EQ(eval.cleared_count(), 1u);
    ASSERT_EQ(eval.events().size(), 2u);
    EXPECT_FALSE(eval.events()[1].firing);
}

TEST(BurnRate, ZeroTrafficBurnsNothing)
{
    BurnRateEvaluator eval(simple_policy());
    eval.advance(5.0);
    EXPECT_DOUBLE_EQ(eval.fast_burn(), 0.0);
    EXPECT_DOUBLE_EQ(eval.slow_burn(), 0.0);
    EXPECT_FALSE(eval.firing());
    EXPECT_DOUBLE_EQ(eval.peak_burn(), 0.0);

    // A firing alert clears once the traffic ages out of both windows
    // (burn 0 < clear threshold).
    eval.observe(6.0, 0, 1);
    ASSERT_TRUE(eval.firing());
    eval.advance(1000.0);
    EXPECT_FALSE(eval.firing());
    EXPECT_EQ(eval.cleared_count(), 1u);
}

TEST(BurnRate, EventsCarryTheBurnsAtTransition)
{
    BurnRateEvaluator eval(simple_policy());
    eval.observe(1.0, 0, 2);
    ASSERT_EQ(eval.events().size(), 1u);
    EXPECT_NEAR(eval.events()[0].fast_burn, 10.0, kTol);
    EXPECT_NEAR(eval.events()[0].slow_burn, 10.0, kTol);
    EXPECT_NEAR(eval.peak_burn(), 10.0, kTol);
}

} // namespace
} // namespace helm::telemetry
