/**
 * @file
 * Tests for the sim-time sliding window (telemetry/timeseries.h):
 * bucket accounting, expiry at the window edge, far-jump clears,
 * out-of-order clamping, and the windowed-vs-lifetime split.
 */
#include <gtest/gtest.h>

#include "telemetry/timeseries.h"

namespace helm::telemetry {
namespace {

TEST(SlidingWindow, RecordsSumRateMeanAndLifetime)
{
    SlidingWindow window(1.0, 4);
    EXPECT_DOUBLE_EQ(window.span(), 4.0);
    window.record(0.5, 2.0);
    window.record(1.5, 3.0);

    EXPECT_DOUBLE_EQ(window.sum(), 5.0);
    EXPECT_EQ(window.samples(), 2u);
    EXPECT_DOUBLE_EQ(window.rate(), 5.0 / 4.0);
    EXPECT_DOUBLE_EQ(window.mean(), 2.5);
    EXPECT_DOUBLE_EQ(window.max_bucket(), 3.0);
    EXPECT_DOUBLE_EQ(window.total(), 5.0);
    EXPECT_EQ(window.total_samples(), 2u);
}

TEST(SlidingWindow, SameBucketAccumulates)
{
    SlidingWindow window(1.0, 4);
    window.record(2.1, 1.0);
    window.record(2.9, 4.0);
    EXPECT_DOUBLE_EQ(window.max_bucket(), 5.0);
    EXPECT_EQ(window.samples(), 2u);
}

TEST(SlidingWindow, BucketsExpireAtTheWindowEdge)
{
    SlidingWindow window(1.0, 3);
    window.record(0.5, 1.0);
    window.record(1.5, 2.0);
    window.record(2.5, 4.0);
    EXPECT_DOUBLE_EQ(window.sum(), 7.0);

    // Bucket 3 becomes current: live buckets are [1, 3], bucket 0 out.
    window.advance(3.0);
    EXPECT_DOUBLE_EQ(window.sum(), 6.0);
    EXPECT_EQ(window.samples(), 2u);

    window.advance(4.0); // live [2, 4]
    EXPECT_DOUBLE_EQ(window.sum(), 4.0);
    EXPECT_EQ(window.samples(), 1u);
    EXPECT_DOUBLE_EQ(window.max_bucket(), 4.0);

    // Lifetime totals never expire.
    EXPECT_DOUBLE_EQ(window.total(), 7.0);
    EXPECT_EQ(window.total_samples(), 3u);
}

TEST(SlidingWindow, FarJumpClearsTheWholeWindow)
{
    SlidingWindow window(1.0, 3);
    window.record(0.5, 1.0);
    window.record(1.5, 2.0);
    window.advance(1000.0);
    EXPECT_DOUBLE_EQ(window.sum(), 0.0);
    EXPECT_EQ(window.samples(), 0u);
    EXPECT_DOUBLE_EQ(window.max_bucket(), 0.0);
    EXPECT_DOUBLE_EQ(window.mean(), 0.0);
    EXPECT_DOUBLE_EQ(window.total(), 3.0);
}

TEST(SlidingWindow, EarlierSampleClampsIntoTheCurrentBucket)
{
    SlidingWindow window(1.0, 4);
    window.record(5.5, 1.0);
    // Time never goes backwards in the DES; a stray earlier sample
    // lands in the newest bucket instead of resurrecting an old one.
    window.record(4.2, 2.0);
    EXPECT_DOUBLE_EQ(window.max_bucket(), 3.0);
    EXPECT_DOUBLE_EQ(window.sum(), 3.0);
}

TEST(SlidingWindow, EmptyWindowQueriesAreZero)
{
    SlidingWindow window(0.5, 8);
    EXPECT_DOUBLE_EQ(window.sum(), 0.0);
    EXPECT_DOUBLE_EQ(window.rate(), 0.0);
    EXPECT_DOUBLE_EQ(window.mean(), 0.0);
    EXPECT_DOUBLE_EQ(window.max_bucket(), 0.0);
    EXPECT_EQ(window.samples(), 0u);
}

} // namespace
} // namespace helm::telemetry
