/**
 * @file
 * Unit tests for the telemetry core: registry semantics (find-or-create,
 * deterministic ordering), histogram bucketing, the Prometheus/JSON
 * exporters, and the TimeAttribution accumulator's registry round trip.
 */
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "telemetry/attribution.h"
#include "telemetry/export.h"
#include "telemetry/metrics.h"

namespace helm::telemetry {
namespace {

/**
 * Minimal structural JSON check: braces/brackets balance outside string
 * literals and no unterminated string remains.  Not a full parser, but
 * enough to catch truncated or unescaped output.
 */
bool
json_balanced(const std::string &text)
{
    int depth = 0;
    bool in_string = false;
    for (std::size_t i = 0; i < text.size(); ++i) {
        const char c = text[i];
        if (in_string) {
            if (c == '\\')
                ++i; // skip the escaped character
            else if (c == '"')
                in_string = false;
            continue;
        }
        if (c == '"')
            in_string = true;
        else if (c == '{' || c == '[')
            ++depth;
        else if (c == '}' || c == ']') {
            if (--depth < 0)
                return false;
        }
    }
    return depth == 0 && !in_string;
}

TEST(Registry, CounterFindOrCreateAccumulates)
{
    MetricsRegistry registry;
    registry.counter("helm_test_total", {{"kind", "a"}}).add(2.0);
    registry.counter("helm_test_total", {{"kind", "a"}}).increment();
    registry.counter("helm_test_total", {{"kind", "b"}}).increment();

    EXPECT_DOUBLE_EQ(
        registry.value_or("helm_test_total", {{"kind", "a"}}), 3.0);
    EXPECT_DOUBLE_EQ(
        registry.value_or("helm_test_total", {{"kind", "b"}}), 1.0);
    EXPECT_EQ(registry.label_sets("helm_test_total").size(), 2u);
    EXPECT_EQ(registry.family_count(), 1u);
}

TEST(Registry, CounterIgnoresNegativeDeltas)
{
    MetricsRegistry registry;
    registry.counter("c").add(5.0);
    registry.counter("c").add(-3.0);
    EXPECT_DOUBLE_EQ(registry.value_or("c"), 5.0);
}

TEST(Registry, GaugeSetAndAdd)
{
    MetricsRegistry registry;
    registry.gauge("g").set(1.5);
    registry.gauge("g").add(0.5);
    EXPECT_DOUBLE_EQ(registry.value_or("g"), 2.0);
    EXPECT_TRUE(registry.has("g"));
    EXPECT_FALSE(registry.has("missing"));
    EXPECT_DOUBLE_EQ(registry.value_or("missing", {}, 7.0), 7.0);
}

TEST(Registry, HistogramBucketsAndMoments)
{
    MetricsRegistry registry;
    Histogram &h = registry.histogram("h", {}, {1.0, 2.0, 4.0});
    h.observe(0.5); // bucket 0 (<= 1)
    h.observe(1.5); // bucket 1 (<= 2)
    h.observe(3.0); // bucket 2 (<= 4)
    h.observe(9.0); // +Inf overflow

    ASSERT_EQ(h.counts().size(), 4u);
    EXPECT_EQ(h.counts()[0], 1u);
    EXPECT_EQ(h.counts()[1], 1u);
    EXPECT_EQ(h.counts()[2], 1u);
    EXPECT_EQ(h.counts()[3], 1u);
    EXPECT_EQ(h.count(), 4u);
    EXPECT_DOUBLE_EQ(h.sum(), 14.0);
    EXPECT_DOUBLE_EQ(h.mean(), 3.5);
    // value_or on a histogram reports its sum.
    EXPECT_DOUBLE_EQ(registry.value_or("h"), 14.0);
}

TEST(Registry, DefaultLatencyBucketsStrictlyIncrease)
{
    const auto bounds = default_latency_buckets();
    ASSERT_GT(bounds.size(), 4u);
    for (std::size_t i = 1; i < bounds.size(); ++i)
        EXPECT_LT(bounds[i - 1], bounds[i]);
    EXPECT_LE(bounds.front(), 1e-3);
    EXPECT_GE(bounds.back(), 1000.0);
}

TEST(Registry, FamiliesIterateInNameOrder)
{
    MetricsRegistry registry;
    registry.counter("zeta");
    registry.gauge("alpha");
    registry.counter("mid");
    std::vector<std::string> names;
    for (const auto &[name, family] : registry.families())
        names.push_back(name);
    EXPECT_EQ(names, (std::vector<std::string>{"alpha", "mid", "zeta"}));
}

TEST(JsonEscape, QuotesBackslashesAndControls)
{
    EXPECT_EQ(json_escape("plain"), "plain");
    EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
    EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
    EXPECT_EQ(json_escape("a\nb"), "a\\nb");
    EXPECT_EQ(json_escape(std::string("a\x01") + "b"), "a\\u0001b");
}

TEST(Exporters, HostileLabelValueSurvivesBothExporters)
{
    // One hostile label value (quote, backslash, newline) through both
    // exporters: each must escape per its own grammar, and the JSON
    // document must stay structurally parseable.
    MetricsRegistry registry;
    registry.counter("helm_bytes_total", {{"tier", "a\"b\\c\nd"}})
        .add(1.0);

    const std::string text = prometheus_text(registry);
    EXPECT_NE(text.find("tier=\"a\\\"b\\\\c\\nd\""), std::string::npos)
        << text;
    // The raw newline must not survive into the series line.
    EXPECT_EQ(text.find("c\nd"), std::string::npos);

    const std::string json = json_snapshot(registry);
    EXPECT_TRUE(json_balanced(json)) << json;
    EXPECT_NE(json.find("a\\\"b\\\\c\\nd"), std::string::npos) << json;
    EXPECT_EQ(json.find("c\nd"), std::string::npos);
}

TEST(Prometheus, RendersHelpTypeLabelsAndHistograms)
{
    MetricsRegistry registry;
    registry.counter("helm_bytes_total", {{"device", "host"}}, "Bytes")
        .add(1024.0);
    registry.gauge("helm_util", {}, "Utilization").set(0.25);
    registry.histogram("helm_latency_seconds", {}, {0.1, 1.0}, "Latency")
        .observe(0.5);

    const std::string text = prometheus_text(registry);
    EXPECT_NE(text.find("# HELP helm_bytes_total Bytes"),
              std::string::npos);
    EXPECT_NE(text.find("# TYPE helm_bytes_total counter"),
              std::string::npos);
    EXPECT_NE(text.find("helm_bytes_total{device=\"host\"} 1024"),
              std::string::npos);
    EXPECT_NE(text.find("# TYPE helm_util gauge"), std::string::npos);
    EXPECT_NE(text.find("helm_util 0.25"), std::string::npos);
    // Cumulative le buckets, +Inf, _sum and _count series.
    EXPECT_NE(text.find("helm_latency_seconds_bucket{le=\"0.1\"} 0"),
              std::string::npos);
    EXPECT_NE(text.find("helm_latency_seconds_bucket{le=\"1\"} 1"),
              std::string::npos);
    EXPECT_NE(text.find("helm_latency_seconds_bucket{le=\"+Inf\"} 1"),
              std::string::npos);
    EXPECT_NE(text.find("helm_latency_seconds_sum 0.5"),
              std::string::npos);
    EXPECT_NE(text.find("helm_latency_seconds_count 1"),
              std::string::npos);
}

TEST(JsonSnapshot, SchemaStructureAndEscaping)
{
    MetricsRegistry registry;
    registry.counter("helm_bytes_total", {{"tier", "we\"ird\\tier"}})
        .add(7.0);
    registry.histogram("helm_lat", {}, {1.0}).observe(2.0);

    const std::string json = json_snapshot(registry);
    EXPECT_TRUE(json_balanced(json)) << json;
    EXPECT_NE(json.find("\"schema\":\"helm-metrics-v1\""),
              std::string::npos);
    EXPECT_NE(json.find("\"name\":\"helm_bytes_total\""),
              std::string::npos);
    EXPECT_NE(json.find("\"type\":\"counter\""), std::string::npos);
    EXPECT_NE(json.find("we\\\"ird\\\\tier"), std::string::npos);
    EXPECT_NE(json.find("\"buckets\""), std::string::npos);
    EXPECT_NE(json.find("\"sum\":2"), std::string::npos);
    EXPECT_NE(json.find("\"count\":1"), std::string::npos);
}

TEST(WriteTextFile, WritesAndFailsOnBadPath)
{
    const std::string path = "/tmp/helm_telemetry_test.txt";
    ASSERT_TRUE(write_text_file(path, "hello\n").is_ok());
    std::ifstream file(path);
    std::string line;
    std::getline(file, line);
    EXPECT_EQ(line, "hello");
    std::remove(path.c_str());

    EXPECT_FALSE(
        write_text_file("/nonexistent-dir/x.txt", "x").is_ok());
}

TEST(Attribution, AccumulatesMergesAndTotals)
{
    TimeAttribution a;
    a.add("mha", Phase::kCompute, 2.0);
    a.add("mha", Phase::kTransfer, 1.0);
    a.add("ffn", Phase::kKvStall, 0.5);
    a.add("ffn", Phase::kWriteback, 0.25);
    a.add("ffn", Phase::kCompute, -1.0); // ignored
    a.add("ffn", Phase::kCompute, 0.0);  // ignored
    a.add_idle(0.25);
    a.set_wall(4.0);

    EXPECT_DOUBLE_EQ(a.buckets().at("mha").total(), 3.0);
    EXPECT_DOUBLE_EQ(a.buckets().at("ffn").total(), 0.75);
    EXPECT_DOUBLE_EQ(a.attributed_total(), 4.0);
    EXPECT_DOUBLE_EQ(a.wall(), 4.0);

    TimeAttribution b;
    b.add("mha", Phase::kCompute, 1.0);
    b.set_wall(1.0);
    a.merge(b);
    EXPECT_DOUBLE_EQ(a.buckets().at("mha").compute, 3.0);
    EXPECT_DOUBLE_EQ(a.wall(), 5.0);
    EXPECT_DOUBLE_EQ(a.attributed_total(), 5.0);
}

TEST(Attribution, RegistryRoundTrip)
{
    TimeAttribution a;
    a.add("mha", Phase::kCompute, 2.0);
    a.add("mha", Phase::kTransfer, 1.5);
    a.add("ffn", Phase::kWriteback, 0.5);
    a.add_idle(1.0);
    a.set_wall(5.0);

    MetricsRegistry registry;
    a.record(registry);
    EXPECT_DOUBLE_EQ(
        registry.value_or("helm_attribution_seconds",
                          {{"layer", "mha"}, {"phase", "compute"}}),
        2.0);
    EXPECT_DOUBLE_EQ(registry.value_or("helm_attribution_idle_seconds"),
                     1.0);
    EXPECT_DOUBLE_EQ(registry.value_or("helm_wall_seconds"), 5.0);

    const TimeAttribution back = TimeAttribution::from_registry(registry);
    EXPECT_DOUBLE_EQ(back.buckets().at("mha").compute, 2.0);
    EXPECT_DOUBLE_EQ(back.buckets().at("mha").transfer, 1.5);
    EXPECT_DOUBLE_EQ(back.buckets().at("ffn").writeback, 0.5);
    EXPECT_DOUBLE_EQ(back.idle(), 1.0);
    EXPECT_DOUBLE_EQ(back.wall(), 5.0);
    EXPECT_DOUBLE_EQ(back.attributed_total(), a.attributed_total());
}

TEST(Attribution, TableListsLayersIdleAndTotal)
{
    TimeAttribution a;
    a.add("mha", Phase::kCompute, 3.0);
    a.add("ffn", Phase::kTransfer, 1.0);
    a.add_idle(1.0);
    a.set_wall(5.0);

    const std::string table = a.to_table();
    EXPECT_NE(table.find("Time attribution"), std::string::npos);
    EXPECT_NE(table.find("mha"), std::string::npos);
    EXPECT_NE(table.find("ffn"), std::string::npos);
    EXPECT_NE(table.find("idle"), std::string::npos);
    EXPECT_NE(table.find("total"), std::string::npos);
    EXPECT_NE(table.find("100.0 %"), std::string::npos);
}

TEST(PhaseName, Names)
{
    EXPECT_STREQ(phase_name(Phase::kCompute), "compute");
    EXPECT_STREQ(phase_name(Phase::kTransfer), "transfer");
    EXPECT_STREQ(phase_name(Phase::kKvStall), "kv_stall");
    EXPECT_STREQ(phase_name(Phase::kWriteback), "writeback");
}

} // namespace
} // namespace helm::telemetry
