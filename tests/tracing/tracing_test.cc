/**
 * @file
 * Tests for the tracing subsystem (src/tracing/): derived span ids,
 * the TraceBuilder span cap, flight-recorder retention policy,
 * span-tree validation, the helm-trace-v1 export, and end-to-end
 * span synthesis from real serve and gateway runs — including the
 * acceptance claim that an outlier request's spans nest exactly and
 * the per-phase durations plus idle tile the root wall.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "core/helm.h"
#include "telemetry/metrics.h"
#include "telemetry/monitor.h"
#include "tracing/export.h"
#include "tracing/synthesize.h"
#include "tracing/tracer.h"

namespace helm::tracing {
namespace {

constexpr double kTol = 1e-9;

// ---- derived span ids ------------------------------------------------

TEST(SpanId, DeterministicAndDistinct)
{
    const std::uint64_t a = derive_span_id(7, SpanPhase::kTurn, 0);
    EXPECT_EQ(a, derive_span_id(7, SpanPhase::kTurn, 0));
    EXPECT_NE(a, derive_span_id(7, SpanPhase::kTurn, 1));
    EXPECT_NE(a, derive_span_id(7, SpanPhase::kQueue, 0));
    EXPECT_NE(a, derive_span_id(8, SpanPhase::kTurn, 0));
    // 0 is reserved for "no parent".
    EXPECT_NE(a, 0u);
}

// ---- TraceBuilder ----------------------------------------------------

TEST(TraceBuilder, CapsSpansAndCountsDrops)
{
    TraceBuilder builder(1, "turn", 2);
    const std::uint64_t root =
        builder.add_span(SpanPhase::kTurn, "turn", 0.0, 4.0, 0);
    builder.add_span(SpanPhase::kQueue, "queue", 0.0, 1.0, root);
    // Past the cap: counted, not stored, but the id still derives.
    const std::uint64_t dropped =
        builder.add_span(SpanPhase::kStream, "stream", 1.0, 4.0, root);
    EXPECT_NE(dropped, 0u);

    const Trace trace = builder.take();
    EXPECT_EQ(trace.spans.size(), 2u);
    EXPECT_EQ(trace.dropped_spans, 1u);
    EXPECT_EQ(trace.spans.front().span_id,
              derive_span_id(1, SpanPhase::kTurn, 0));
}

// ---- flight recorder -------------------------------------------------

Trace
tiny_trace(std::uint64_t id, Seconds tbt, OutlierFlags flags = {})
{
    TraceBuilder builder(id, "turn", 4);
    builder.add_span(SpanPhase::kTurn, "turn", 0.0, 1.0, 0);
    builder.trace().flags = flags;
    builder.trace().tbt = tbt;
    return builder.take();
}

TEST(FlightRecorder, FlaggedPoolEvictsOldestFirst)
{
    // max_traces 4 -> 2 flagged slots + 2 outlier slots.
    FlightRecorder recorder({4, 8});
    OutlierFlags shed;
    shed.shed = true;
    for (std::uint64_t id = 0; id < 3; ++id)
        recorder.admit(tiny_trace(id, 0.0, shed));

    EXPECT_EQ(recorder.retained(), 2u);
    EXPECT_EQ(recorder.stats().evicted, 1u);
    const auto traces = recorder.sorted_traces();
    ASSERT_EQ(traces.size(), 2u);
    // Trace 0 (oldest) was evicted; 1 and 2 remain.
    EXPECT_EQ(traces[0]->trace_id, 1u);
    EXPECT_EQ(traces[1]->trace_id, 2u);
}

TEST(FlightRecorder, OutlierPoolKeepsSlowest)
{
    FlightRecorder recorder({4, 8});
    recorder.admit(tiny_trace(0, 0.010));
    recorder.admit(tiny_trace(1, 0.030));
    // Pool full (2 outlier slots).  Faster than both: discarded.
    EXPECT_FALSE(recorder.would_retain({}, 0.005));
    recorder.admit(tiny_trace(2, 0.005));
    EXPECT_EQ(recorder.retained(), 2u);
    // Slower than the minimum: displaces trace 0.
    EXPECT_TRUE(recorder.would_retain({}, 0.020));
    recorder.admit(tiny_trace(3, 0.020));

    const auto traces = recorder.sorted_traces();
    ASSERT_EQ(traces.size(), 2u);
    EXPECT_EQ(traces[0]->trace_id, 1u);
    EXPECT_EQ(traces[1]->trace_id, 3u);
    EXPECT_EQ(recorder.stats().evicted, 1u);
}

TEST(FlightRecorder, TbtTieKeepsTheIncumbent)
{
    FlightRecorder recorder({4, 8});
    recorder.admit(tiny_trace(10, 0.020));
    recorder.admit(tiny_trace(11, 0.020));
    // Equal TBT must not displace — retention cannot depend on replay
    // order among ties.
    EXPECT_FALSE(recorder.would_retain({}, 0.020));
    recorder.admit(tiny_trace(12, 0.020));

    const auto traces = recorder.sorted_traces();
    ASSERT_EQ(traces.size(), 2u);
    EXPECT_EQ(traces[0]->trace_id, 10u);
    EXPECT_EQ(traces[1]->trace_id, 11u);
}

TEST(FlightRecorder, FlaggedAlwaysRetains)
{
    FlightRecorder recorder({4, 8});
    recorder.admit(tiny_trace(0, 1.0));
    recorder.admit(tiny_trace(1, 1.0));
    OutlierFlags shed;
    shed.shed = true;
    // Flagged traces bypass the TBT competition entirely.
    EXPECT_TRUE(recorder.would_retain(shed, 0.0));
    recorder.admit(tiny_trace(2, 0.0, shed));
    EXPECT_EQ(recorder.retained(), 3u);
    EXPECT_EQ(recorder.stats().flagged_seen, 1u);
}

TEST(FlightRecorder, CountSkippedAccountsWithoutStoring)
{
    FlightRecorder recorder({4, 8});
    recorder.count_skipped(4, {});
    EXPECT_EQ(recorder.retained(), 0u);
    EXPECT_EQ(recorder.stats().traces_seen, 1u);
    EXPECT_EQ(recorder.stats().spans_seen, 4u);
}

TEST(FlightRecorder, MemoryBoundHoldsUnderLongDrives)
{
    FlightRecorder recorder({8, 4});
    OutlierFlags shed;
    shed.shed = true;
    for (std::uint64_t id = 0; id < 10000; ++id) {
        const OutlierFlags flags = id % 7 == 0 ? shed : OutlierFlags{};
        const Seconds tbt = 0.001 * static_cast<double>(id % 97);
        if (recorder.would_retain(flags, tbt))
            recorder.admit(tiny_trace(id, tbt, flags));
        else
            recorder.count_skipped(1, flags);
    }
    EXPECT_EQ(recorder.stats().traces_seen, 10000u);
    EXPECT_LE(recorder.retained(), 8u);
    EXPECT_LE(recorder.retained_spans(),
              recorder.retained() *
                  recorder.config().max_spans_per_trace);
}

// ---- span-tree validation --------------------------------------------

TEST(ValidateTrace, AcceptsTilingTree)
{
    TraceBuilder builder(1, "turn", 8);
    const std::uint64_t root =
        builder.add_span(SpanPhase::kTurn, "turn", 0.0, 10.0, 0);
    builder.add_span(SpanPhase::kQueue, "queue", 0.0, 2.0, root);
    builder.add_span(SpanPhase::kDispatch, "dispatch", 2.0, 5.0, root);
    builder.add_span(SpanPhase::kStream, "stream", 6.0, 10.0, root);
    EXPECT_TRUE(validate_trace(builder.trace()).is_ok());
}

TEST(ValidateTrace, RejectsChildEscapingParent)
{
    TraceBuilder builder(1, "turn", 8);
    const std::uint64_t root =
        builder.add_span(SpanPhase::kTurn, "turn", 0.0, 10.0, 0);
    builder.add_span(SpanPhase::kQueue, "queue", 0.0, 11.0, root);
    EXPECT_FALSE(validate_trace(builder.trace()).is_ok());
}

TEST(ValidateTrace, RejectsUnknownParent)
{
    TraceBuilder builder(1, "turn", 8);
    builder.add_span(SpanPhase::kTurn, "turn", 0.0, 10.0, 0);
    builder.add_span(SpanPhase::kQueue, "queue", 0.0, 1.0, 0xdead);
    EXPECT_FALSE(validate_trace(builder.trace()).is_ok());
}

TEST(ValidateTrace, RejectsOverlappingRootChildren)
{
    TraceBuilder builder(1, "turn", 8);
    const std::uint64_t root =
        builder.add_span(SpanPhase::kTurn, "turn", 0.0, 10.0, 0);
    builder.add_span(SpanPhase::kQueue, "queue", 0.0, 5.0, root);
    builder.add_span(SpanPhase::kStream, "stream", 4.0, 9.0, root);
    EXPECT_FALSE(validate_trace(builder.trace()).is_ok());
}

TEST(ValidateTrace, ServeRootSkipsTheTilingCheck)
{
    // Scheduler batch windows may pipeline; only containment applies.
    TraceBuilder builder(0, "scheduler", 8);
    const std::uint64_t root =
        builder.add_span(SpanPhase::kServe, "gpu 0", 0.0, 10.0, 0);
    builder.add_span(SpanPhase::kBatch, "batch 0", 0.0, 6.0, root);
    builder.add_span(SpanPhase::kBatch, "batch 1", 4.0, 10.0, root);
    EXPECT_TRUE(validate_trace(builder.trace()).is_ok());
}

TEST(ValidateTrace, RejectsEmptyAndNonRootFirst)
{
    Trace empty;
    empty.trace_id = 3;
    EXPECT_FALSE(validate_trace(empty).is_ok());

    TraceBuilder builder(1, "turn", 8);
    builder.add_span(SpanPhase::kQueue, "queue", 0.0, 1.0, 0xbeef);
    EXPECT_FALSE(validate_trace(builder.trace()).is_ok());
}

// ---- turn-trace synthesis --------------------------------------------

TurnTraceInput
turn_input()
{
    TurnTraceInput input;
    input.turn_id = 42;
    input.session = 7;
    input.replica = 1;
    input.prompt_tokens = 128;
    input.output_tokens = 21;
    input.submitted = 1.0;
    input.dispatched = 1.5;
    input.first_token = 2.25;
    input.completed = 3.0;
    input.tbt = 0.0375;
    return input;
}

TEST(TurnTrace, PhasesTileTheClientWall)
{
    const Trace trace = build_turn_trace(turn_input(), 64);
    ASSERT_TRUE(validate_trace(trace).is_ok());
    ASSERT_EQ(trace.spans.size(), kTurnTraceSpans);

    const Span &root = trace.spans.front();
    Seconds phase_sum = 0.0;
    for (std::size_t s = 1; s < trace.spans.size(); ++s) {
        EXPECT_EQ(trace.spans[s].parent_id, root.span_id);
        phase_sum += trace.spans[s].duration();
    }
    // queue + dispatch + stream == submit -> completion, no idle gap.
    EXPECT_NEAR(phase_sum, root.duration(), kTol);
    EXPECT_NEAR(root.start, 1.0, kTol);
    EXPECT_NEAR(root.end, 3.0, kTol);
    EXPECT_FALSE(trace.flags.any());
    EXPECT_NEAR(trace.tbt, 0.0375, kTol);
}

TEST(TurnTrace, ShedTurnIsFlaggedWithReason)
{
    const Trace trace =
        build_shed_turn_trace(9, 3, 1.0, 1.25, "accept-queue-full", 64);
    ASSERT_TRUE(validate_trace(trace).is_ok());
    EXPECT_TRUE(trace.flags.shed);
    ASSERT_GE(trace.spans.size(), 2u);
    bool reason_found = false;
    for (const auto &[key, value] : trace.spans[1].attrs)
        reason_found |=
            key == "shed_reason" && value == "accept-queue-full";
    EXPECT_TRUE(reason_found);
}

// ---- helm-trace-v1 export --------------------------------------------

TEST(TraceJson, SchemaStatsAndHexIds)
{
    Tracer tracer({4, 8});
    tracer.finish(tiny_trace(5, 0.010));
    tracer.observe(4, {});

    const std::string json = trace_json(tracer);
    EXPECT_NE(json.find("\"schema\":\"helm-trace-v1\""),
              std::string::npos);
    EXPECT_NE(json.find("\"traces_seen\":2"), std::string::npos);
    EXPECT_NE(json.find("\"retained\":1"), std::string::npos);
    EXPECT_NE(json.find("\"capacity_traces\":4"), std::string::npos);
    EXPECT_NE(json.find("\"parent_id\":\"0x0\""), std::string::npos);
    // Span ids render as hex strings (64-bit ids break JSON parsers).
    char expected[32];
    std::snprintf(expected, sizeof(expected), "\"span_id\":\"0x%llx\"",
                  static_cast<unsigned long long>(
                      derive_span_id(5, SpanPhase::kTurn, 0)));
    EXPECT_NE(json.find(expected), std::string::npos);
}

TEST(TracerMetrics, RecordEmitsTheTraceFamily)
{
    Tracer tracer({4, 8});
    tracer.finish(tiny_trace(5, 0.010));
    telemetry::MetricsRegistry registry;
    tracer.record(registry);
    EXPECT_DOUBLE_EQ(registry.value_or("helm_trace_traces_total"), 1.0);
    EXPECT_DOUBLE_EQ(registry.value_or("helm_trace_retained"), 1.0);
    EXPECT_DOUBLE_EQ(registry.value_or("helm_trace_capacity_traces"),
                     4.0);
}

// ---- synthesis from a real serve run ---------------------------------

runtime::ServingSpec
serve_spec()
{
    runtime::ServingSpec spec;
    spec.model = model::opt_config(model::OptVariant::kOpt1_3B);
    spec.memory = mem::ConfigKind::kNvdram;
    spec.shape.prompt_tokens = 128;
    spec.shape.output_tokens = 8;
    return spec;
}

std::vector<workload::TimedRequest>
burst(std::uint64_t n, Seconds spacing)
{
    std::vector<workload::TimedRequest> stream;
    for (std::uint64_t i = 0; i < n; ++i) {
        stream.push_back(workload::TimedRequest{
            workload::Request{i, 128, 8},
            spacing * static_cast<double>(i)});
    }
    return stream;
}

TEST(Synthesize, ServeRunYieldsValidNestedTrees)
{
    auto server =
        runtime::Server::create(serve_spec(), runtime::ServingConfig{});
    ASSERT_TRUE(server.is_ok()) << server.status().to_string();
    server->enable_telemetry(true);
    ASSERT_TRUE(server->submit(burst(8, 0.25)).is_ok());
    const auto report = server->serve();
    ASSERT_TRUE(report.is_ok()) << report.status().to_string();

    Tracer tracer;
    synthesize_serving_traces(tracer, *report,
                              server->serving_records());
    const Status valid = validate_all(tracer);
    EXPECT_TRUE(valid.is_ok()) << valid.to_string();
    EXPECT_EQ(tracer.recorder().stats().traces_seen,
              report->completed + report->rejected +
                  1u /* scheduler trace */);

    bool request_seen = false, scheduler_seen = false;
    for (const Trace *trace : tracer.recorder().sorted_traces()) {
        if (trace->kind == "request") {
            request_seen = true;
            // Request phases tile arrival -> completion: sum of direct
            // children plus idle equals the root wall exactly.
            const Span &root = trace->spans.front();
            Seconds phase_sum = 0.0;
            for (const Span &span : trace->spans) {
                if (span.parent_id == root.span_id)
                    phase_sum += span.duration();
            }
            EXPECT_LE(phase_sum, root.duration() + kTol);
        }
        if (trace->kind == "scheduler") {
            scheduler_seen = true;
            EXPECT_TRUE(trace->flags.pinned);
            EXPECT_EQ(trace->spans.front().phase, SpanPhase::kServe);
        }
    }
    EXPECT_TRUE(request_seen);
    EXPECT_TRUE(scheduler_seen);
}

TEST(Synthesize, IdenticalRunsExportIdenticalBytes)
{
    const auto run_once = [](std::string *out) {
        auto server = runtime::Server::create(serve_spec(),
                                              runtime::ServingConfig{});
        ASSERT_TRUE(server.is_ok());
        server->enable_telemetry(true);
        ASSERT_TRUE(server->submit(burst(6, 0.5)).is_ok());
        const auto report = server->serve();
        ASSERT_TRUE(report.is_ok());
        Tracer tracer;
        synthesize_serving_traces(tracer, *report,
                                  server->serving_records());
        *out = trace_json(tracer);
    };
    std::string first, second;
    run_once(&first);
    run_once(&second);
    ASSERT_FALSE(first.empty());
    EXPECT_EQ(first, second);
}

} // namespace
} // namespace helm::tracing
