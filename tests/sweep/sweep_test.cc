/**
 * @file
 * Unit tests for the sweep framework: Dataset and the serving-aware
 * cartesian runner.
 */
#include <gtest/gtest.h>

#include <sstream>

#include "model/opt.h"
#include "sweep/sweep.h"

namespace helm::sweep {
namespace {

Dataset
sample_dataset()
{
    Dataset d;
    d.add_row({{"memory", "NVDRAM"}, {"batch", "1"}, {"tbt", "5.6"}});
    d.add_row({{"memory", "NVDRAM"}, {"batch", "8"}, {"tbt", "5.7"}});
    d.add_row({{"memory", "DRAM"}, {"batch", "1"}, {"tbt", "4.9"}});
    d.add_row({{"memory", "DRAM"}, {"batch", "8"}, {"tbt", "5.0"}});
    return d;
}

TEST(Dataset, SchemaAccumulatesInOrder)
{
    Dataset d;
    d.add_row({{"a", "1"}});
    d.add_row({{"b", "2"}, {"a", "3"}});
    EXPECT_EQ(d.columns(), (std::vector<std::string>{"a", "b"}));
    EXPECT_EQ(d.size(), 2u);
    EXPECT_EQ(d.cell(0, "b"), ""); // absent cell
    EXPECT_EQ(d.cell(1, "a"), "3");
}

TEST(Dataset, NumericParsing)
{
    const Dataset d = sample_dataset();
    EXPECT_DOUBLE_EQ(d.numeric(0, "tbt"), 5.6);
    EXPECT_DOUBLE_EQ(d.numeric(0, "memory"), 0.0); // non-numeric
}

TEST(Dataset, DistinctAndFilter)
{
    const Dataset d = sample_dataset();
    EXPECT_EQ(d.distinct("memory"),
              (std::vector<std::string>{"NVDRAM", "DRAM"}));
    const Dataset nv = d.filter("memory", "NVDRAM");
    EXPECT_EQ(nv.size(), 2u);
    EXPECT_DOUBLE_EQ(nv.mean_of("tbt"), 5.65);
}

TEST(Dataset, Aggregates)
{
    const Dataset d = sample_dataset();
    EXPECT_DOUBLE_EQ(d.min_of("tbt"), 4.9);
    EXPECT_DOUBLE_EQ(d.max_of("tbt"), 5.7);
    EXPECT_NEAR(d.mean_of("tbt"), 5.3, 1e-12);
    EXPECT_DOUBLE_EQ(Dataset().mean_of("x"), 0.0);
}

TEST(Dataset, PivotTable)
{
    const Dataset d = sample_dataset();
    const std::string text =
        d.pivot("memory", "batch", "tbt", 1).to_string();
    EXPECT_NE(text.find("NVDRAM"), std::string::npos);
    EXPECT_NE(text.find("5.6"), std::string::npos);
    EXPECT_NE(text.find("4.9"), std::string::npos);
    // Missing combinations render as "-".
    Dataset sparse;
    sparse.add_row({{"r", "x"}, {"c", "1"}, {"v", "10"}});
    sparse.add_row({{"r", "y"}, {"c", "2"}, {"v", "20"}});
    const std::string sparse_text =
        sparse.pivot("r", "c", "v", 0).to_string();
    EXPECT_NE(sparse_text.find("-"), std::string::npos);
}

TEST(Dataset, CsvRoundTripShape)
{
    std::ostringstream out;
    sample_dataset().write_csv(out);
    const std::string csv = out.str();
    // Rows are std::map-backed, so the schema lands alphabetically.
    EXPECT_NE(csv.find("batch,memory,tbt"), std::string::npos);
    EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 5); // header+4
}

TEST(SweepRunner, CartesianEnumeration)
{
    SweepRunner runner;
    ASSERT_TRUE(runner.add_dimension("a", {"1", "2", "3"}).is_ok());
    ASSERT_TRUE(runner.add_dimension("b", {"x", "y"}).is_ok());
    EXPECT_EQ(runner.point_count(), 6u);
    int calls = 0;
    const Dataset d = runner.run([&](const Row &point) -> Result<Row> {
        ++calls;
        Row metrics;
        metrics["concat"] = point.at("a") + point.at("b");
        return metrics;
    });
    EXPECT_EQ(calls, 6);
    EXPECT_EQ(d.size(), 6u);
    // Last dimension varies fastest.
    EXPECT_EQ(d.cell(0, "concat"), "1x");
    EXPECT_EQ(d.cell(1, "concat"), "1y");
    EXPECT_EQ(d.cell(2, "concat"), "2x");
    EXPECT_EQ(d.cell(5, "concat"), "3y");
}

TEST(SweepRunner, ErrorsBecomeErrorColumn)
{
    SweepRunner runner;
    ASSERT_TRUE(runner.add_dimension("v", {"ok", "bad"}).is_ok());
    const Dataset d = runner.run([](const Row &point) -> Result<Row> {
        if (point.at("v") == "bad")
            return Status::invalid_argument("boom");
        return Row{{"out", "fine"}};
    });
    EXPECT_EQ(d.size(), 2u);
    EXPECT_EQ(d.cell(0, "out"), "fine");
    EXPECT_NE(d.cell(1, "error").find("boom"), std::string::npos);
}

TEST(SweepRunner, RejectsBadDimensions)
{
    SweepRunner runner;
    EXPECT_FALSE(runner.add_dimension("", {"1"}).is_ok());
    EXPECT_FALSE(runner.add_dimension("a", {}).is_ok());
    ASSERT_TRUE(runner.add_dimension("a", {"1"}).is_ok());
    EXPECT_FALSE(runner.add_dimension("a", {"2"}).is_ok());
}

TEST(ServingSweep, RecognizedDimensions)
{
    EXPECT_TRUE(ServingSweep::is_recognized("memory"));
    EXPECT_TRUE(ServingSweep::is_recognized("kv_offload"));
    EXPECT_FALSE(ServingSweep::is_recognized("bogus"));
    runtime::ServingSpec base;
    base.model = model::opt_config(model::OptVariant::kOpt1_3B);
    ServingSweep sweep(base);
    EXPECT_FALSE(sweep.add_dimension("bogus", {"1"}).is_ok());
}

TEST(ServingSweep, EndToEndGrid)
{
    runtime::ServingSpec base;
    base.model = model::opt_config(model::OptVariant::kOpt1_3B);
    base.repeats = 1;
    ServingSweep sweep(base);
    ASSERT_TRUE(
        sweep.add_dimension("memory", {"NVDRAM", "DRAM"}).is_ok());
    ASSERT_TRUE(
        sweep.add_dimension("placement", {"Baseline", "All-CPU"})
            .is_ok());
    ASSERT_TRUE(sweep.add_dimension("batch", {"1", "4"}).is_ok());
    EXPECT_EQ(sweep.point_count(), 8u);
    const Dataset d = sweep.run();
    ASSERT_EQ(d.size(), 8u);
    for (std::size_t i = 0; i < d.size(); ++i) {
        EXPECT_EQ(d.cell(i, "error"), "") << "row " << i;
        EXPECT_GT(d.numeric(i, "tokens_per_s"), 0.0);
        EXPECT_GT(d.numeric(i, "tbt_ms"), 0.0);
    }
    // DRAM never slower than NVDRAM at matched points.
    const Dataset nv = d.filter("memory", "NVDRAM");
    const Dataset dr = d.filter("memory", "DRAM");
    EXPECT_LE(dr.mean_of("tbt_ms"), nv.mean_of("tbt_ms"));
}

TEST(ServingSweep, BadModelValueReportsError)
{
    runtime::ServingSpec base;
    base.model = model::opt_config(model::OptVariant::kOpt1_3B);
    base.repeats = 1;
    ServingSweep sweep(base);
    ASSERT_TRUE(sweep.add_dimension("model", {"GPT-J"}).is_ok());
    const Dataset d = sweep.run();
    ASSERT_EQ(d.size(), 1u);
    EXPECT_NE(d.cell(0, "error"), "");
}

} // namespace
} // namespace helm::sweep
