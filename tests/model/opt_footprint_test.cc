/**
 * @file
 * Unit tests for the OPT zoo and inference-footprint arithmetic.
 */
#include <gtest/gtest.h>

#include "model/footprint.h"
#include "model/opt.h"

namespace helm::model {
namespace {

TEST(OptZoo, DimensionsOfEvaluatedModels)
{
    const auto m30 = opt_config(OptVariant::kOpt30B);
    EXPECT_EQ(m30.hidden, 7168u);   // Sec. IV-B "hidden layer size"
    EXPECT_EQ(m30.blocks, 48u);     // Table II
    EXPECT_EQ(m30.heads, 56u);
    EXPECT_EQ(m30.ffn_hidden, 4 * 7168u);
    const auto m175 = opt_config(OptVariant::kOpt175B);
    EXPECT_EQ(m175.hidden, 12288u);
    EXPECT_EQ(m175.blocks, 96u);
    EXPECT_EQ(m175.heads, 96u);
}

TEST(OptZoo, AllVariantsWellFormed)
{
    for (OptVariant v : all_opt_variants()) {
        const auto c = opt_config(v);
        EXPECT_FALSE(c.name.empty());
        EXPECT_GT(c.hidden, 0u);
        EXPECT_EQ(c.hidden % c.heads, 0u) << c.name;
        EXPECT_EQ(c.ffn_hidden, 4 * c.hidden) << c.name;
        EXPECT_EQ(c.vocab, 50272u) << c.name;
        EXPECT_EQ(c.max_seq, 2048u) << c.name;
    }
}

TEST(OptZoo, SizesStrictlyIncrease)
{
    std::uint64_t prev = 0;
    for (OptVariant v : all_opt_variants()) {
        const std::uint64_t params = opt_config(v).parameter_count();
        EXPECT_GT(params, prev) << opt_config(v).name;
        prev = params;
    }
}

TEST(OptZoo, LookupByName)
{
    auto found = opt_config_by_name("OPT-30B");
    ASSERT_TRUE(found.is_ok());
    EXPECT_EQ(found->hidden, 7168u);
    auto missing = opt_config_by_name("GPT-5");
    EXPECT_FALSE(missing.is_ok());
    EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
}

TEST(Footprint, KvBytesPerBlock)
{
    // K and V, each context x hidden FP16 elements.
    const auto m175 = opt_config(OptVariant::kOpt175B);
    const Bytes kv = kv_bytes_per_block(m175, 2048);
    EXPECT_EQ(kv, 2u * 2048u * 12288u * 2u);
    // 96 MiB per block at max context (the paper reports the per-tensor
    // half of this, 47.98 MB; see EXPERIMENTS.md).
    EXPECT_EQ(kv, 96 * kMiB);
}

TEST(Footprint, KvScalesLinearlyWithBatchAndContext)
{
    const auto m30 = opt_config(OptVariant::kOpt30B);
    SequenceShape shape; // 128 + 21
    const Bytes b1 = kv_bytes_batch(m30, shape, 1);
    const Bytes b8 = kv_bytes_batch(m30, shape, 8);
    EXPECT_EQ(b8, 8 * b1);
    EXPECT_EQ(kv_bytes_total(m30, 298), 2 * kv_bytes_total(m30, 149));
}

TEST(Footprint, KvQuantizationShrinks)
{
    const auto m175 = opt_config(OptVariant::kOpt175B);
    EXPECT_LT(kv_bytes_per_block(m175, 2048, DataType::kInt4Grouped),
              kv_bytes_per_block(m175, 2048, DataType::kFp16) / 3);
}

TEST(Footprint, HiddenStateSmallRelativeToKv)
{
    const auto m175 = opt_config(OptVariant::kOpt175B);
    SequenceShape shape;
    EXPECT_LT(hidden_bytes_batch(m175, shape, 1),
              kv_bytes_batch(m175, shape, 1));
}

TEST(Footprint, SequenceShapeDefaultsMatchPaper)
{
    SequenceShape shape;
    EXPECT_EQ(shape.prompt_tokens, 128u); // Sec. III-B
    EXPECT_EQ(shape.output_tokens, 21u);
    EXPECT_EQ(shape.max_context(), 149u);
}

TEST(Footprint, ComputeFootprintAggregates)
{
    const auto m175 = opt_config(OptVariant::kOpt175B);
    SequenceShape shape;
    const auto fp =
        compute_footprint(m175, DataType::kFp16, shape, 4);
    EXPECT_GT(fp.weights, 300 * kGiB);
    EXPECT_NEAR(static_cast<double>(fp.weights_per_block) /
                    static_cast<double>(kGiB),
                3.38, 0.02);
    EXPECT_EQ(fp.kv_total,
              kv_bytes_batch(m175, shape, 4));
    EXPECT_GT(fp.hidden, 0u);
    // Weights dominate KV cache by >> 10x at batch 4 (Sec. V's point).
    EXPECT_GT(fp.weights, 10 * fp.kv_total);
}

} // namespace
} // namespace helm::model
