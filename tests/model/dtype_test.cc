/**
 * @file
 * Unit tests for dtype size arithmetic and group-wise quantization.
 */
#include <gtest/gtest.h>

#include "model/dtype.h"

namespace helm::model {
namespace {

TEST(Dtype, PlainSizes)
{
    EXPECT_EQ(tensor_bytes(100, DataType::kFp32), 400u);
    EXPECT_EQ(tensor_bytes(100, DataType::kFp16), 200u);
    EXPECT_EQ(tensor_bytes(100, DataType::kInt8), 100u);
    EXPECT_EQ(tensor_bytes(0, DataType::kFp16), 0u);
}

TEST(Dtype, Int4GroupedIncludesMetadata)
{
    // One full group: 64 elements -> 32 payload bytes + 4 metadata.
    EXPECT_EQ(tensor_bytes(64, DataType::kInt4Grouped), 36u);
    // Two groups.
    EXPECT_EQ(tensor_bytes(128, DataType::kInt4Grouped), 72u);
}

TEST(Dtype, Int4PartialGroupsRoundUp)
{
    // 65 elements: 33 payload bytes (odd count rounds up) + 2 groups.
    EXPECT_EQ(tensor_bytes(65, DataType::kInt4Grouped), 33u + 8u);
    // 1 element: 1 payload byte + 1 group's metadata.
    EXPECT_EQ(tensor_bytes(1, DataType::kInt4Grouped), 5u);
}

TEST(Dtype, CompressionRatioNearlyAQuarter)
{
    // Paper Sec. IV-B: 4-bit group-wise quantization reduces the model
    // "to nearly a quarter".
    const double ratio = compression_ratio_vs_fp16(DataType::kInt4Grouped);
    EXPECT_NEAR(ratio, 0.28125, 1e-6);
    EXPECT_DOUBLE_EQ(compression_ratio_vs_fp16(DataType::kFp16), 1.0);
    EXPECT_DOUBLE_EQ(compression_ratio_vs_fp16(DataType::kFp32), 2.0);
    EXPECT_DOUBLE_EQ(compression_ratio_vs_fp16(DataType::kInt8), 0.5);
}

TEST(Dtype, Names)
{
    EXPECT_STREQ(data_type_name(DataType::kFp16), "fp16");
    EXPECT_STREQ(data_type_name(DataType::kInt4Grouped), "int4-g64");
}

} // namespace
} // namespace helm::model
