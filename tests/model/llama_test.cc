/**
 * @file
 * Unit tests for the LLaMa zoo and the GQA/gated-FFN generalization of
 * the transformer builder.
 */
#include <gtest/gtest.h>

#include "model/footprint.h"
#include "model/llama.h"
#include "model/opt.h"
#include "placement/helm_placement.h"
#include "runtime/engine.h"

namespace helm::model {
namespace {

TEST(Llama, ParameterCountsMatchModelNames)
{
    EXPECT_NEAR(static_cast<double>(
                    llama_config(LlamaVariant::kLlama2_7B)
                        .parameter_count()),
                6.74e9, 0.05e9 * 3);
    EXPECT_NEAR(static_cast<double>(
                    llama_config(LlamaVariant::kLlama2_13B)
                        .parameter_count()),
                13.0e9, 0.4e9);
    EXPECT_NEAR(static_cast<double>(
                    llama_config(LlamaVariant::kLlama2_70B)
                        .parameter_count()),
                69e9, 2e9);
    EXPECT_NEAR(static_cast<double>(
                    llama_config(LlamaVariant::kLlama3_8B)
                        .parameter_count()),
                8.0e9, 0.3e9);
}

TEST(Llama, FamilySwitches)
{
    const auto c = llama_config(LlamaVariant::kLlama2_70B);
    EXPECT_FALSE(c.has_biases);
    EXPECT_FALSE(c.has_pos_embedding);
    EXPECT_FALSE(c.norm_has_bias);
    EXPECT_TRUE(c.gated_ffn);
    EXPECT_EQ(c.kv_heads, 8u);
    EXPECT_EQ(c.effective_kv_heads(), 8u);
    EXPECT_EQ(c.kv_dim(), 8u * 128u);
}

TEST(Llama, OptDefaultsUnchanged)
{
    // The generalization must not perturb the paper's models.
    const auto opt = opt_config(OptVariant::kOpt175B);
    EXPECT_TRUE(opt.has_biases);
    EXPECT_TRUE(opt.has_pos_embedding);
    EXPECT_TRUE(opt.norm_has_bias);
    EXPECT_FALSE(opt.gated_ffn);
    EXPECT_EQ(opt.effective_kv_heads(), opt.heads);
    EXPECT_EQ(opt.kv_dim(), opt.hidden);
}

TEST(Llama, GqaShrinksKvCacheEightfold)
{
    const auto llama70 = llama_config(LlamaVariant::kLlama2_70B);
    TransformerConfig mha_twin = llama70; // same dims, full MHA
    mha_twin.kv_heads = 0;
    const Bytes gqa = kv_bytes_per_block(llama70, 2048);
    const Bytes mha = kv_bytes_per_block(mha_twin, 2048);
    EXPECT_EQ(mha, 8 * gqa);
}

TEST(Llama, LayerStructure)
{
    const auto layers =
        build_layers(llama_config(LlamaVariant::kLlama2_7B));
    // 32 blocks x 2 + 2.
    EXPECT_EQ(layers.size(), 66u);
    // No bias/pos/norm-bias weights anywhere.
    for (const auto &layer : layers) {
        for (const auto &w : layer.weights) {
            EXPECT_NE(w.role, WeightRole::kQBias) << w.name;
            EXPECT_NE(w.role, WeightRole::kAttnLnBias) << w.name;
            EXPECT_NE(w.role, WeightRole::kPosEmbedding) << w.name;
            EXPECT_NE(w.role, WeightRole::kFc1Bias) << w.name;
        }
    }
    // Gated FFN: fc1, fc2, fc3, norm weight.
    const auto &ffn = layers[2];
    ASSERT_EQ(ffn.weights.size(), 4u);
    EXPECT_EQ(ffn.weights[0].role, WeightRole::kFc1);
    EXPECT_EQ(ffn.weights[1].role, WeightRole::kFc2);
    EXPECT_EQ(ffn.weights[2].role, WeightRole::kFc3);
    EXPECT_EQ(ffn.weights[3].role, WeightRole::kFfnLnWeight);
    EXPECT_EQ(ffn.weights[0].bytes(), ffn.weights[2].bytes());
}

TEST(Llama, GqaShrinksKvProjections)
{
    const auto layers =
        build_layers(llama_config(LlamaVariant::kLlama2_70B));
    const auto &mha = layers[1];
    // q: h x h; k: h x kv_dim = h x h/8.
    EXPECT_EQ(mha.weights[0].role, WeightRole::kQProj);
    EXPECT_EQ(mha.weights[1].role, WeightRole::kKProj);
    EXPECT_EQ(mha.weights[0].elements, 8 * mha.weights[1].elements);
}

TEST(Llama, ZooLookup)
{
    auto found = llama_config_by_name("LLaMa-2-70B");
    ASSERT_TRUE(found.is_ok());
    EXPECT_EQ(found->blocks, 80u);
    EXPECT_FALSE(llama_config_by_name("LLaMa-9000").is_ok());
}

TEST(Llama, HelmPlacementBalancesGatedFfn)
{
    // With three equal FFN matrices, HeLM's 30% request lands the first
    // (gate) matrix on the GPU: its size midpoint sits at ~1/6 < 30%.
    const auto layers = build_layers(
        llama_config(LlamaVariant::kLlama2_70B),
        DataType::kInt4Grouped);
    const auto map = placement::HelmPlacement().place(
        layers, placement::Policy::host_offload());
    const auto ffn = map.split_for_type(LayerType::kFfn);
    EXPECT_GT(ffn.gpu, 25.0);
    EXPECT_LT(ffn.gpu, 40.0);
}

TEST(Llama, EndToEndServing)
{
    runtime::ServingSpec spec;
    spec.model = llama_config(LlamaVariant::kLlama2_70B);
    spec.memory = mem::ConfigKind::kNvdram;
    spec.placement = placement::PlacementKind::kHelm;
    spec.compress_weights = true;
    spec.batch = 4;
    spec.repeats = 2;
    const auto result = runtime::simulate_inference(spec);
    ASSERT_TRUE(result.is_ok()) << result.status().to_string();
    EXPECT_GT(result->metrics.throughput, 0.0);
}

TEST(Llama, GqaAdmitsLargerBatches)
{
    // Same dims, GQA vs full MHA: the 8x smaller KV cache must admit a
    // much larger maximum batch.
    const auto gqa = llama_config(LlamaVariant::kLlama2_70B);
    TransformerConfig mha_twin = gqa;
    mha_twin.kv_heads = 0;
    const auto gpu = gpu::GpuSpec::a100_40gb();
    SequenceShape shape;
    const auto gqa_layers = build_layers(gqa, DataType::kInt4Grouped);
    const auto mha_layers =
        build_layers(mha_twin, DataType::kInt4Grouped);
    const auto gqa_max =
        runtime::max_batch(gpu, gqa, gqa_layers, 0, shape, true);
    const auto mha_max =
        runtime::max_batch(gpu, mha_twin, mha_layers, 0, shape, true);
    EXPECT_GT(gqa_max, 4 * mha_max);
}

} // namespace
} // namespace helm::model
