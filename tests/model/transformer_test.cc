/**
 * @file
 * Unit tests for the transformer layer builder against the paper's
 * published model dimensions.
 */
#include <gtest/gtest.h>

#include <set>

#include "model/opt.h"
#include "model/transformer.h"

namespace helm::model {
namespace {

TEST(Transformer, LayerCountsMatchPaper)
{
    // Sec. III-B: OPT-30B has 98 layers, OPT-175B has 194.
    EXPECT_EQ(opt_config(OptVariant::kOpt30B).num_layers(), 98u);
    EXPECT_EQ(opt_config(OptVariant::kOpt175B).num_layers(), 194u);
    const auto layers30 =
        build_layers(opt_config(OptVariant::kOpt30B));
    const auto layers175 =
        build_layers(opt_config(OptVariant::kOpt175B));
    EXPECT_EQ(layers30.size(), 98u);
    EXPECT_EQ(layers175.size(), 194u);
}

TEST(Transformer, LayerOrdering)
{
    const auto layers = build_layers(opt_config(OptVariant::kOpt1_3B));
    EXPECT_EQ(layers.front().type, LayerType::kInputEmbedding);
    EXPECT_EQ(layers.back().type, LayerType::kOutputEmbedding);
    for (std::size_t i = 1; i + 1 < layers.size(); ++i) {
        const LayerType expected =
            (i % 2 == 1) ? LayerType::kMha : LayerType::kFfn;
        EXPECT_EQ(layers[i].type, expected) << "layer " << i;
    }
}

TEST(Transformer, LayerIndicesAndBlocks)
{
    const auto layers = build_layers(opt_config(OptVariant::kOpt1_3B));
    for (std::size_t i = 0; i < layers.size(); ++i)
        EXPECT_EQ(layers[i].layer_index, static_cast<int>(i));
    EXPECT_EQ(layers[0].block_index, -1);
    EXPECT_EQ(layers[1].block_index, 0);
    EXPECT_EQ(layers[2].block_index, 0);
    EXPECT_EQ(layers[3].block_index, 1);
    EXPECT_EQ(layers.back().block_index, -1);
}

TEST(Transformer, ParameterCountsMatchModelNames)
{
    // Published parameter counts, within 3%.
    EXPECT_NEAR(
        static_cast<double>(
            opt_config(OptVariant::kOpt30B).parameter_count()),
        30e9, 0.03 * 30e9);
    EXPECT_NEAR(
        static_cast<double>(
            opt_config(OptVariant::kOpt175B).parameter_count()),
        175e9, 0.03 * 175e9);
    EXPECT_NEAR(
        static_cast<double>(
            opt_config(OptVariant::kOpt6_7B).parameter_count()),
        6.7e9, 0.05 * 6.7e9);
}

TEST(Transformer, DecoderBlockBytesMatchPaperExample)
{
    // Sec. V: "for a single OPT-175B self-attention block, the model
    // weights occupy 3.38 GB" (GiB, FP16).
    const Bytes block = decoder_block_bytes(
        opt_config(OptVariant::kOpt175B), DataType::kFp16);
    EXPECT_NEAR(static_cast<double>(block) / static_cast<double>(kGiB),
                3.38, 0.02);
}

TEST(Transformer, TotalWeightBytesMatchPaperExample)
{
    // Sec. V: "total memory footprint of the model weights is 324.48 GB"
    // (GiB; decoder blocks only).
    const auto config = opt_config(OptVariant::kOpt175B);
    const Bytes block = decoder_block_bytes(config, DataType::kFp16);
    EXPECT_NEAR(static_cast<double>(config.blocks * block) /
                    static_cast<double>(kGiB),
                324.48, 1.0);
}

TEST(Transformer, FfnLayerTwiceTheMhaLayer)
{
    // Fig. 7: FFN layers are the ridges, MHA the dips — FFN holds 2x the
    // bytes (8h^2 vs 4h^2).
    const auto layers = build_layers(opt_config(OptVariant::kOpt175B));
    const double mha = static_cast<double>(layers[1].weight_bytes());
    const double ffn = static_cast<double>(layers[2].weight_bytes());
    EXPECT_NEAR(ffn / mha, 2.0, 0.01);
}

TEST(Transformer, CompressionQuartersMatrixWeights)
{
    const auto config = opt_config(OptVariant::kOpt30B);
    const auto fp16 = build_layers(config, DataType::kFp16);
    const auto int4 = build_layers(config, DataType::kInt4Grouped);
    const double ratio =
        static_cast<double>(model_weight_bytes(int4)) /
        static_cast<double>(model_weight_bytes(fp16));
    EXPECT_NEAR(ratio, 0.28, 0.01);
}

TEST(Transformer, BiasAndNormStayFp16UnderCompression)
{
    const auto layers = build_layers(opt_config(OptVariant::kOpt1_3B),
                                     DataType::kInt4Grouped);
    for (const auto &w : layers[1].weights) {
        if (is_matrix_role(w.role))
            EXPECT_EQ(w.dtype, DataType::kInt4Grouped) << w.name;
        else
            EXPECT_EQ(w.dtype, DataType::kFp16) << w.name;
    }
}

TEST(Transformer, WeightNamesUnique)
{
    const auto layers = build_layers(opt_config(OptVariant::kOpt2_7B));
    std::set<std::string> names;
    std::size_t total = 0;
    for (const auto &layer : layers) {
        for (const auto &w : layer.weights) {
            names.insert(w.name);
            ++total;
        }
    }
    EXPECT_EQ(names.size(), total);
}

TEST(Transformer, MhaWeightEnumeration)
{
    // FlexGen order: projection matrices first, then biases, then the
    // input LayerNorm — Listing 2 cumulates over this order.
    const auto layers = build_layers(opt_config(OptVariant::kOpt1_3B));
    const auto &mha = layers[1];
    ASSERT_EQ(mha.weights.size(), 10u);
    EXPECT_EQ(mha.weights[0].role, WeightRole::kQProj);
    EXPECT_EQ(mha.weights[3].role, WeightRole::kOutProj);
    EXPECT_EQ(mha.weights[4].role, WeightRole::kQBias);
    EXPECT_EQ(mha.weights[9].role, WeightRole::kAttnLnBias);
}

TEST(Transformer, FfnWeightEnumeration)
{
    const auto layers = build_layers(opt_config(OptVariant::kOpt1_3B));
    const auto &ffn = layers[2];
    ASSERT_EQ(ffn.weights.size(), 6u);
    EXPECT_EQ(ffn.weights[0].role, WeightRole::kFc1);
    EXPECT_EQ(ffn.weights[1].role, WeightRole::kFc2);
    // fc1 and fc2 matrices are the same size (h*4h).
    EXPECT_EQ(ffn.weights[0].bytes(), ffn.weights[1].bytes());
}

TEST(Transformer, HeadDimension)
{
    EXPECT_EQ(opt_config(OptVariant::kOpt175B).head_dim(), 128u);
    EXPECT_EQ(opt_config(OptVariant::kOpt30B).head_dim(), 128u);
}

TEST(Transformer, WeightRoleClassification)
{
    EXPECT_TRUE(is_matrix_role(WeightRole::kFc1));
    EXPECT_TRUE(is_matrix_role(WeightRole::kTokenEmbedding));
    EXPECT_FALSE(is_matrix_role(WeightRole::kQBias));
    EXPECT_TRUE(is_bias_or_norm_role(WeightRole::kAttnLnWeight));
    EXPECT_FALSE(is_bias_or_norm_role(WeightRole::kLmHead));
}

} // namespace
} // namespace helm::model
