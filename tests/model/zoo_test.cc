/**
 * @file
 * Unit tests for the unified model registry.
 */
#include <gtest/gtest.h>

#include <set>

#include "model/zoo.h"

namespace helm::model {
namespace {

TEST(Zoo, CoversBothFamilies)
{
    const auto models = all_models();
    EXPECT_EQ(models.size(), 13u); // 8 OPT + 5 LLaMa
    bool saw_opt = false, saw_llama = false;
    for (const auto &m : models) {
        if (m.name.rfind("OPT", 0) == 0)
            saw_opt = true;
        if (m.name.rfind("LLaMa", 0) == 0)
            saw_llama = true;
    }
    EXPECT_TRUE(saw_opt);
    EXPECT_TRUE(saw_llama);
}

TEST(Zoo, NamesUnique)
{
    std::set<std::string> names;
    for (const auto &m : all_models())
        names.insert(m.name);
    EXPECT_EQ(names.size(), all_models().size());
}

TEST(Zoo, FindAcrossFamilies)
{
    ASSERT_TRUE(find_model("OPT-30B").is_ok());
    ASSERT_TRUE(find_model("LLaMa-2-70B").is_ok());
    EXPECT_EQ(find_model("OPT-30B")->hidden, 7168u);
    EXPECT_EQ(find_model("LLaMa-2-70B")->kv_heads, 8u);
}

TEST(Zoo, MissRedirectsToRegistry)
{
    const auto miss = find_model("GPT-J");
    EXPECT_EQ(miss.status().code(), StatusCode::kNotFound);
    EXPECT_NE(miss.status().message().find("helmsim models"),
              std::string::npos);
}

TEST(Zoo, EveryModelBuildsAndServes)
{
    for (const auto &m : all_models()) {
        const auto layers = build_layers(m);
        EXPECT_EQ(layers.size(), m.num_layers()) << m.name;
        EXPECT_GT(model_weight_bytes(layers), 0u) << m.name;
    }
}

} // namespace
} // namespace helm::model
