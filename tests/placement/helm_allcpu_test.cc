/**
 * @file
 * Unit tests for HeLM (Listing 3) and All-CPU (Sec. V-C) placements.
 */
#include <gtest/gtest.h>

#include "model/opt.h"
#include "placement/all_cpu.h"
#include "placement/baseline.h"
#include "placement/helm_placement.h"

namespace helm::placement {
namespace {

using model::DataType;
using model::LayerType;
using model::OptVariant;
using model::WeightRole;

class HelmPlacementTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        layers_ = model::build_layers(
            model::opt_config(OptVariant::kOpt175B),
            DataType::kInt4Grouped);
        map_ = HelmPlacement().place(layers_, Policy::host_offload());
    }

    const model::LayerSpec &
    layer(std::size_t i) const
    {
        return layers_[i];
    }

    Tier
    tier_of(std::size_t layer_idx, WeightRole role) const
    {
        const auto &weights = layers_[layer_idx].weights;
        for (std::size_t w = 0; w < weights.size(); ++w) {
            if (weights[w].role == role)
                return map_.layers[layer_idx].weight_tiers[w];
        }
        ADD_FAILURE() << "role not found in layer " << layer_idx;
        return Tier::kDisk;
    }

    std::vector<model::LayerSpec> layers_;
    PlacementMap map_;
};

TEST_F(HelmPlacementTest, Fc1OnGpuFc2OnHost)
{
    // Sec. V-B: "allocating the weights of the first fully connected
    // (FC) layer of FFN on the GPU"; fc2 stays on host.
    EXPECT_EQ(tier_of(2, WeightRole::kFc1), Tier::kGpu);
    EXPECT_EQ(tier_of(2, WeightRole::kFc2), Tier::kCpu);
}

TEST_F(HelmPlacementTest, BiasAndNormOnGpuForBothLayerTypes)
{
    // "along with the weights of all the bias and normalization layers
    // for both MHA and FFN".
    EXPECT_EQ(tier_of(1, WeightRole::kQBias), Tier::kGpu);
    EXPECT_EQ(tier_of(1, WeightRole::kAttnLnWeight), Tier::kGpu);
    EXPECT_EQ(tier_of(1, WeightRole::kOutBias), Tier::kGpu);
    EXPECT_EQ(tier_of(2, WeightRole::kFc1Bias), Tier::kGpu);
    EXPECT_EQ(tier_of(2, WeightRole::kFfnLnBias), Tier::kGpu);
}

TEST_F(HelmPlacementTest, MhaMatricesStayOnHost)
{
    // "The rest of the MHA and FFN weights are offloaded on to the host
    // memory" — the four h^2 projections exceed MHA's 10% GPU budget.
    EXPECT_EQ(tier_of(1, WeightRole::kQProj), Tier::kCpu);
    EXPECT_EQ(tier_of(1, WeightRole::kKProj), Tier::kCpu);
    EXPECT_EQ(tier_of(1, WeightRole::kVProj), Tier::kCpu);
    EXPECT_EQ(tier_of(1, WeightRole::kOutProj), Tier::kCpu);
}

TEST_F(HelmPlacementTest, NothingOnDisk)
{
    // Listing 3: MHA (10, 90, 0) and FFN (30, 70, 0) leave disk empty.
    EXPECT_EQ(map_.tier_total(Tier::kDisk), 0u);
}

TEST_F(HelmPlacementTest, FfnSplitRoughlyHalfHalf)
{
    // Fig. 10: fc1 + metadata give FFN layers a ~50% GPU share — the
    // requested 30% overshoots because fc1's midpoint falls below 30%.
    const TierSplit ffn = map_.split_for_type(LayerType::kFfn);
    EXPECT_NEAR(ffn.gpu, 50.0, 1.0);
    EXPECT_NEAR(ffn.cpu, 50.0, 1.0);
}

TEST_F(HelmPlacementTest, MhaAlmostEntirelyOnHost)
{
    const TierSplit mha = map_.split_for_type(LayerType::kMha);
    EXPECT_LT(mha.gpu, 1.0); // only bias/norm metadata
    EXPECT_GT(mha.cpu, 99.0);
}

TEST_F(HelmPlacementTest, TotalGpuShareAboutOneThird)
{
    // Sec. V-C: "even with HeLM, only 33% of the total weights are held
    // in the GPU memory".
    EXPECT_NEAR(map_.achieved().gpu, 33.0, 1.5);
}

TEST_F(HelmPlacementTest, FfnTransferDropsMhaTransferRises)
{
    // Fig. 11a: HeLM reduces FFN transfer ~49% and raises MHA ~33%
    // relative to the baseline.
    const PlacementMap base =
        BaselinePlacement().place(layers_, Policy::host_offload());
    const Bytes base_ffn = base.layers[2].off_gpu_bytes();
    const Bytes helm_ffn = map_.layers[2].off_gpu_bytes();
    const Bytes base_mha = base.layers[1].off_gpu_bytes();
    const Bytes helm_mha = map_.layers[1].off_gpu_bytes();
    const double ffn_delta =
        1.0 - static_cast<double>(helm_ffn) /
                  static_cast<double>(base_ffn);
    const double mha_delta =
        static_cast<double>(helm_mha) / static_cast<double>(base_mha) -
        1.0;
    EXPECT_NEAR(ffn_delta, 0.4933, 0.03);
    EXPECT_NEAR(mha_delta, 0.3255, 0.03);
}

TEST_F(HelmPlacementTest, TransfersBalancedAcrossBlockLayers)
{
    // HeLM's goal: FFN and MHA off-GPU bytes within ~15% of each other,
    // versus the baseline's 2.7x imbalance.
    const Bytes mha_off = map_.layers[1].off_gpu_bytes();
    const Bytes ffn_off = map_.layers[2].off_gpu_bytes();
    const double ratio = static_cast<double>(ffn_off) /
                         static_cast<double>(mha_off);
    EXPECT_GT(ratio, 0.85);
    EXPECT_LT(ratio, 1.15);
}

TEST(HelmPlacement, CustomSplitsChangeGpuShare)
{
    const auto layers = model::build_layers(
        model::opt_config(OptVariant::kOpt13B), DataType::kInt4Grouped);
    HelmSplits aggressive;
    aggressive.ffn = {80.0, 20.0, 0.0};
    const TierSplit def = HelmPlacement()
                              .place(layers, Policy::host_offload())
                              .split_for_type(LayerType::kFfn);
    const TierSplit agg = HelmPlacement(aggressive)
                              .place(layers, Policy::host_offload())
                              .split_for_type(LayerType::kFfn);
    EXPECT_GT(agg.gpu, def.gpu);
}

TEST(HelmPlacement, EmbeddingLayersFollowThePolicy)
{
    const auto layers = model::build_layers(
        model::opt_config(OptVariant::kOpt1_3B));
    // All-GPU policy: the embedding layers land fully on the GPU while
    // MHA/FFN still follow HeLM's own splits.
    const Policy policy{0.0, 0.0, 100.0, false};
    const PlacementMap map = HelmPlacement().place(layers, policy);
    EXPECT_NEAR(map.layers.front().split().gpu, 100.0, 1e-9);
    EXPECT_NEAR(map.layers.back().split().gpu, 100.0, 1e-9);
    EXPECT_LT(map.split_for_type(LayerType::kMha).gpu, 1.0);
}

TEST(AllCpuPlacement, EverythingOnHost)
{
    const auto layers = model::build_layers(
        model::opt_config(OptVariant::kOpt30B));
    const PlacementMap map =
        AllCpuPlacement().place(layers, Policy::host_offload());
    EXPECT_EQ(map.tier_total(Tier::kGpu), 0u);
    EXPECT_EQ(map.tier_total(Tier::kDisk), 0u);
    EXPECT_EQ(map.tier_total(Tier::kCpu),
              model::model_weight_bytes(layers));
    EXPECT_NEAR(map.achieved().cpu, 100.0, 1e-9);
}

TEST(AllCpuPlacement, IgnoresPolicy)
{
    const auto layers = model::build_layers(
        model::opt_config(OptVariant::kOpt1_3B));
    const Policy all_gpu{0.0, 0.0, 100.0, false};
    const PlacementMap map = AllCpuPlacement().place(layers, all_gpu);
    EXPECT_EQ(map.tier_total(Tier::kGpu), 0u);
}

TEST(PlacementFactory, AllKinds)
{
    EXPECT_EQ(make_placement(PlacementKind::kHelm)->name(), "HeLM");
    EXPECT_EQ(make_placement(PlacementKind::kAllCpu)->name(), "All-CPU");
    EXPECT_STREQ(placement_kind_name(PlacementKind::kHelm), "HeLM");
    EXPECT_STREQ(placement_kind_name(PlacementKind::kAllCpu), "All-CPU");
}

} // namespace
} // namespace helm::placement
