/**
 * @file
 * Unit tests for FlexGen's baseline placement (Listing 2), including the
 * paper's exact achieved-distribution results (Sec. V-A).
 */
#include <gtest/gtest.h>

#include "model/opt.h"
#include "placement/baseline.h"

namespace helm::placement {
namespace {

using model::DataType;
using model::LayerType;
using model::OptVariant;

TEST(GetChoice, FirstTierBelowCumulative)
{
    const std::array<double, 3> percents{65.0, 15.0, 20.0};
    EXPECT_EQ(get_choice_index(0.0, percents), 0u);
    EXPECT_EQ(get_choice_index(64.9, percents), 0u);
    EXPECT_EQ(get_choice_index(65.0, percents), 1u);
    EXPECT_EQ(get_choice_index(79.9, percents), 1u);
    EXPECT_EQ(get_choice_index(80.0, percents), 2u);
    EXPECT_EQ(get_choice_index(99.9, percents), 2u);
    // Values at/above 100 land on the last tier (Listing 2 line 6).
    EXPECT_EQ(get_choice_index(100.0, percents), 2u);
    EXPECT_EQ(get_choice_index(150.0, percents), 2u);
}

TEST(GetChoice, ZeroPercentTiersAreSkipped)
{
    const std::array<double, 3> percents{0.0, 80.0, 20.0};
    EXPECT_EQ(get_choice_index(0.0, percents), 1u);
    EXPECT_EQ(get_choice_index(79.9, percents), 1u);
    EXPECT_EQ(get_choice_index(80.0, percents), 2u);
}

class BaselinePlacementTest : public ::testing::Test
{
  protected:
    void
    place_175b(const Policy &policy, DataType dtype)
    {
        layers_ = model::build_layers(
            model::opt_config(OptVariant::kOpt175B), dtype);
        map_ = BaselinePlacement().place(layers_, policy);
    }

    std::vector<model::LayerSpec> layers_;
    PlacementMap map_;
};

TEST_F(BaselinePlacementTest, AchievedDistributionHostConfig)
{
    // Sec. V-A: requested (0, 80, 20) achieves (0, 91.7, 8.3).
    place_175b(Policy::host_offload(), DataType::kInt4Grouped);
    const TierSplit achieved = map_.achieved();
    EXPECT_NEAR(achieved.disk, 0.0, 0.01);
    EXPECT_NEAR(achieved.cpu, 91.7, 0.6);
    EXPECT_NEAR(achieved.gpu, 8.3, 0.6);
}

TEST_F(BaselinePlacementTest, AchievedDistributionStorageConfig)
{
    // Sec. V-A: requested (65, 15, 20) achieves (58.6, 33.1, 8.3).
    place_175b(Policy::disk_offload(), DataType::kInt4Grouped);
    const TierSplit achieved = map_.achieved();
    EXPECT_NEAR(achieved.disk, 58.6, 1.0);
    EXPECT_NEAR(achieved.cpu, 33.1, 1.0);
    EXPECT_NEAR(achieved.gpu, 8.3, 0.6);
}

TEST_F(BaselinePlacementTest, FfnGetsNoGpuAllocation)
{
    // Figs. 7b/7c: "the larger FFN layer gets no allocation on the GPU
    // while the smaller MHA layer does".
    place_175b(Policy::host_offload(), DataType::kInt4Grouped);
    const TierSplit ffn = map_.split_for_type(LayerType::kFfn);
    const TierSplit mha = map_.split_for_type(LayerType::kMha);
    EXPECT_NEAR(ffn.gpu, 0.0, 0.1);
    EXPECT_GT(mha.gpu, 20.0);
    EXPECT_NEAR(mha.gpu, 25.0, 1.0); // out_proj + metadata land on GPU
}

TEST_F(BaselinePlacementTest, StorageConfigSplitsPerLayerType)
{
    place_175b(Policy::disk_offload(), DataType::kInt4Grouped);
    const TierSplit mha = map_.split_for_type(LayerType::kMha);
    const TierSplit ffn = map_.split_for_type(LayerType::kFfn);
    // Fig. 7b: MHA ~75% disk + ~25% GPU; FFN ~50/50 disk/cpu.
    EXPECT_NEAR(mha.disk, 75.0, 1.0);
    EXPECT_NEAR(mha.gpu, 25.0, 1.0);
    EXPECT_NEAR(ffn.disk, 50.0, 1.0);
    EXPECT_NEAR(ffn.cpu, 50.0, 1.0);
    EXPECT_NEAR(ffn.gpu, 0.0, 0.1);
}

TEST_F(BaselinePlacementTest, SawtoothTransferPattern)
{
    // Fig. 7a: alternating MHA (dip) / FFN (ridge) off-GPU bytes.
    place_175b(Policy::host_offload(), DataType::kInt4Grouped);
    for (std::size_t i = 1; i + 2 < map_.layers.size(); i += 2) {
        const Bytes mha_off = map_.layers[i].off_gpu_bytes();
        const Bytes ffn_off = map_.layers[i + 1].off_gpu_bytes();
        EXPECT_LT(mha_off, ffn_off) << "block at layer " << i;
    }
}

TEST_F(BaselinePlacementTest, EveryWeightAssignedExactlyOnce)
{
    place_175b(Policy::host_offload(), DataType::kFp16);
    ASSERT_EQ(map_.layers.size(), layers_.size());
    for (std::size_t i = 0; i < layers_.size(); ++i) {
        EXPECT_EQ(map_.layers[i].weight_tiers.size(),
                  layers_[i].weights.size());
        EXPECT_EQ(map_.layers[i].total_bytes(),
                  layers_[i].weight_bytes());
    }
}

TEST_F(BaselinePlacementTest, AchievedSplitSumsTo100)
{
    place_175b(Policy::disk_offload(), DataType::kFp16);
    const TierSplit s = map_.achieved();
    EXPECT_NEAR(s.gpu + s.cpu + s.disk, 100.0, 1e-6);
}

TEST(BaselinePlacement, AllGpuPolicyPutsEverythingOnGpu)
{
    const auto layers = model::build_layers(
        model::opt_config(OptVariant::kOpt1_3B));
    const Policy policy{0.0, 0.0, 100.0, false};
    const PlacementMap map = BaselinePlacement().place(layers, policy);
    EXPECT_NEAR(map.achieved().gpu, 100.0, 1e-9);
    EXPECT_EQ(map.tier_total(Tier::kCpu), 0u);
}

TEST(BaselinePlacement, AllDiskPolicy)
{
    const auto layers = model::build_layers(
        model::opt_config(OptVariant::kOpt1_3B));
    const Policy policy{100.0, 0.0, 0.0, false};
    const PlacementMap map = BaselinePlacement().place(layers, policy);
    EXPECT_NEAR(map.achieved().disk, 100.0, 1e-9);
}

TEST(BaselinePlacement, NameAndFactory)
{
    EXPECT_EQ(BaselinePlacement().name(), "Baseline");
    EXPECT_EQ(make_placement(PlacementKind::kBaseline)->name(),
              "Baseline");
    EXPECT_STREQ(placement_kind_name(PlacementKind::kBaseline),
                 "Baseline");
}

TEST(BaselinePlacement, DistributionIndependentOfCompression)
{
    // Quantization scales matrices uniformly, so the achieved split of
    // decoder layers barely moves.
    const auto config = model::opt_config(OptVariant::kOpt30B);
    const auto fp16 = model::build_layers(config, DataType::kFp16);
    const auto int4 =
        model::build_layers(config, DataType::kInt4Grouped);
    const TierSplit a =
        BaselinePlacement().place(fp16, Policy::host_offload()).achieved();
    const TierSplit b =
        BaselinePlacement().place(int4, Policy::host_offload()).achieved();
    EXPECT_NEAR(a.gpu, b.gpu, 1.5);
    EXPECT_NEAR(a.cpu, b.cpu, 1.5);
}

} // namespace
} // namespace helm::placement
