/**
 * @file
 * Unit tests for the profile-guided Balanced placement.
 */
#include <gtest/gtest.h>

#include "model/opt.h"
#include "placement/balanced.h"
#include "runtime/engine.h"

namespace helm::placement {
namespace {

using model::DataType;
using model::OptVariant;

class BalancedTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        layers_ = model::build_layers(
            model::opt_config(OptVariant::kOpt13B),
            DataType::kInt4Grouped);
    }

    BalanceProfile
    uniform_profile(Seconds window, Bandwidth bw, Bytes budget) const
    {
        BalanceProfile profile;
        profile.compute_times.assign(layers_.size(), window);
        profile.transfer_bandwidth = bw;
        profile.gpu_weight_budget = budget;
        return profile;
    }

    std::vector<model::LayerSpec> layers_;
};

TEST_F(BalancedTest, ProfileSizeMismatchAsserts)
{
    BalanceProfile profile =
        uniform_profile(1e-3, Bandwidth::gb_per_s(20.0), 1 * kGiB);
    profile.compute_times.pop_back();
    BalancedPlacement algorithm(profile);
    EXPECT_DEATH(algorithm.place(layers_, Policy::host_offload()),
                 "profile must cover every layer");
}

TEST_F(BalancedTest, EveryLayerMeetsItsWindowWhenBudgetAmple)
{
    const Bandwidth bw = Bandwidth::gb_per_s(20.0);
    const Seconds window = 5e-3; // 100 MB per window at 20 GB/s
    BalancedPlacement algorithm(
        uniform_profile(window, bw, 1000 * kGiB));
    const auto map = algorithm.place(layers_, Policy::host_offload());
    EXPECT_DOUBLE_EQ(algorithm.residual_stall(), 0.0);
    const double allowed = window * bw.raw();
    for (const auto &layer : map.layers) {
        EXPECT_LE(static_cast<double>(layer.off_gpu_bytes()),
                  allowed + 1.0)
            << "layer " << layer.layer_index;
    }
}

TEST_F(BalancedTest, HugeWindowsPinNothing)
{
    BalancedPlacement algorithm(
        uniform_profile(10.0, Bandwidth::gb_per_s(20.0), 1000 * kGiB));
    const auto map = algorithm.place(layers_, Policy::host_offload());
    EXPECT_EQ(map.tier_total(Tier::kGpu), 0u);
}

TEST_F(BalancedTest, ZeroWindowsPinEverythingWithinBudget)
{
    // Zero compute windows demand everything on GPU; with an ample
    // budget that is exactly what should happen.
    BalancedPlacement algorithm(
        uniform_profile(0.0, Bandwidth::gb_per_s(20.0), 1000 * kGiB));
    const auto map = algorithm.place(layers_, Policy::host_offload());
    EXPECT_EQ(map.tier_total(Tier::kCpu), 0u);
    EXPECT_EQ(map.tier_total(Tier::kGpu),
              model::model_weight_bytes(layers_));
}

TEST_F(BalancedTest, TightBudgetRespectedWithResidualStall)
{
    const Bytes budget = 1 * kGiB; // far below the perfect-balance need
    BalancedPlacement algorithm(
        uniform_profile(1e-4, Bandwidth::gb_per_s(20.0), budget));
    const auto map = algorithm.place(layers_, Policy::host_offload());
    EXPECT_LE(map.tier_total(Tier::kGpu), budget);
    EXPECT_GT(map.tier_total(Tier::kGpu), budget / 2); // budget used
    EXPECT_GT(algorithm.residual_stall(), 0.0);
}

TEST_F(BalancedTest, BudgetSpentWhereStallsAreWorst)
{
    // Give the FFN layers (index 2, 4, ...) tight windows and the MHA
    // layers loose ones: the budget must flow to FFN tensors first.
    BalanceProfile profile;
    profile.compute_times.assign(layers_.size(), 1.0); // loose default
    for (std::size_t j = 1; j + 1 < layers_.size(); j += 2)
        profile.compute_times[j] = 0.0; // layer j+1 (FFN) gets no window
    profile.transfer_bandwidth = Bandwidth::gb_per_s(20.0);
    profile.gpu_weight_budget = 4 * kGiB;
    BalancedPlacement algorithm(profile);
    const auto map = algorithm.place(layers_, Policy::host_offload());
    const auto ffn = map.split_for_type(model::LayerType::kFfn);
    const auto mha = map.split_for_type(model::LayerType::kMha);
    EXPECT_GT(ffn.gpu, mha.gpu);
}

TEST_F(BalancedTest, NothingOnDisk)
{
    BalancedPlacement algorithm(
        uniform_profile(1e-3, Bandwidth::gb_per_s(20.0), 8 * kGiB));
    const auto map = algorithm.place(layers_, Policy::host_offload());
    EXPECT_EQ(map.tier_total(Tier::kDisk), 0u);
    EXPECT_EQ(map.algorithm, "Balanced");
}

TEST(BalancedEngine, RunsEndToEnd)
{
    runtime::ServingSpec spec;
    spec.model = model::opt_config(OptVariant::kOpt175B);
    spec.memory = mem::ConfigKind::kNvdram;
    spec.placement = PlacementKind::kBalanced;
    spec.compress_weights = true;
    spec.batch = 1;
    spec.repeats = 2;
    const auto result = runtime::simulate_inference(spec);
    ASSERT_TRUE(result.is_ok()) << result.status().to_string();
    EXPECT_EQ(result->placement.algorithm, "Balanced");
    EXPECT_GT(result->metrics.throughput, 0.0);
}

TEST(BalancedEngine, MatchesOrBeatsHelmOnDecodeLatency)
{
    // Balanced solves the objective HeLM approximates, so it must not
    // lose to HeLM's fixed percentages (small slack for the bisection
    // granularity and the profile's context approximation).
    runtime::ServingSpec spec;
    spec.model = model::opt_config(OptVariant::kOpt175B);
    spec.memory = mem::ConfigKind::kNvdram;
    spec.compress_weights = true;
    spec.batch = 1;
    spec.repeats = 2;
    spec.keep_records = false;

    spec.placement = PlacementKind::kHelm;
    const auto helm_run = runtime::simulate_inference(spec);
    spec.placement = PlacementKind::kBalanced;
    const auto balanced = runtime::simulate_inference(spec);
    ASSERT_TRUE(helm_run.is_ok());
    ASSERT_TRUE(balanced.is_ok());
    EXPECT_LE(balanced->metrics.tbt, helm_run->metrics.tbt * 1.02);
}

TEST(BalancedEngine, BeatsBaselineClearly)
{
    runtime::ServingSpec spec;
    spec.model = model::opt_config(OptVariant::kOpt175B);
    spec.memory = mem::ConfigKind::kNvdram;
    spec.compress_weights = true;
    spec.batch = 1;
    spec.repeats = 2;
    spec.keep_records = false;

    spec.placement = PlacementKind::kBaseline;
    const auto baseline = runtime::simulate_inference(spec);
    spec.placement = PlacementKind::kBalanced;
    const auto balanced = runtime::simulate_inference(spec);
    ASSERT_TRUE(baseline.is_ok());
    ASSERT_TRUE(balanced.is_ok());
    EXPECT_LT(balanced->metrics.tbt, baseline->metrics.tbt * 0.85);
}

TEST(BalancedEngine, KindNameRegistered)
{
    EXPECT_STREQ(placement_kind_name(PlacementKind::kBalanced),
                 "Balanced");
}

} // namespace
} // namespace helm::placement
