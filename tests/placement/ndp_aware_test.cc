/**
 * @file
 * Unit tests for the per-layer GPU-vs-NDP compute-site decision.
 */
#include <gtest/gtest.h>

#include "placement/ndp_aware.h"

namespace helm::placement {
namespace {

NdpProfile
test_profile()
{
    NdpProfile profile;
    profile.h2d_bandwidth = Bandwidth::gb_per_s(20.0);
    profile.gemv_rate = Bandwidth::gb_per_s(64.0);
    profile.gemv_flops = 2e12;
    profile.command_latency = 5e-6;
    return profile;
}

/** Fully host-resident FFN layer: bandwidth-bound by construction. */
LayerSiteWork
offloadable_ffn()
{
    LayerSiteWork layer;
    layer.type = model::LayerType::kFfn;
    layer.host_bytes = 2ull * kGiB;
    layer.total_bytes = 2ull * kGiB;
    layer.stream_bytes = 2ull * kGiB;
    layer.flops = 4e9; // intensity ~2 flop/byte: deeply bandwidth-bound
    layer.gpu_compute = 1e-4;
    return layer;
}

TEST(NdpAware, ExecutionTimeIsMaxOfStreamAndCompute)
{
    const NdpProfile profile = test_profile();
    // Bandwidth-bound: 64 GiB at 64 GB/s is ~1.07 s >> compute.
    const Bytes bytes = 64ull * kGiB;
    EXPECT_NEAR(ndp_execution_time(profile, bytes, 1.0),
                static_cast<double>(bytes) / profile.gemv_rate.raw(),
                1e-12);
    // Compute-bound: 2e13 FLOPs at 2 TFLOPS is 10 s >> streaming.
    EXPECT_NEAR(ndp_execution_time(profile, 1, 2e13), 10.0, 1e-9);
}

TEST(NdpAware, GpuOnlyModeShortCircuits)
{
    const std::vector<SiteDecision> decisions = assign_compute_sites(
        {offloadable_ffn()}, test_profile(),
        ComputeSiteMode::kGpuOnly);
    ASSERT_EQ(decisions.size(), 1u);
    EXPECT_EQ(decisions[0].site, ComputeSite::kGpu);
    // Short-circuit: no estimates computed on the default path.
    EXPECT_EQ(decisions[0].ndp_time, 0.0);
}

TEST(NdpAware, BandwidthBoundFfnOffloadsUnderAuto)
{
    const std::vector<SiteDecision> decisions = assign_compute_sites(
        {offloadable_ffn()}, test_profile(), ComputeSiteMode::kNdpAuto);
    ASSERT_EQ(decisions.size(), 1u);
    EXPECT_EQ(decisions[0].site, ComputeSite::kNdp);
    // The verdict's own numbers must justify it.
    EXPECT_LT(decisions[0].ndp_time, decisions[0].gpu_time);
    EXPECT_GT(decisions[0].arithmetic_intensity, 0.0);
}

TEST(NdpAware, ComputeBoundFfnStaysOnTheGpu)
{
    LayerSiteWork layer = offloadable_ffn();
    // Crank the arithmetic intensity: the GPU's FLOP advantage wins.
    layer.flops = 1e15;
    layer.gpu_compute = 1e-3;
    const std::vector<SiteDecision> decisions = assign_compute_sites(
        {layer}, test_profile(), ComputeSiteMode::kNdpAuto);
    EXPECT_EQ(decisions[0].site, ComputeSite::kGpu);
    EXPECT_GT(decisions[0].ndp_time, decisions[0].gpu_time);
}

TEST(NdpAware, MhaNeverOffloadsEvenWhenForced)
{
    LayerSiteWork layer = offloadable_ffn();
    layer.type = model::LayerType::kMha;
    const std::vector<SiteDecision> decisions = assign_compute_sites(
        {layer}, test_profile(), ComputeSiteMode::kNdpAll);
    EXPECT_EQ(decisions[0].site, ComputeSite::kGpu);
}

TEST(NdpAware, PartiallyResidentFfnIsIneligible)
{
    // A layer split across tiers still pays the h2d for its GPU share,
    // so only fully host-resident layers may offload.
    LayerSiteWork layer = offloadable_ffn();
    layer.host_bytes = layer.total_bytes / 2;
    const std::vector<SiteDecision> decisions = assign_compute_sites(
        {layer}, test_profile(), ComputeSiteMode::kNdpAll);
    EXPECT_EQ(decisions[0].site, ComputeSite::kGpu);

    layer.host_bytes = 0;
    EXPECT_EQ(assign_compute_sites({layer}, test_profile(),
                                   ComputeSiteMode::kNdpAll)[0]
                  .site,
              ComputeSite::kGpu);
}

TEST(NdpAware, NdpAllForcesEligibleLayersRegardlessOfEconomics)
{
    LayerSiteWork layer = offloadable_ffn();
    layer.flops = 1e15; // NDP loses on time, but the mode forces it
    layer.gpu_compute = 1e-3;
    const std::vector<SiteDecision> decisions = assign_compute_sites(
        {layer}, test_profile(), ComputeSiteMode::kNdpAll);
    EXPECT_EQ(decisions[0].site, ComputeSite::kNdp);
}

TEST(NdpAware, MixedStackDecidesPerLayer)
{
    LayerSiteWork mha = offloadable_ffn();
    mha.type = model::LayerType::kMha;
    LayerSiteWork hot = offloadable_ffn();
    hot.flops = 1e15;
    hot.gpu_compute = 1e-3;
    const std::vector<SiteDecision> decisions = assign_compute_sites(
        {mha, offloadable_ffn(), hot}, test_profile(),
        ComputeSiteMode::kNdpAuto);
    ASSERT_EQ(decisions.size(), 3u);
    EXPECT_EQ(decisions[0].site, ComputeSite::kGpu);
    EXPECT_EQ(decisions[1].site, ComputeSite::kNdp);
    EXPECT_EQ(decisions[2].site, ComputeSite::kGpu);
}

TEST(NdpAware, NamesAreStable)
{
    EXPECT_STREQ(compute_site_name(ComputeSite::kGpu), "gpu");
    EXPECT_STREQ(compute_site_name(ComputeSite::kNdp), "ndp");
    EXPECT_STREQ(compute_site_mode_name(ComputeSiteMode::kGpuOnly),
                 "gpu");
    EXPECT_STREQ(compute_site_mode_name(ComputeSiteMode::kNdpAuto),
                 "auto");
    EXPECT_STREQ(compute_site_mode_name(ComputeSiteMode::kNdpAll),
                 "ndp");
}

} // namespace
} // namespace helm::placement
