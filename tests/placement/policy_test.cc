/**
 * @file
 * Unit tests for Policy validation and ordering helpers.
 */
#include <gtest/gtest.h>

#include "placement/policy.h"

namespace helm::placement {
namespace {

TEST(Policy, DefaultsValid)
{
    EXPECT_TRUE(Policy{}.validate().is_ok());
    EXPECT_TRUE(Policy::host_offload().validate().is_ok());
    EXPECT_TRUE(Policy::disk_offload().validate().is_ok());
}

TEST(Policy, PaperDefaults)
{
    // Sec. V-A: (65, 15, 20) for storage configs, (0, 80, 20) otherwise.
    const Policy disk = Policy::disk_offload();
    EXPECT_DOUBLE_EQ(disk.disk_percent, 65.0);
    EXPECT_DOUBLE_EQ(disk.cpu_percent, 15.0);
    EXPECT_DOUBLE_EQ(disk.gpu_percent, 20.0);
    const Policy host = Policy::host_offload();
    EXPECT_DOUBLE_EQ(host.disk_percent, 0.0);
    EXPECT_DOUBLE_EQ(host.cpu_percent, 80.0);
    EXPECT_DOUBLE_EQ(host.gpu_percent, 20.0);
}

TEST(Policy, RejectsBadSums)
{
    Policy p{10.0, 10.0, 10.0, false};
    EXPECT_FALSE(p.validate().is_ok());
    Policy q{0.0, 0.0, 100.1, false};
    EXPECT_FALSE(q.validate().is_ok());
}

TEST(Policy, RejectsNegatives)
{
    Policy p{-10.0, 90.0, 20.0, false};
    EXPECT_FALSE(p.validate().is_ok());
    EXPECT_EQ(p.validate().code(), StatusCode::kInvalidArgument);
}

TEST(Policy, OrderingHelpers)
{
    const Policy p{65.0, 15.0, 20.0, false};
    const auto flexgen = p.disk_cpu_gpu();
    EXPECT_DOUBLE_EQ(flexgen[0], 65.0);
    EXPECT_DOUBLE_EQ(flexgen[1], 15.0);
    EXPECT_DOUBLE_EQ(flexgen[2], 20.0);
    const auto helm_order = p.gpu_cpu_disk();
    EXPECT_DOUBLE_EQ(helm_order[0], 20.0);
    EXPECT_DOUBLE_EQ(helm_order[1], 15.0);
    EXPECT_DOUBLE_EQ(helm_order[2], 65.0);
}

TEST(Policy, ToString)
{
    Policy p{0.0, 80.0, 20.0, true};
    EXPECT_EQ(p.to_string(), "(disk=0, cpu=80, gpu=20, int4)");
}

TEST(Policy, TierNames)
{
    EXPECT_STREQ(tier_name(Tier::kGpu), "gpu");
    EXPECT_STREQ(tier_name(Tier::kCpu), "cpu");
    EXPECT_STREQ(tier_name(Tier::kDisk), "disk");
}

} // namespace
} // namespace helm::placement
