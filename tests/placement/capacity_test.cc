/**
 * @file
 * Unit tests for GPU-capacity enforcement (weight spilling).
 */
#include <gtest/gtest.h>

#include "model/opt.h"
#include "placement/baseline.h"
#include "placement/capacity.h"
#include "placement/helm_placement.h"

namespace helm::placement {
namespace {

using model::DataType;
using model::OptVariant;

class CapacityTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        layers_ = model::build_layers(
            model::opt_config(OptVariant::kOpt13B),
            DataType::kInt4Grouped);
        map_ = HelmPlacement().place(layers_, Policy::host_offload());
    }

    std::vector<model::LayerSpec> layers_;
    PlacementMap map_;
};

TEST_F(CapacityTest, NoOpWhenUnderBudget)
{
    const Bytes gpu_before = map_.tier_total(Tier::kGpu);
    const SpillReport report =
        enforce_gpu_capacity(map_, layers_, gpu_before + kGiB);
    EXPECT_TRUE(report.fits);
    EXPECT_FALSE(report.spilled());
    EXPECT_EQ(report.spilled_weights, 0u);
    EXPECT_EQ(map_.tier_total(Tier::kGpu), gpu_before);
}

TEST_F(CapacityTest, SpillsDownToBudget)
{
    const Bytes gpu_before = map_.tier_total(Tier::kGpu);
    const Bytes budget = gpu_before / 2;
    const SpillReport report =
        enforce_gpu_capacity(map_, layers_, budget);
    EXPECT_TRUE(report.fits);
    EXPECT_TRUE(report.spilled());
    EXPECT_LE(map_.tier_total(Tier::kGpu), budget);
    EXPECT_EQ(report.gpu_weight_bytes_before, gpu_before);
    EXPECT_EQ(report.gpu_weight_bytes_after,
              map_.tier_total(Tier::kGpu));
    EXPECT_EQ(report.spilled_bytes,
              gpu_before - report.gpu_weight_bytes_after);
}

TEST_F(CapacityTest, SpilledBytesMoveToCpuTier)
{
    const Bytes cpu_before = map_.tier_total(Tier::kCpu);
    const Bytes gpu_before = map_.tier_total(Tier::kGpu);
    enforce_gpu_capacity(map_, layers_, gpu_before / 2);
    // Conservation: total bytes unchanged, spill lands on the CPU tier.
    EXPECT_EQ(map_.tier_total(Tier::kCpu) + map_.tier_total(Tier::kGpu) +
                  map_.tier_total(Tier::kDisk),
              cpu_before + gpu_before);
    EXPECT_GT(map_.tier_total(Tier::kCpu), cpu_before);
}

TEST_F(CapacityTest, LargestWeightsSpillFirst)
{
    // With a budget just below the current GPU share, only big matrices
    // (fc1) should move; HeLM's bias/norm anchors must stay resident.
    const Bytes gpu_before = map_.tier_total(Tier::kGpu);
    enforce_gpu_capacity(map_, layers_, gpu_before * 9 / 10);
    for (std::size_t li = 0; li < layers_.size(); ++li) {
        for (std::size_t wi = 0; wi < layers_[li].weights.size(); ++wi) {
            const auto &w = layers_[li].weights[wi];
            if (model::is_bias_or_norm_role(w.role) &&
                layers_[li].type != model::LayerType::kInputEmbedding &&
                layers_[li].type != model::LayerType::kOutputEmbedding) {
                EXPECT_EQ(map_.layers[li].weight_tiers[wi], Tier::kGpu)
                    << w.name;
            }
        }
    }
}

TEST_F(CapacityTest, ZeroBudgetEvictsEverything)
{
    const SpillReport report = enforce_gpu_capacity(map_, layers_, 0);
    EXPECT_TRUE(report.fits);
    EXPECT_EQ(map_.tier_total(Tier::kGpu), 0u);
}

TEST_F(CapacityTest, IdempotentOnSecondCall)
{
    const Bytes budget = map_.tier_total(Tier::kGpu) / 3;
    enforce_gpu_capacity(map_, layers_, budget);
    const Bytes after_first = map_.tier_total(Tier::kGpu);
    const SpillReport second =
        enforce_gpu_capacity(map_, layers_, budget);
    EXPECT_FALSE(second.spilled());
    EXPECT_EQ(map_.tier_total(Tier::kGpu), after_first);
}

TEST(Capacity, BaselinePlacementSpillsToo)
{
    const auto layers = model::build_layers(
        model::opt_config(OptVariant::kOpt6_7B));
    PlacementMap map =
        BaselinePlacement().place(layers, Policy{0.0, 20.0, 80.0, false});
    const Bytes before = map.tier_total(Tier::kGpu);
    ASSERT_GT(before, 2 * kGiB);
    const SpillReport report =
        enforce_gpu_capacity(map, layers, 2 * kGiB);
    EXPECT_TRUE(report.fits);
    EXPECT_LE(map.tier_total(Tier::kGpu), 2 * kGiB);
    EXPECT_EQ(report.spilled_bytes + map.tier_total(Tier::kGpu), before);
}

} // namespace
} // namespace helm::placement
