/**
 * @file
 * Unit tests for the GPU roofline compute model.
 */
#include <gtest/gtest.h>

#include "gpu/compute_model.h"
#include "model/opt.h"

namespace helm::gpu {
namespace {

using model::LayerType;
using model::OptVariant;

class ComputeModelTest : public ::testing::Test
{
  protected:
    LayerWork
    work(LayerType layer, Stage stage, std::uint64_t batch,
         bool compressed = false) const
    {
        LayerWork w;
        w.config = &config_;
        w.layer = layer;
        w.stage = stage;
        w.batch = batch;
        w.prompt_tokens = 128;
        w.context_tokens = 140;
        w.compressed = compressed;
        return w;
    }

    model::TransformerConfig config_ =
        model::opt_config(OptVariant::kOpt175B);
    GpuSpec gpu_ = GpuSpec::a100_40gb();
};

TEST_F(ComputeModelTest, A100Spec)
{
    EXPECT_EQ(gpu_.hbm_capacity, 40 * kGB); // Table I
    EXPECT_NEAR(gpu_.hbm_bandwidth.as_gb_per_s(), 1555.0, 1e-9);
    EXPECT_NEAR(gpu_.peak_fp16_flops, 312e12, 1e6);
    EXPECT_GT(gpu_.effective_flops(), 0.0);
    EXPECT_LT(gpu_.effective_flops(), gpu_.peak_fp16_flops);
    EXPECT_LT(gpu_.effective_hbm().raw(), gpu_.hbm_bandwidth.raw());
}

TEST_F(ComputeModelTest, PrefillFlopsDwarfDecodeFlops)
{
    // Fig. 1: prefill = GEMM over the whole prompt, decode = GEMV.
    const double prefill =
        layer_flops(work(LayerType::kMha, Stage::kPrefill, 1));
    const double decode =
        layer_flops(work(LayerType::kMha, Stage::kDecode, 1));
    EXPECT_GT(prefill, 50.0 * decode);
}

TEST_F(ComputeModelTest, FlopsScaleLinearlyWithBatch)
{
    for (LayerType layer : {LayerType::kMha, LayerType::kFfn}) {
        const double b1 =
            layer_flops(work(layer, Stage::kPrefill, 1));
        const double b8 =
            layer_flops(work(layer, Stage::kPrefill, 8));
        EXPECT_NEAR(b8 / b1, 8.0, 1e-9);
    }
}

TEST_F(ComputeModelTest, FfnHasTwiceTheMhaProjectionFlops)
{
    // 8bsh^2 (MHA projections) vs 16bsh^2 (FFN), attention aside.
    const double mha =
        layer_flops(work(LayerType::kMha, Stage::kDecode, 1));
    const double ffn =
        layer_flops(work(LayerType::kFfn, Stage::kDecode, 1));
    EXPECT_GT(ffn, 1.8 * mha);
    EXPECT_LT(ffn, 2.1 * mha);
}

TEST_F(ComputeModelTest, DecodeIsMemoryBound)
{
    // Decode GEMV: HBM time must dominate FLOP time (Sec. II-A).
    const LayerWork w = work(LayerType::kFfn, Stage::kDecode, 1);
    const double flop_time = layer_flops(w) / gpu_.effective_flops();
    const double hbm_time =
        gpu_.effective_hbm().transfer_time(layer_hbm_bytes(w));
    EXPECT_GT(hbm_time, flop_time);
}

TEST_F(ComputeModelTest, LargeBatchPrefillIsComputeBound)
{
    const LayerWork w = work(LayerType::kFfn, Stage::kPrefill, 32);
    const double flop_time = layer_flops(w) / gpu_.effective_flops();
    const double hbm_time =
        gpu_.effective_hbm().transfer_time(layer_hbm_bytes(w));
    EXPECT_GT(flop_time, hbm_time);
}

TEST_F(ComputeModelTest, DecodeHbmDominatedByWeights)
{
    // At batch 1 the weight matrices dominate decode traffic, so batch
    // barely moves the HBM byte count (weight reuse — the whole point
    // of batching).
    const Bytes b1 = layer_hbm_bytes(work(LayerType::kFfn,
                                          Stage::kDecode, 1));
    const Bytes b8 = layer_hbm_bytes(work(LayerType::kFfn,
                                          Stage::kDecode, 8));
    EXPECT_LT(static_cast<double>(b8) / static_cast<double>(b1), 1.1);
}

TEST_F(ComputeModelTest, CompressionAddsDequantTime)
{
    const Seconds plain = layer_compute_time(
        gpu_, work(LayerType::kFfn, Stage::kDecode, 1, false));
    const Seconds compressed = layer_compute_time(
        gpu_, work(LayerType::kFfn, Stage::kDecode, 1, true));
    // Fig. 6: compute inflates 2.5x-13x under compression.
    const double inflation = compressed / plain;
    EXPECT_GT(inflation, 2.5);
    EXPECT_LT(inflation, 13.0);
}

TEST_F(ComputeModelTest, DequantBytesMatchFp16MatrixFootprint)
{
    const Bytes mha = layer_dequant_bytes(
        work(LayerType::kMha, Stage::kDecode, 1, true));
    EXPECT_EQ(mha, 4 * 12288ull * 12288ull * 2ull);
    const Bytes ffn = layer_dequant_bytes(
        work(LayerType::kFfn, Stage::kDecode, 1, true));
    EXPECT_EQ(ffn, 2 * 12288ull * 49152ull * 2ull);
    EXPECT_EQ(layer_dequant_bytes(
                  work(LayerType::kMha, Stage::kDecode, 1, false)),
              0u);
}

TEST_F(ComputeModelTest, DecodeComputeTimeInsensitiveToBatch)
{
    // Fig. 12e: decode compute does not increase from batch 8 to 44.
    const Seconds b8 = layer_compute_time(
        gpu_, work(LayerType::kFfn, Stage::kDecode, 8, true));
    const Seconds b44 = layer_compute_time(
        gpu_, work(LayerType::kFfn, Stage::kDecode, 44, true));
    EXPECT_NEAR(b44 / b8, 1.0, 0.1);
}

TEST_F(ComputeModelTest, MhaDecodeScalesWithContext)
{
    LayerWork short_ctx = work(LayerType::kMha, Stage::kDecode, 1);
    LayerWork long_ctx = short_ctx;
    long_ctx.context_tokens = 2048;
    EXPECT_GT(layer_flops(long_ctx), layer_flops(short_ctx));
    EXPECT_GT(layer_hbm_bytes(long_ctx), layer_hbm_bytes(short_ctx));
}

TEST_F(ComputeModelTest, EmbeddingLayersCheap)
{
    const Seconds emb = layer_compute_time(
        gpu_, work(LayerType::kInputEmbedding, Stage::kPrefill, 1));
    const Seconds mha = layer_compute_time(
        gpu_, work(LayerType::kMha, Stage::kPrefill, 1));
    EXPECT_LT(emb, mha);
}

TEST_F(ComputeModelTest, StageNames)
{
    EXPECT_STREQ(stage_name(Stage::kPrefill), "prefill");
    EXPECT_STREQ(stage_name(Stage::kDecode), "decode");
}

TEST_F(ComputeModelTest, UsableHbmSubtractsReserveAndStaging)
{
    const Bytes plain = gpu_.usable_hbm(2 * kGiB, false);
    const Bytes compressed = gpu_.usable_hbm(2 * kGiB, true);
    EXPECT_LT(plain, gpu_.hbm_capacity);
    EXPECT_LT(compressed, plain);
    // Degenerate: staging larger than HBM yields zero, not underflow.
    EXPECT_EQ(gpu_.usable_hbm(100 * kGiB, true), 0u);
}

} // namespace
} // namespace helm::gpu
