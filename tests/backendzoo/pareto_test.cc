/**
 * @file
 * Unit tests for the backend-zoo cost model and Pareto explorer: price
 * arithmetic, the non-domination invariant on the frontier, and the
 * jobs-count determinism contract.
 */
#include <gtest/gtest.h>

#include "backendzoo/cost_model.h"
#include "backendzoo/pareto.h"
#include "mem/registry.h"
#include "model/opt.h"

namespace helm::backendzoo {
namespace {

TEST(CostModel, EveryKindHasAPositivePrice)
{
    const CostModel cost;
    for (auto kind :
         {mem::MemoryKind::kDram, mem::MemoryKind::kOptane,
          mem::MemoryKind::kMemoryMode, mem::MemoryKind::kSsd,
          mem::MemoryKind::kFsdax, mem::MemoryKind::kCxl,
          mem::MemoryKind::kNdpDimm, mem::MemoryKind::kHbf})
        EXPECT_GT(cost.dollars_per_gb(kind), 0.0)
            << mem::memory_kind_name(kind);
    // The shape the frontier depends on: flash an order of magnitude
    // cheaper than DRAM, NDP-DIMMs at a premium over plain DDR4.
    EXPECT_LT(cost.dollars_per_gb(mem::MemoryKind::kHbf) * 10.0,
              cost.dollars_per_gb(mem::MemoryKind::kDram));
    EXPECT_GT(cost.dollars_per_gb(mem::MemoryKind::kNdpDimm),
              cost.dollars_per_gb(mem::MemoryKind::kDram));
}

TEST(CostModel, DeviceDollarsScaleWithCapacity)
{
    const CostModel cost;
    const auto dram = mem::make_dram();
    const double expected = cost.dram_per_gb *
                            static_cast<double>(dram->capacity()) / 1e9;
    EXPECT_NEAR(cost.device_dollars(*dram), expected, 1e-9);
}

TEST(CostModel, SystemDollarsSumGpuPlatformAndTiers)
{
    const CostModel cost;
    const auto host_only =
        mem::DeviceRegistry::builtin().make_system("DRAM");
    ASSERT_TRUE(host_only.is_ok());
    const double base = cost.gpu_dollars + cost.host_platform_dollars;
    EXPECT_NEAR(cost.system_dollars(*host_only),
                base + cost.device_dollars(*host_only->host()), 1e-9);

    // Storage-tier systems price both the DRAM host and the device.
    const auto tiered =
        mem::DeviceRegistry::builtin().make_system("SSD");
    ASSERT_TRUE(tiered.is_ok());
    EXPECT_NEAR(cost.system_dollars(*tiered),
                base + cost.device_dollars(*tiered->host()) +
                    cost.device_dollars(*tiered->storage()),
                1e-9);
}

TEST(CostModel, CostPerTokenAmortizesOverTheHorizon)
{
    const CostModel cost;
    const double seconds = cost.amortization_years * 365.0 * 24.0 * 3600.0;
    EXPECT_NEAR(cost.cost_per_token(seconds, 1.0), 1.0, 1e-12);
    EXPECT_EQ(cost.cost_per_token(10000.0, 0.0), 0.0);
}

ExploreOptions
small_options()
{
    ExploreOptions options;
    options.model = model::opt_config(model::OptVariant::kOpt6_7B);
    options.devices = {"DRAM", "NDP-DIMM"};
    options.batches = {1, 8};
    // Keep the unit test to the grid itself; the anchors run in
    // bench_pareto and the dedicated tests below.
    options.include_anchor = false;
    options.include_hbf_exclusive = false;
    return options;
}

TEST(Pareto, FrontierIsNonDominatedAndFeasible)
{
    const auto report = explore(small_options());
    ASSERT_TRUE(report.is_ok());
    ASSERT_GE(report->frontier_size, 1u);

    std::size_t marked = 0;
    for (const ParetoPoint &p : report->points) {
        if (!p.on_frontier)
            continue;
        ++marked;
        EXPECT_TRUE(p.ok) << p.device;
        EXPECT_TRUE(p.feasible) << p.device;
        // Recompute non-domination from scratch: no other ok+feasible
        // point may be at least as good on both axes and strictly
        // better on one.
        for (const ParetoPoint &q : report->points) {
            if (&q == &p || !q.ok || !q.feasible)
                continue;
            const bool dominates =
                q.cost_per_token <= p.cost_per_token && q.tbt <= p.tbt &&
                (q.cost_per_token < p.cost_per_token || q.tbt < p.tbt);
            EXPECT_FALSE(dominates)
                << q.device << "/" << q.placement << " b=" << q.batch
                << " dominates " << p.device << "/" << p.placement
                << " b=" << p.batch;
        }
    }
    EXPECT_EQ(marked, report->frontier_size);
}

TEST(Pareto, NdpAutoVariantAppearsOnlyForNdpDevices)
{
    const auto report = explore(small_options());
    ASSERT_TRUE(report.is_ok());
    bool saw_ndp_auto = false;
    for (const ParetoPoint &p : report->points) {
        if (p.site == "auto") {
            EXPECT_EQ(p.device, "NDP-DIMM");
            saw_ndp_auto = true;
        } else {
            EXPECT_EQ(p.site, "gpu");
        }
    }
    EXPECT_TRUE(saw_ndp_auto);
}

TEST(Pareto, ReportIsByteIdenticalAcrossJobCounts)
{
    ExploreOptions sequential = small_options();
    sequential.jobs = 1;
    ExploreOptions threaded = small_options();
    threaded.jobs = 4;

    const auto a = explore(sequential);
    const auto b = explore(threaded);
    ASSERT_TRUE(a.is_ok());
    ASSERT_TRUE(b.is_ok());
    EXPECT_EQ(report_text(*a), report_text(*b));
}

TEST(Pareto, UnknownDeviceFailsFast)
{
    ExploreOptions options = small_options();
    options.devices = {"DRAM", "punch-cards"};
    const auto report = explore(options);
    ASSERT_FALSE(report.is_ok());
    EXPECT_NE(report.status().to_string().find("punch-cards"),
              std::string::npos);
}

TEST(Pareto, EmptyBatchListIsRejected)
{
    ExploreOptions options = small_options();
    options.batches.clear();
    EXPECT_FALSE(explore(options).is_ok());
}

TEST(Pareto, AnchorReproducesTheLegacyNvdramCell)
{
    // The expensive sections off, the anchor on: the zoo's NVDRAM
    // entry must reproduce the legacy ConfigKind simulation exactly.
    ExploreOptions options = small_options();
    options.devices = {"DRAM"};
    options.batches = {1};
    options.include_anchor = true;
    const auto report = explore(options);
    ASSERT_TRUE(report.is_ok());
    ASSERT_TRUE(report->anchor.ran);
    EXPECT_TRUE(report->anchor.identical);
    EXPECT_EQ(report->anchor.legacy_tbt, report->anchor.zoo_tbt);
}

} // namespace
} // namespace helm::backendzoo
