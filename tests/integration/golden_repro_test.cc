/**
 * @file
 * Golden regression pins for the reproduction scorecard
 * (bench/repro_summary).  PaperResults tests check the numbers land
 * within the paper's tolerances; these pin the simulator's *own*
 * current outputs tightly, so an accidental model change that stays
 * inside the paper band still trips a test.  If a deliberate model
 * change moves a number, re-run bench/repro_summary and update the
 * constant here in the same commit.
 */
#include <gtest/gtest.h>

#include <map>

#include "model/opt.h"
#include "placement/baseline.h"
#include "runtime/engine.h"
#include "runtime/instrument.h"
#include "runtime/planner.h"

namespace helm::runtime {
namespace {

using model::OptVariant;
using placement::PlacementKind;

InferenceMetrics
metrics_175b(mem::ConfigKind memory, PlacementKind placement,
             std::uint64_t batch)
{
    ServingSpec spec;
    spec.model = model::opt_config(OptVariant::kOpt175B);
    spec.memory = memory;
    spec.placement = placement;
    spec.compress_weights = true;
    spec.batch = batch;
    spec.repeats = 2;
    spec.keep_records = false;
    auto result = simulate_inference(spec);
    EXPECT_TRUE(result.is_ok()) << result.status().to_string();
    return result->metrics;
}

TEST(GoldenRepro, MaxBatchHeadlinesExact)
{
    const auto config = model::opt_config(OptVariant::kOpt175B);
    const auto gpu = gpu::GpuSpec::a100_40gb();
    model::SequenceShape shape;
    const auto fp16 = model::build_layers(config, model::DataType::kFp16);
    const auto int4 =
        model::build_layers(config, model::DataType::kInt4Grouped);
    const auto map = placement::BaselinePlacement().place(
        fp16, placement::Policy::host_offload());

    EXPECT_EQ(max_batch(gpu, config, fp16,
                        map.tier_total(placement::Tier::kGpu), shape,
                        false),
              8u);
    EXPECT_EQ(max_batch(gpu, config, int4, 0, shape, true), 44u);
}

TEST(GoldenRepro, Fig11LatencyDeltasPinned)
{
    const auto base_nv = metrics_175b(mem::ConfigKind::kNvdram,
                                      PlacementKind::kBaseline, 1);
    const auto helm_nv = metrics_175b(mem::ConfigKind::kNvdram,
                                      PlacementKind::kHelm, 1);
    const auto helm_dram = metrics_175b(mem::ConfigKind::kDram,
                                        PlacementKind::kHelm, 1);
    const auto helm_mm = metrics_175b(mem::ConfigKind::kMemoryMode,
                                      PlacementKind::kHelm, 1);

    const double tbt_gain = 100.0 * (1.0 - helm_nv.tbt / base_nv.tbt);
    const double ttft_gain =
        100.0 * (1.0 - helm_nv.ttft / base_nv.ttft);
    const double nv_gap =
        100.0 * (helm_nv.tbt / helm_dram.tbt - 1.0);
    const double mm_gap =
        100.0 * (helm_mm.tbt / helm_dram.tbt - 1.0);

    EXPECT_NEAR(tbt_gain, 28.4702, 0.05);
    EXPECT_NEAR(ttft_gain, 26.9125, 0.05);
    EXPECT_NEAR(nv_gap, 9.9905, 0.05);
    EXPECT_NEAR(mm_gap, 2.0963, 0.05);
}

TEST(GoldenRepro, Fig12ThroughputHeadlinesPinned)
{
    const auto base8 = metrics_175b(mem::ConfigKind::kNvdram,
                                    PlacementKind::kBaseline, 8);
    const auto cpu44 = metrics_175b(mem::ConfigKind::kNvdram,
                                    PlacementKind::kAllCpu, 44);
    const auto cpu44_dram = metrics_175b(mem::ConfigKind::kDram,
                                         PlacementKind::kAllCpu, 44);

    const double gain = cpu44.throughput / base8.throughput;
    const double gap =
        100.0 * (1.0 - cpu44.throughput / cpu44_dram.throughput);
    EXPECT_NEAR(gain, 4.9969, 0.005);
    EXPECT_NEAR(gap, 10.8768, 0.05);
}

TEST(GoldenRepro, Fig5AttributionRatiosPinned)
{
    // The paper's Figs. 5/8 time breakdown as the attribution artifact:
    // OPT-175B int4 on NVDRAM, Baseline placement, batch 1 — the
    // transfer-bound regime whose MHA-load bottleneck motivates HeLM.
    ServingSpec spec;
    spec.model = model::opt_config(OptVariant::kOpt175B);
    spec.memory = mem::ConfigKind::kNvdram;
    spec.placement = PlacementKind::kBaseline;
    spec.compress_weights = true;
    spec.batch = 1;
    spec.repeats = 2;
    auto result = simulate_inference(spec);
    ASSERT_TRUE(result.is_ok()) << result.status().to_string();

    const telemetry::TimeAttribution attribution = attribute_records(
        result->records, spec.gpu.layer_overhead,
        result->metrics.total_time);

    // The decomposition must tile the run's wall time (0.1% acceptance
    // bound; it is exact by construction).
    EXPECT_NEAR(attribution.attributed_total(),
                result->metrics.total_time,
                1e-3 * result->metrics.total_time);

    // Internal consistency: each layer type's compute bucket must match
    // the records' own kernel + launch-overhead seconds (within 10% —
    // attribution clamps compute to the step span).
    std::map<std::string, Seconds> kernel_seconds;
    for (const auto &rec : result->records) {
        kernel_seconds[model::layer_type_name(rec.type)] +=
            rec.compute_time + spec.gpu.layer_overhead;
    }
    for (const auto &[layer, bucket] : attribution.buckets()) {
        EXPECT_NEAR(bucket.compute, kernel_seconds.at(layer),
                    0.10 * kernel_seconds.at(layer))
            << layer;
    }

    // Fig. 5/8 headline ratios, pinned tightly (repro_summary values).
    const auto &mha = attribution.buckets().at("mha");
    const auto &ffn = attribution.buckets().at("ffn");
    const double mha_exposed_over_compute = mha.transfer / mha.compute;
    const double ffn_exposed_over_compute = ffn.transfer / ffn.compute;
    const double transfer_share_of_wall =
        (mha.transfer + ffn.transfer) / attribution.wall();
    // MHA is the transfer-bound stage (its sync eats the FFN load);
    // FFN's own load hides almost entirely under MHA compute.
    EXPECT_NEAR(mha_exposed_over_compute, 2.0436, 0.01);
    EXPECT_NEAR(ffn_exposed_over_compute, 0.0, 0.01);
    EXPECT_NEAR(transfer_share_of_wall, 0.4044, 0.002);
}

} // namespace
} // namespace helm::runtime
