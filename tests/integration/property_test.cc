/**
 * @file
 * Property-based (parameterized) sweeps: invariants that must hold
 * across models x memory configurations x placement schemes x batches.
 */
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "model/opt.h"
#include "model/zoo.h"
#include "runtime/engine.h"

namespace helm::runtime {
namespace {

using model::OptVariant;
using placement::PlacementKind;
using placement::Tier;

// ---------------------------------------------------------------------
// Placement invariants across every (model, policy, algorithm) triple.
// ---------------------------------------------------------------------

using PlacementCase =
    std::tuple<OptVariant, PlacementKind, bool /*compressed*/>;

class PlacementProperty
    : public ::testing::TestWithParam<PlacementCase>
{
};

TEST_P(PlacementProperty, ConservationAndCompleteness)
{
    const auto [variant, kind, compressed] = GetParam();
    const auto config = model::opt_config(variant);
    const auto layers = model::build_layers(
        config, compressed ? model::DataType::kInt4Grouped
                           : model::DataType::kFp16);
    const auto map = placement::make_placement(kind)->place(
        layers, placement::Policy::host_offload());

    // Every layer accounted for; per-layer tier bytes sum to the layer.
    ASSERT_EQ(map.layers.size(), layers.size());
    Bytes total = 0;
    for (std::size_t i = 0; i < layers.size(); ++i) {
        EXPECT_EQ(map.layers[i].total_bytes(), layers[i].weight_bytes());
        EXPECT_EQ(map.layers[i].weight_tiers.size(),
                  layers[i].weights.size());
        total += map.layers[i].total_bytes();
    }
    EXPECT_EQ(total, model::model_weight_bytes(layers));

    // Achieved split sums to 100%.
    const auto split = map.achieved();
    EXPECT_NEAR(split.gpu + split.cpu + split.disk, 100.0, 1e-6);

    // Host-memory policy: nothing on disk for any of the three schemes.
    EXPECT_EQ(map.tier_total(Tier::kDisk), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllModelsAndSchemes, PlacementProperty,
    ::testing::Combine(
        ::testing::Values(OptVariant::kOpt1_3B, OptVariant::kOpt6_7B,
                          OptVariant::kOpt13B, OptVariant::kOpt30B,
                          OptVariant::kOpt66B, OptVariant::kOpt175B),
        ::testing::Values(PlacementKind::kBaseline, PlacementKind::kHelm,
                          PlacementKind::kAllCpu),
        ::testing::Bool()),
    [](const auto &info) {
        std::string name =
            model::opt_config(std::get<0>(info.param)).name;
        name += "_";
        name += placement::placement_kind_name(std::get<1>(info.param));
        name += std::get<2>(info.param) ? "_int4" : "_fp16";
        for (char &c : name) {
            if (c == '-' || c == '.')
                c = '_';
        }
        return name;
    });

// ---------------------------------------------------------------------
// Engine invariants across memory configurations and schemes.
// ---------------------------------------------------------------------

using EngineCase = std::tuple<mem::ConfigKind, PlacementKind>;

class EngineProperty : public ::testing::TestWithParam<EngineCase>
{
};

TEST_P(EngineProperty, MetricsSaneOnEveryConfig)
{
    const auto [memory, kind] = GetParam();
    ServingSpec spec;
    spec.model = model::opt_config(OptVariant::kOpt6_7B);
    spec.memory = memory;
    spec.placement = kind;
    spec.batch = 2;
    spec.repeats = 2;
    const auto result = simulate_inference(spec);
    ASSERT_TRUE(result.is_ok()) << result.status().to_string();
    const auto &m = result->metrics;
    EXPECT_GT(m.ttft, 0.0);
    EXPECT_GT(m.tbt, 0.0);
    EXPECT_GT(m.throughput, 0.0);
    EXPECT_GE(m.ttft, m.tbt * 0.9); // prefill never cheaper than decode
    EXPECT_GT(m.total_time, 0.0);
    // Total time bounds: at least repeats x (ttft + (out-1) x tbt) / 2.
    EXPECT_LT(m.ttft, m.total_time);
    EXPECT_TRUE(result->budget.fits());
}

INSTANTIATE_TEST_SUITE_P(
    AllConfigs, EngineProperty,
    ::testing::Combine(
        ::testing::Values(mem::ConfigKind::kDram, mem::ConfigKind::kNvdram,
                          mem::ConfigKind::kMemoryMode,
                          mem::ConfigKind::kSsd, mem::ConfigKind::kFsdax,
                          mem::ConfigKind::kCxlFpga,
                          mem::ConfigKind::kCxlAsic),
        ::testing::Values(PlacementKind::kBaseline, PlacementKind::kHelm,
                          PlacementKind::kAllCpu)),
    [](const auto &info) {
        std::string name =
            mem::config_kind_name(std::get<0>(info.param));
        name += "_";
        name += placement::placement_kind_name(std::get<1>(info.param));
        for (char &c : name) {
            if (c == '-')
                c = '_';
        }
        return name;
    });

// ---------------------------------------------------------------------
// Batch-scaling properties (Figs. 4e/4f).
// ---------------------------------------------------------------------

class BatchScaling : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(BatchScaling, ThroughputGrowsWithBatch)
{
    const std::uint64_t batch = GetParam();
    ServingSpec spec;
    spec.model = model::opt_config(OptVariant::kOpt6_7B);
    spec.memory = mem::ConfigKind::kNvdram;
    spec.placement = PlacementKind::kAllCpu;
    spec.repeats = 2;

    spec.batch = batch;
    const auto big = simulate_inference(spec);
    spec.batch = std::max<std::uint64_t>(1, batch / 2);
    const auto small = simulate_inference(spec);
    ASSERT_TRUE(big.is_ok());
    ASSERT_TRUE(small.is_ok());
    if (batch > 1) {
        EXPECT_GT(big->metrics.throughput, small->metrics.throughput);
        // TBT grows sub-linearly with batch (weight reuse, Sec. II-A).
        EXPECT_LT(big->metrics.tbt,
                  small->metrics.tbt * static_cast<double>(batch));
    } else {
        EXPECT_DOUBLE_EQ(big->metrics.tbt, small->metrics.tbt);
    }
}

INSTANTIATE_TEST_SUITE_P(Batches, BatchScaling,
                         ::testing::Values(1, 2, 4, 8, 16, 32));

// ---------------------------------------------------------------------
// Memory-hierarchy ordering holds for every model large enough to
// offload (Fig. 4's qualitative ranking).
// ---------------------------------------------------------------------

class HierarchyOrdering : public ::testing::TestWithParam<OptVariant>
{
};

TEST_P(HierarchyOrdering, DramNeverSlower)
{
    ServingSpec spec;
    spec.model = model::opt_config(GetParam());
    spec.batch = 1;
    spec.repeats = 2;
    spec.memory = mem::ConfigKind::kDram;
    const auto dram = simulate_inference(spec);
    spec.memory = mem::ConfigKind::kNvdram;
    const auto nvdram = simulate_inference(spec);
    spec.memory = mem::ConfigKind::kMemoryMode;
    const auto mm = simulate_inference(spec);
    ASSERT_TRUE(dram.is_ok());
    ASSERT_TRUE(nvdram.is_ok());
    ASSERT_TRUE(mm.is_ok());
    EXPECT_LE(dram->metrics.tbt, nvdram->metrics.tbt);
    EXPECT_LE(dram->metrics.tbt, mm->metrics.tbt * 1.0001);
    EXPECT_LE(mm->metrics.tbt, nvdram->metrics.tbt * 1.0001);
}

INSTANTIATE_TEST_SUITE_P(Models, HierarchyOrdering,
                         ::testing::Values(OptVariant::kOpt6_7B,
                                           OptVariant::kOpt13B,
                                           OptVariant::kOpt30B,
                                           OptVariant::kOpt66B,
                                           OptVariant::kOpt175B));

// ---------------------------------------------------------------------
// Registry-wide invariants: every model in the zoo (both families) must
// place, budget, and serve cleanly under every scheme.
// ---------------------------------------------------------------------

class RegistryProperty
    : public ::testing::TestWithParam<std::string>
{
};

TEST_P(RegistryProperty, PlacesAndServesUnderEveryScheme)
{
    const auto config = model::find_model(GetParam());
    ASSERT_TRUE(config.is_ok());
    for (auto scheme :
         {PlacementKind::kBaseline, PlacementKind::kHelm,
          PlacementKind::kBalanced, PlacementKind::kAllCpu}) {
        ServingSpec spec;
        spec.model = *config;
        spec.memory = mem::ConfigKind::kNvdram;
        spec.placement = scheme;
        spec.compress_weights = true;
        spec.batch = 1;
        spec.repeats = 1;
        spec.shape.output_tokens = 4; // keep the sweep fast
        const auto result = simulate_inference(spec);
        ASSERT_TRUE(result.is_ok())
            << GetParam() << " / "
            << placement::placement_kind_name(scheme) << ": "
            << result.status().to_string();
        EXPECT_GT(result->metrics.throughput, 0.0);
        EXPECT_TRUE(result->budget.fits());
        // Weight conservation across placement + spilling.
        EXPECT_EQ(result->placement.tier_total(Tier::kGpu) +
                      result->placement.tier_total(Tier::kCpu) +
                      result->placement.tier_total(Tier::kDisk),
                  result->model_bytes);
    }
}

TEST_P(RegistryProperty, CompressionAlwaysShrinksAndNeverSlowsTransfer)
{
    const auto config = model::find_model(GetParam());
    ASSERT_TRUE(config.is_ok());
    const auto fp16 =
        model::build_layers(*config, model::DataType::kFp16);
    const auto int4 =
        model::build_layers(*config, model::DataType::kInt4Grouped);
    EXPECT_LT(model::model_weight_bytes(int4),
              model::model_weight_bytes(fp16) / 3);
    // Per-layer monotonicity, not just the total.
    for (std::size_t i = 0; i < fp16.size(); ++i) {
        EXPECT_LE(int4[i].weight_bytes(), fp16[i].weight_bytes())
            << GetParam() << " layer " << i;
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllRegisteredModels, RegistryProperty,
    ::testing::Values("OPT-1.3B", "OPT-6.7B", "OPT-13B", "OPT-30B",
                      "OPT-66B", "OPT-175B", "LLaMa-2-7B", "LLaMa-2-13B",
                      "LLaMa-2-70B", "LLaMa-3-8B", "LLaMa-3-70B"),
    [](const auto &info) {
        std::string name = info.param;
        for (char &c : name) {
            if (c == '-' || c == '.')
                c = '_';
        }
        return name;
    });

} // namespace
} // namespace helm::runtime
