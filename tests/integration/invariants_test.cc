/**
 * @file
 * Invariant (death) tests: the simulator's results are meaningless if
 * its preconditions are violated, so HELM_ASSERT stays active in every
 * build type.  These tests pin that each guard actually fires.
 */
#include <gtest/gtest.h>

#include "core/helm.h"

namespace helm {
namespace {

TEST(Invariants, ChannelRejectsZeroRate)
{
    EXPECT_DEATH(
        {
            sim::Simulator simulator;
            sim::BandwidthChannel channel(simulator, "x", Bandwidth());
        },
        "channel rate must be positive");
}

TEST(Invariants, SimulatorRejectsNegativeDelay)
{
    EXPECT_DEATH(
        {
            sim::Simulator simulator;
            simulator.schedule(-1.0, [] {});
        },
        "cannot schedule events in the past");
}

TEST(Invariants, SimulatorRejectsNullCallback)
{
    EXPECT_DEATH(
        {
            sim::Simulator simulator;
            simulator.schedule(1.0, std::function<void()>());
        },
        "null callback");
}

TEST(Invariants, ResourceRejectsUnmatchedRelease)
{
    EXPECT_DEATH(
        {
            sim::Simulator simulator;
            sim::FifoResource resource(simulator, "gpu", 1);
            resource.release();
        },
        "release without matching acquire");
}

TEST(Invariants, ResourceRejectsZeroCapacity)
{
    EXPECT_DEATH(
        {
            sim::Simulator simulator;
            sim::FifoResource resource(simulator, "gpu", 0);
        },
        "capacity must be >= 1");
}

TEST(Invariants, LatchRejectsOverArrival)
{
    EXPECT_DEATH(
        {
            sim::CountdownLatch latch(1);
            latch.on_zero([] {});
            latch.arrive();
            latch.arrive();
        },
        "past zero");
}

TEST(Invariants, CurveRejectsUnsortedPoints)
{
    EXPECT_DEATH(
        {
            mem::BandwidthCurve curve(
                std::vector<mem::BandwidthCurve::Point>{
                    {4 * kGiB, Bandwidth::gb_per_s(10.0)},
                    {1 * kGiB, Bandwidth::gb_per_s(20.0)},
                });
            (void)curve;
        },
        "strictly increasing");
}

TEST(Invariants, DeviceRejectsBadNumaNode)
{
    EXPECT_DEATH(
        {
            auto device = mem::make_dram();
            (void)device->read_bandwidth(kGiB, 7);
        },
        "bad NUMA node");
}

TEST(Invariants, PcieRejectsUnknownGeneration)
{
    EXPECT_DEATH({ mem::PcieLink link(7, 16); (void)link; },
                 "generation must be 3..6");
}

TEST(Invariants, BalancedFactoryRefusesWithoutProfile)
{
    EXPECT_DEATH(
        (void)placement::make_placement(
            placement::PlacementKind::kBalanced),
        "BalanceProfile");
}

TEST(Invariants, RngRejectsZeroBound)
{
    EXPECT_DEATH(
        {
            Rng rng(1);
            (void)rng.next_below(0);
        },
        "bound > 0");
}

} // namespace
} // namespace helm
