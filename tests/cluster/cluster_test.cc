/**
 * @file
 * Unit + integration tests for the multi-GPU cluster subsystem:
 * spec parsing/validation, layer partitioning, the replica Router,
 * single-GPU degeneracy (the N=1 cluster must reproduce the
 * single-GPU engine and Server bit-for-bit), shared-port saturation
 * scaling, and the sharded execution modes.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "cluster/cluster_engine.h"
#include "cluster/cluster_server.h"
#include "cluster/router.h"
#include "model/opt.h"
#include "runtime/engine.h"

namespace helm::cluster {
namespace {

using model::OptVariant;

runtime::ServingSpec
small_spec(mem::ConfigKind memory = mem::ConfigKind::kNvdram)
{
    runtime::ServingSpec spec;
    spec.model = model::opt_config(OptVariant::kOpt1_3B);
    spec.memory = memory;
    spec.placement = placement::PlacementKind::kAllCpu;
    spec.keep_records = false;
    return spec;
}

ClusterSpec
cluster_spec(std::uint64_t gpus, Parallelism mode,
             mem::ConfigKind memory = mem::ConfigKind::kNvdram)
{
    ClusterSpec spec;
    spec.serving = small_spec(memory);
    spec.gpus = gpus;
    spec.parallelism = mode;
    return spec;
}

std::vector<workload::TimedRequest>
burst(std::uint64_t n, Seconds arrival, std::uint64_t first_id = 0)
{
    std::vector<workload::TimedRequest> stream;
    for (std::uint64_t i = 0; i < n; ++i) {
        stream.push_back(workload::TimedRequest{
            workload::Request{first_id + i, 128, 21}, arrival});
    }
    return stream;
}

// ---- Parsing / naming -------------------------------------------------

TEST(ClusterSpecTest, ParseRoundTrips)
{
    EXPECT_EQ(*parse_parallelism("replica"), Parallelism::kReplica);
    EXPECT_EQ(*parse_parallelism("data"), Parallelism::kReplica);
    EXPECT_EQ(*parse_parallelism("pipeline"), Parallelism::kPipeline);
    EXPECT_EQ(*parse_parallelism("pp"), Parallelism::kPipeline);
    EXPECT_EQ(*parse_parallelism("tensor"), Parallelism::kTensor);
    EXPECT_EQ(*parse_parallelism("tp"), Parallelism::kTensor);
    EXPECT_EQ(parse_parallelism("bogus").status().code(),
              StatusCode::kInvalidArgument);

    EXPECT_EQ(*parse_router_policy("rr"), RouterPolicy::kRoundRobin);
    EXPECT_EQ(*parse_router_policy("jsq"),
              RouterPolicy::kJoinShortestQueue);
    EXPECT_EQ(*parse_router_policy("po2"), RouterPolicy::kPowerOfTwo);
    EXPECT_EQ(parse_router_policy("lifo").status().code(),
              StatusCode::kInvalidArgument);

    EXPECT_STREQ(parallelism_name(Parallelism::kTensor), "tensor");
    EXPECT_STREQ(router_policy_name(RouterPolicy::kPowerOfTwo), "po2");
}

TEST(ClusterSpecTest, ValidateRejectsBadShapes)
{
    ClusterSpec zero = cluster_spec(0, Parallelism::kReplica);
    EXPECT_EQ(zero.validate().code(), StatusCode::kInvalidArgument);

    ClusterSpec many = cluster_spec(65, Parallelism::kReplica);
    EXPECT_EQ(many.validate().code(), StatusCode::kInvalidArgument);

    ClusterSpec no_sockets = cluster_spec(2, Parallelism::kReplica);
    no_sockets.sockets = 0;
    EXPECT_EQ(no_sockets.validate().code(),
              StatusCode::kInvalidArgument);

    // More pipeline stages than model layers cannot partition.
    ClusterSpec deep = cluster_spec(64, Parallelism::kPipeline);
    deep.serving.model.blocks = 1; // num_layers() = 4 < 64 stages
    EXPECT_EQ(deep.validate().code(), StatusCode::kInvalidArgument);

    EXPECT_TRUE(cluster_spec(4, Parallelism::kTensor).validate().is_ok());
}

TEST(ClusterSpecTest, IterationSchedulersNeedTheSingleGpuPath)
{
    runtime::ServingConfig edf;
    edf.scheduler = runtime::SchedulerKind::kEdf;

    ClusterSpec two = cluster_spec(2, Parallelism::kReplica);
    two.config = edf;
    const Status rejected = two.validate();
    EXPECT_EQ(rejected.code(), StatusCode::kInvalidArgument);
    EXPECT_NE(rejected.to_string().find("--scheduler"),
              std::string::npos);
    EXPECT_NE(rejected.to_string().find("edf"), std::string::npos);

    ClusterSpec sharded = cluster_spec(1, Parallelism::kTensor);
    sharded.config = edf;
    EXPECT_EQ(sharded.validate().code(), StatusCode::kInvalidArgument);

    ClusterSpec ok = cluster_spec(1, Parallelism::kReplica);
    ok.config = edf;
    EXPECT_TRUE(ok.validate().is_ok());

    // The fcfs config keeps every multi-GPU mode available.
    ClusterSpec fcfs = cluster_spec(4, Parallelism::kTensor);
    fcfs.config = runtime::ServingConfig{};
    EXPECT_TRUE(fcfs.validate().is_ok());
}

TEST(ClusterSpecTest, EffectiveConfigFallsBackToLegacyKnobs)
{
    ClusterSpec spec = cluster_spec(2, Parallelism::kReplica);
    spec.policy.max_batch = 6;
    spec.slo.ttft_target = 3.0;
    const runtime::ServingConfig fallback = spec.effective_config();
    EXPECT_EQ(fallback.scheduler, runtime::SchedulerKind::kFcfs);
    EXPECT_FALSE(fallback.auto_max_batch);
    EXPECT_EQ(fallback.max_batch, 6u);
    EXPECT_TRUE(fallback.enforce_ttft);
    EXPECT_DOUBLE_EQ(fallback.ttft_target, 3.0);

    runtime::ServingConfig explicit_config;
    explicit_config.scheduler = runtime::SchedulerKind::kContinuous;
    spec.gpus = 1;
    spec.config = explicit_config;
    EXPECT_EQ(spec.effective_config().scheduler,
              runtime::SchedulerKind::kContinuous);
}

TEST(ClusterDegeneracy, EdfClusterMatchesServerThroughTheBackendSeam)
{
    // The one-GPU replica cluster must reproduce Server under the
    // iteration-level schedulers too, preemptions included.
    runtime::ServingConfig edf;
    edf.scheduler = runtime::SchedulerKind::kEdf;
    edf.auto_max_batch = false;
    edf.max_batch = 2;
    edf.tenants = 2;

    std::vector<workload::TimedRequest> stream;
    const auto add = [&stream](double at, std::uint64_t prompt,
                               std::uint64_t output,
                               std::uint64_t tenant, double deadline) {
        workload::TimedRequest timed;
        timed.request = workload::Request{
            static_cast<std::uint64_t>(stream.size()), prompt, output,
            tenant};
        timed.arrival = at;
        timed.deadline = deadline;
        stream.push_back(timed);
    };
    add(0.0, 256, 64, 0, 1000.0);
    add(0.0, 256, 64, 0, 1000.0);
    add(0.1, 256, 64, 0, 1000.0);
    add(5.0, 64, 8, 1, 9.0);

    auto server = runtime::Server::create(small_spec(), edf);
    ASSERT_TRUE(server.is_ok()) << server.status().to_string();
    ASSERT_TRUE(server->submit(stream).is_ok());
    const auto want = server->serve();
    ASSERT_TRUE(want.is_ok());

    ClusterSpec spec = cluster_spec(1, Parallelism::kReplica);
    spec.config = edf;
    auto cluster = ClusterServer::create(spec);
    ASSERT_TRUE(cluster.is_ok()) << cluster.status().to_string();
    ASSERT_TRUE(cluster->submit(stream).is_ok());
    const auto got = cluster->serve();
    ASSERT_TRUE(got.is_ok()) << got.status().to_string();

    EXPECT_GE(want->preemptions, 1u);
    EXPECT_EQ(got->preemptions, want->preemptions);
    EXPECT_EQ(got->resumes, want->resumes);
    EXPECT_EQ(got->kv_demoted_bytes, want->kv_demoted_bytes);
    EXPECT_EQ(got->kv_promoted_bytes, want->kv_promoted_bytes);
    EXPECT_EQ(got->iterations, want->iterations);
    EXPECT_EQ(got->completed, want->completed);
    EXPECT_EQ(got->makespan, want->makespan);
    EXPECT_EQ(got->total_tokens, want->total_tokens);
}

// ---- Layer partitioning ----------------------------------------------

TEST(PartitionLayersTest, CoversAllLayersContiguously)
{
    const auto layers = model::build_layers(
        model::opt_config(OptVariant::kOpt13B), model::DataType::kFp16);
    for (std::uint64_t stages : {1u, 2u, 3u, 4u, 7u}) {
        auto ranges = partition_layers(layers, stages);
        ASSERT_TRUE(ranges.is_ok());
        ASSERT_EQ(ranges->size(), stages);
        EXPECT_EQ(ranges->front().first, 0u);
        EXPECT_EQ(ranges->back().second, layers.size());
        for (std::size_t s = 0; s < stages; ++s) {
            EXPECT_LT((*ranges)[s].first, (*ranges)[s].second);
            if (s > 0)
                EXPECT_EQ((*ranges)[s].first, (*ranges)[s - 1].second);
        }
    }
}

TEST(PartitionLayersTest, BalancesStoredBytes)
{
    const auto layers = model::build_layers(
        model::opt_config(OptVariant::kOpt13B), model::DataType::kFp16);
    auto ranges = partition_layers(layers, 4);
    ASSERT_TRUE(ranges.is_ok());
    std::vector<double> stage_bytes(4, 0.0);
    double total = 0.0;
    for (std::size_t s = 0; s < 4; ++s) {
        for (auto l = (*ranges)[s].first; l < (*ranges)[s].second; ++l) {
            for (const auto &w : layers[l].weights)
                stage_bytes[s] += static_cast<double>(w.bytes());
        }
        total += stage_bytes[s];
    }
    for (std::size_t s = 0; s < 4; ++s) {
        EXPECT_GT(stage_bytes[s], 0.10 * total / 4.0);
        EXPECT_LT(stage_bytes[s], 2.50 * total / 4.0);
    }
}

TEST(PartitionLayersTest, MoreStagesThanLayersFails)
{
    const auto layers = model::build_layers(
        model::opt_config(OptVariant::kOpt1_3B), model::DataType::kFp16);
    EXPECT_EQ(partition_layers(layers, layers.size() + 1).status().code(),
              StatusCode::kInvalidArgument);
}

// ---- Router -----------------------------------------------------------

TEST(RouterTest, RoundRobinCycles)
{
    Router router(RouterPolicy::kRoundRobin, 3, 1);
    const std::vector<std::uint64_t> depths{5, 0, 9};
    EXPECT_EQ(router.route(depths), 0u);
    EXPECT_EQ(router.route(depths), 1u);
    EXPECT_EQ(router.route(depths), 2u);
    EXPECT_EQ(router.route(depths), 0u);
}

TEST(RouterTest, JsqPicksLeastLoadedLowestIndex)
{
    Router router(RouterPolicy::kJoinShortestQueue, 4, 1);
    EXPECT_EQ(router.route({3, 1, 1, 2}), 1u); // tie -> lowest index
    EXPECT_EQ(router.route({0, 1, 1, 2}), 0u);
}

TEST(RouterTest, PowerOfTwoIsDeterministicAndNeverPicksDeeperGpu)
{
    Router a(RouterPolicy::kPowerOfTwo, 8, 42);
    Router b(RouterPolicy::kPowerOfTwo, 8, 42);
    std::vector<std::uint64_t> depths{9, 3, 7, 1, 8, 2, 6, 4};
    for (int i = 0; i < 64; ++i) {
        const std::uint64_t choice = a.route(depths);
        EXPECT_EQ(choice, b.route(depths)); // same seed, same stream
        ASSERT_LT(choice, depths.size());
        depths[choice]++;
    }
    // Sampling two GPUs and keeping the shallower one must beat
    // blind uniform assignment: the deepest queue cannot run away.
    const auto minmax = std::minmax_element(depths.begin(), depths.end());
    EXPECT_LE(*minmax.second - *minmax.first, 10u);
}

TEST(RouterTest, SingleGpuAlwaysZero)
{
    Router router(RouterPolicy::kPowerOfTwo, 1, 7);
    EXPECT_EQ(router.route({123}), 0u);
}

// ---- Single-GPU degeneracy -------------------------------------------

TEST(ClusterDegeneracy, SaturatedReplicaOneGpuMatchesEngineExactly)
{
    for (const auto memory :
         {mem::ConfigKind::kNvdram, mem::ConfigKind::kDram}) {
        runtime::ServingSpec spec = small_spec(memory);
        spec.batch = 4;
        spec.repeats = 2;
        auto single = runtime::simulate_inference(spec);
        ASSERT_TRUE(single.is_ok()) << single.status().to_string();

        ClusterSpec cs;
        cs.serving = spec;
        cs.gpus = 1;
        cs.parallelism = Parallelism::kReplica;
        auto clustered = run_saturated(cs);
        ASSERT_TRUE(clustered.is_ok()) << clustered.status().to_string();

        // Shared ports have slack at N=1, so the DES timings must be
        // bit-for-bit the single-GPU engine's.
        EXPECT_EQ(clustered->ttft, single->metrics.ttft)
            << mem::config_kind_name(memory);
        EXPECT_EQ(clustered->tbt, single->metrics.tbt);
        EXPECT_EQ(clustered->makespan, single->metrics.total_time);
        EXPECT_EQ(clustered->total_tokens, single->metrics.total_tokens);
        EXPECT_EQ(clustered->aggregate_throughput,
                  single->metrics.throughput);
    }
}

TEST(ClusterDegeneracy, ServerDelegationIsFieldExact)
{
    auto server = runtime::Server::create(small_spec());
    ASSERT_TRUE(server.is_ok());
    ASSERT_TRUE(server->submit(burst(12, 0.0)).is_ok());
    auto want = server->run();
    ASSERT_TRUE(want.is_ok());

    auto cluster =
        ClusterServer::create(cluster_spec(1, Parallelism::kReplica));
    ASSERT_TRUE(cluster.is_ok()) << cluster.status().to_string();
    EXPECT_EQ(cluster->effective_max_batch(),
              server->effective_max_batch());
    ASSERT_TRUE(cluster->submit(burst(12, 0.0)).is_ok());
    auto got = cluster->run();
    ASSERT_TRUE(got.is_ok()) << got.status().to_string();

    const runtime::ServingReport &a = *want;
    const runtime::ServingReport &b = got->serving;
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.rejected, b.rejected);
    EXPECT_EQ(a.batches_formed, b.batches_formed);
    EXPECT_EQ(a.makespan, b.makespan);
    EXPECT_EQ(a.throughput, b.throughput);
    EXPECT_EQ(a.total_tokens, b.total_tokens);
    ASSERT_EQ(a.requests.size(), b.requests.size());
    for (std::size_t i = 0; i < a.requests.size(); ++i) {
        EXPECT_EQ(a.requests[i].id, b.requests[i].id);
        EXPECT_EQ(a.requests[i].ttft, b.requests[i].ttft);
        EXPECT_EQ(a.requests[i].tbt, b.requests[i].tbt);
        EXPECT_EQ(a.requests[i].e2e_latency, b.requests[i].e2e_latency);
        EXPECT_EQ(a.requests[i].queueing_delay,
                  b.requests[i].queueing_delay);
    }
    ASSERT_EQ(got->gpus.size(), 1u);
    EXPECT_EQ(got->gpus[0].requests, b.completed);
}

// ---- Shared-port contention ------------------------------------------

TEST(ClusterScaling, DramScalesNearLinearlyNvdramSaturates)
{
    auto throughput = [](mem::ConfigKind memory, std::uint64_t gpus) {
        ClusterSpec spec = cluster_spec(gpus, Parallelism::kReplica,
                                        memory);
        spec.serving.batch = 4;
        spec.serving.repeats = 2;
        auto result = run_saturated(spec);
        EXPECT_TRUE(result.is_ok()) << result.status().to_string();
        return result->aggregate_throughput;
    };

    const double dram1 = throughput(mem::ConfigKind::kDram, 1);
    const double dram4 = throughput(mem::ConfigKind::kDram, 4);
    const double nv1 = throughput(mem::ConfigKind::kNvdram, 1);
    const double nv4 = throughput(mem::ConfigKind::kNvdram, 4);

    // DRAM's pooled read port has headroom for 4 PCIe links; Optane's
    // streaming ceiling binds cluster-wide (Fig. 3, one level up).
    EXPECT_GT(dram4, 3.3 * dram1);
    EXPECT_LT(nv4, 3.0 * nv1);
    EXPECT_GT(nv4, 1.5 * nv1); // contended, not serialized
    EXPECT_LT(nv4 / nv1, dram4 / dram1);
}

TEST(ClusterScaling, PortUtilizationReportsSaturation)
{
    ClusterSpec spec = cluster_spec(4, Parallelism::kReplica);
    spec.serving.batch = 4;
    auto result = run_saturated(spec);
    ASSERT_TRUE(result.is_ok());
    const auto read = std::find_if(
        result->ports.begin(), result->ports.end(),
        [](const PortStats &p) { return p.name == "host-read"; });
    ASSERT_NE(read, result->ports.end());
    EXPECT_GT(read->utilization, 0.80); // the binding resource
    EXPECT_LE(read->utilization, 1.0 + 1e-9);
    ASSERT_EQ(result->gpus.size(), 4u);
    for (const GpuUtilization &g : result->gpus) {
        EXPECT_GT(g.h2d_bytes, 0u);
        EXPECT_GT(g.compute_busy, 0.0);
    }
}

// ---- Sharded modes ----------------------------------------------------

TEST(ClusterSharded, TensorModeSplitsTrafficAndCompletes)
{
    ClusterSpec spec = cluster_spec(2, Parallelism::kTensor);
    spec.serving.batch = 4;
    spec.serving.repeats = 2;
    auto sharded = run_saturated(spec, /*keep_records=*/true);
    ASSERT_TRUE(sharded.is_ok()) << sharded.status().to_string();

    runtime::ServingSpec single = small_spec();
    single.batch = 4;
    single.repeats = 2;
    auto base = runtime::simulate_inference(single);
    ASSERT_TRUE(base.is_ok());

    EXPECT_EQ(sharded->total_tokens, base->metrics.total_tokens);
    EXPECT_GT(sharded->makespan, 0.0);
    // Each GPU streams roughly half the weights; strictly less than
    // the whole model's traffic, and both links carry traffic.
    ASSERT_EQ(sharded->gpus.size(), 2u);
    for (const GpuUtilization &g : sharded->gpus) {
        EXPECT_GT(g.h2d_bytes, 0u);
        EXPECT_LT(g.h2d_bytes, base->metrics.total_tokens * kGB); // sane
    }
    std::set<std::uint64_t> gpu_rows;
    for (const auto &rec : sharded->records)
        gpu_rows.insert(rec.gpu_index);
    EXPECT_EQ(gpu_rows.size(), 2u);
}

TEST(ClusterSharded, PipelineModeCompletesAllTokens)
{
    ClusterSpec spec = cluster_spec(2, Parallelism::kPipeline);
    spec.serving.batch = 4;
    spec.serving.repeats = 1;
    auto result = run_saturated(spec, /*keep_records=*/true);
    ASSERT_TRUE(result.is_ok()) << result.status().to_string();
    EXPECT_EQ(result->total_tokens,
              4 * spec.serving.shape.output_tokens);
    EXPECT_GT(result->ttft, 0.0);
    EXPECT_GT(result->tbt, 0.0);
    std::set<std::uint64_t> gpu_rows;
    for (const auto &rec : result->records)
        gpu_rows.insert(rec.gpu_index);
    EXPECT_EQ(gpu_rows.size(), 2u);
}

// ---- Replica serving across GPUs -------------------------------------

TEST(ClusterServing, ReplicaClusterServesBurstAcrossGpus)
{
    for (const auto policy :
         {RouterPolicy::kRoundRobin, RouterPolicy::kJoinShortestQueue,
          RouterPolicy::kPowerOfTwo}) {
        ClusterSpec spec = cluster_spec(2, Parallelism::kReplica);
        spec.router = policy;
        auto cluster = ClusterServer::create(spec);
        ASSERT_TRUE(cluster.is_ok()) << cluster.status().to_string();
        ASSERT_TRUE(cluster->submit(burst(16, 0.0)).is_ok());
        auto report = cluster->run();
        ASSERT_TRUE(report.is_ok()) << report.status().to_string();
        EXPECT_EQ(report->serving.completed, 16u);
        EXPECT_EQ(report->serving.rejected, 0u);
        EXPECT_GT(report->serving.throughput, 0.0);
        ASSERT_EQ(report->gpus.size(), 2u);
        std::uint64_t served = 0;
        for (const GpuUtilization &g : report->gpus) {
            EXPECT_GT(g.requests, 0u)
                << "router " << router_policy_name(policy)
                << " starved GPU " << g.gpu;
            served += g.requests;
        }
        EXPECT_EQ(served, 16u);
    }
}

TEST(ClusterServing, TwoReplicasBeatOneUnderLoad)
{
    auto serve = [](std::uint64_t gpus) {
        ClusterSpec spec = cluster_spec(gpus, Parallelism::kReplica);
        auto cluster = ClusterServer::create(spec);
        EXPECT_TRUE(cluster.is_ok());
        EXPECT_TRUE(cluster->submit(burst(24, 0.0)).is_ok());
        auto report = cluster->run();
        EXPECT_TRUE(report.is_ok());
        return report->serving;
    };
    const runtime::ServingReport one = serve(1);
    const runtime::ServingReport two = serve(2);
    EXPECT_EQ(two.completed, one.completed);
    EXPECT_LT(two.makespan, one.makespan);
    EXPECT_GT(two.throughput, one.throughput);
}

TEST(ClusterServing, ShardedServingReportsRequests)
{
    ClusterSpec spec = cluster_spec(2, Parallelism::kTensor);
    auto cluster = ClusterServer::create(spec);
    ASSERT_TRUE(cluster.is_ok()) << cluster.status().to_string();
    ASSERT_TRUE(cluster->submit(burst(8, 0.0)).is_ok());
    auto report = cluster->run();
    ASSERT_TRUE(report.is_ok()) << report.status().to_string();
    EXPECT_EQ(report->serving.completed, 8u);
    EXPECT_GT(report->serving.throughput, 0.0);
    for (const auto &r : report->serving.requests) {
        EXPECT_GT(r.ttft, 0.0);
        EXPECT_GE(r.e2e_latency, r.ttft);
    }
    ASSERT_EQ(report->gpus.size(), 2u);
    EXPECT_GT(report->gpus[0].utilization, 0.0);
    ASSERT_FALSE(report->ports.empty());
}

} // namespace
} // namespace helm::cluster
