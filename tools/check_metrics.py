#!/usr/bin/env python3
"""Validate a helm-metrics-v1 JSON snapshot (helmsim --metrics-out).

Standard library only — this is the CI gate for the machine-readable
run artifact, so it must run anywhere python3 does.

Checks:
  * the document parses and carries ``"schema": "helm-metrics-v1"``;
  * every entry in ``metrics`` is structurally sound: a non-empty
    name, a known type, string-to-string labels, a finite ``value``
    (counters/gauges) or monotone cumulative ``buckets`` ending in
    ``+Inf`` plus finite ``sum``/``count`` (histograms);
  * every ``--require NAME`` appears among the metric names;
  * every ``--min NAME=VALUE`` holds: the values of all
    counter/gauge series named NAME sum to at least VALUE (this is
    how CI gates e.g. a million completed gateway requests);
  * every ``--max NAME=VALUE`` holds: the same sums stay at or below
    VALUE (this is how CI gates e.g. the gateway shed count or the
    tracer-overhead ratio);
  * when the time-attribution metrics are present, the decomposition
    tiles the wall clock: sum(helm_attribution_seconds) +
    helm_attribution_idle_seconds == helm_wall_seconds within 0.1 %.

Exit status 0 when the snapshot passes, 1 otherwise (one message per
problem on stderr).

Usage:
  python3 tools/check_metrics.py run.json \
      --require helm_serving_ttft_seconds --require helm_wall_seconds
"""

import argparse
import json
import math
import sys

VALID_TYPES = ("counter", "gauge", "histogram")

# Relative tolerance for the attribution-sums-to-wall acceptance check.
ATTRIBUTION_RTOL = 1e-3


def check_series(entry, index, errors):
    """Validate one metric entry; append messages to errors."""
    where = "metrics[%d]" % index
    if not isinstance(entry, dict):
        errors.append("%s: not an object" % where)
        return
    name = entry.get("name")
    if not isinstance(name, str) or not name:
        errors.append("%s: missing or empty name" % where)
        return
    where = "%s (%s)" % (where, name)
    kind = entry.get("type")
    if kind not in VALID_TYPES:
        errors.append("%s: bad type %r" % (where, kind))
        return
    labels = entry.get("labels")
    if not isinstance(labels, dict) or not all(
        isinstance(k, str) and isinstance(v, str) for k, v in labels.items()
    ):
        errors.append("%s: labels must map strings to strings" % where)

    if kind in ("counter", "gauge"):
        value = entry.get("value")
        if not isinstance(value, (int, float)) or not math.isfinite(value):
            errors.append("%s: missing or non-finite value" % where)
        return

    buckets = entry.get("buckets")
    if not isinstance(buckets, list) or not buckets:
        errors.append("%s: histogram without buckets" % where)
        return
    previous = -1
    for slot, bucket in enumerate(buckets):
        if not isinstance(bucket, dict) or "le" not in bucket or "count" not in bucket:
            errors.append("%s: buckets[%d] malformed" % (where, slot))
            return
        count = bucket["count"]
        if not isinstance(count, int) or count < previous:
            errors.append(
                "%s: buckets[%d] count not cumulative" % (where, slot)
            )
            return
        previous = count
    if buckets[-1]["le"] != "+Inf":
        errors.append("%s: last bucket le must be +Inf" % where)
    total = entry.get("count")
    if total != previous:
        errors.append(
            "%s: count %r != +Inf bucket count %d" % (where, total, previous)
        )
    sum_value = entry.get("sum")
    if not isinstance(sum_value, (int, float)) or not math.isfinite(sum_value):
        errors.append("%s: missing or non-finite sum" % where)


def check_attribution(metrics, errors):
    """The Figs. 5/8 artifact invariant: attribution tiles the wall."""
    attributed = 0.0
    wall = None
    seen = False
    for entry in metrics:
        name = entry.get("name")
        if name == "helm_attribution_seconds":
            attributed += float(entry.get("value", 0.0))
            seen = True
        elif name == "helm_attribution_idle_seconds":
            attributed += float(entry.get("value", 0.0))
            seen = True
        elif name == "helm_wall_seconds":
            wall = float(entry.get("value", 0.0))
    if not seen:
        return
    if wall is None:
        errors.append(
            "attribution metrics present but helm_wall_seconds missing"
        )
        return
    if abs(attributed - wall) > ATTRIBUTION_RTOL * max(wall, 1e-12):
        errors.append(
            "attribution does not tile the wall clock: "
            "sum %.9g s vs wall %.9g s (tolerance %.1f%%)"
            % (attributed, wall, 100.0 * ATTRIBUTION_RTOL)
        )


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Validate a helm-metrics-v1 snapshot."
    )
    parser.add_argument("snapshot", help="path to the --metrics-out JSON")
    parser.add_argument(
        "--require",
        action="append",
        default=[],
        metavar="NAME",
        help="fail unless this metric name is present (repeatable)",
    )
    parser.add_argument(
        "--min",
        action="append",
        default=[],
        metavar="NAME=VALUE",
        help="fail unless the counter/gauge series named NAME sum to "
        "at least VALUE (repeatable)",
    )
    parser.add_argument(
        "--max",
        action="append",
        default=[],
        metavar="NAME=VALUE",
        help="fail unless the counter/gauge series named NAME sum to "
        "at most VALUE (repeatable)",
    )
    args = parser.parse_args(argv)

    floors = []
    for spec in args.min:
        name, sep, value = spec.partition("=")
        try:
            floors.append((name, float(value)))
        except ValueError:
            sep = ""
        if not sep or not name:
            print(
                "check_metrics: bad --min %r, expected NAME=VALUE" % spec,
                file=sys.stderr,
            )
            return 2

    ceilings = []
    for spec in args.max:
        name, sep, value = spec.partition("=")
        try:
            ceilings.append((name, float(value)))
        except ValueError:
            sep = ""
        if not sep or not name:
            print(
                "check_metrics: bad --max %r, expected NAME=VALUE" % spec,
                file=sys.stderr,
            )
            return 2

    try:
        with open(args.snapshot, "r", encoding="utf-8") as handle:
            document = json.load(handle)
    except (OSError, ValueError) as error:
        print("check_metrics: %s: %s" % (args.snapshot, error), file=sys.stderr)
        return 1

    errors = []
    if not isinstance(document, dict):
        errors.append("top level is not an object")
        document = {}
    if document.get("schema") != "helm-metrics-v1":
        errors.append("schema is %r, expected 'helm-metrics-v1'" % document.get("schema"))
    metrics = document.get("metrics")
    if not isinstance(metrics, list):
        errors.append("metrics is not a list")
        metrics = []

    for index, entry in enumerate(metrics):
        check_series(entry, index, errors)

    names = {e.get("name") for e in metrics if isinstance(e, dict)}
    for required in args.require:
        if required not in names:
            errors.append("required metric missing: %s" % required)

    for name, floor in floors:
        if name not in names:
            errors.append("--min metric missing: %s" % name)
            continue
        total = sum(
            float(e.get("value", 0.0))
            for e in metrics
            if isinstance(e, dict)
            and e.get("name") == name
            and e.get("type") in ("counter", "gauge")
        )
        if not total >= floor:
            errors.append(
                "%s total %.9g < required minimum %.9g" % (name, total, floor)
            )

    for name, ceiling in ceilings:
        if name not in names:
            errors.append("--max metric missing: %s" % name)
            continue
        total = sum(
            float(e.get("value", 0.0))
            for e in metrics
            if isinstance(e, dict)
            and e.get("name") == name
            and e.get("type") in ("counter", "gauge")
        )
        if not total <= ceiling:
            errors.append(
                "%s total %.9g > allowed maximum %.9g"
                % (name, total, ceiling)
            )

    check_attribution([e for e in metrics if isinstance(e, dict)], errors)

    for message in errors:
        print("check_metrics: %s" % message, file=sys.stderr)
    if not errors:
        print(
            "check_metrics: %s OK (%d series, %d required present)"
            % (args.snapshot, len(metrics), len(args.require))
        )
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
