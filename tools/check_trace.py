#!/usr/bin/env python3
"""Validate a helm-trace-v1 span dump (helmsim --trace-out).

Standard library only — this is the CI gate for the tracing artifact,
so it must run anywhere python3 does.

Checks:
  * the document parses and carries ``"schema": "helm-trace-v1"``;
  * the ``stats`` block is present with non-negative integer fields
    and internally consistent: ``retained <= capacity_traces``,
    ``retained_spans <= retained * capacity_spans_per_trace``,
    ``retained <= traces_seen``, ``flagged <= traces_seen`` — the
    flight recorder's memory bound held;
  * ``traces`` matches the stats (len == retained, total spans ==
    retained_spans) and appears in (kind, trace_id) order;
  * every span tree is valid: first span is the root (parent_id
    "0x0"), span ids are unique hex strings, every parent precedes its
    child, and every child interval nests inside its parent;
  * every trace obeys the per-trace span cap.

``--expect-traces N`` additionally gates ``stats.retained >= N`` so CI
can assert the recorder actually captured outliers.

Exit status 0 when the dump passes, 1 otherwise (one message per
problem on stderr).

Usage:
  python3 tools/check_trace.py trace.json
  python3 tools/check_trace.py trace.json --expect-traces 1
"""

import argparse
import json
import sys

STATS_FIELDS = ("traces_seen", "spans_seen", "flagged", "evicted",
                "dropped_spans", "retained", "retained_spans",
                "capacity_traces", "capacity_spans_per_trace")

SPAN_FIELDS = ("span_id", "parent_id", "phase", "name", "start_s",
               "end_s", "attrs")

# Slack for float timestamp comparisons, matching validate_trace().
EPS = 1e-9


def parse_id(text):
    """Span ids are hex strings ("0x1a2b"); return int or None."""
    if not isinstance(text, str) or not text.startswith("0x"):
        return None
    try:
        return int(text, 16)
    except ValueError:
        return None


def check_stats(stats, errors):
    if not isinstance(stats, dict):
        errors.append("stats is not an object")
        return None
    for field in STATS_FIELDS:
        value = stats.get(field)
        if not isinstance(value, int) or isinstance(value, bool) or \
                value < 0:
            errors.append("stats.%s: expected a non-negative integer, "
                          "got %r" % (field, value))
            return None
    if stats["retained"] > stats["capacity_traces"]:
        errors.append("stats: retained %d exceeds capacity_traces %d — "
                      "the flight-recorder bound did not hold" %
                      (stats["retained"], stats["capacity_traces"]))
    if stats["retained_spans"] > \
            stats["retained"] * stats["capacity_spans_per_trace"]:
        errors.append(
            "stats: retained_spans %d exceeds retained %d x "
            "capacity_spans_per_trace %d" %
            (stats["retained_spans"], stats["retained"],
             stats["capacity_spans_per_trace"]))
    if stats["retained"] > stats["traces_seen"]:
        errors.append("stats: retained %d exceeds traces_seen %d" %
                      (stats["retained"], stats["traces_seen"]))
    if stats["flagged"] > stats["traces_seen"]:
        errors.append("stats: flagged %d exceeds traces_seen %d" %
                      (stats["flagged"], stats["traces_seen"]))
    return stats


def check_span_tree(trace, where, cap, errors):
    """Structural span checks mirroring tracing::validate_trace."""
    spans = trace.get("spans")
    if not isinstance(spans, list) or not spans:
        errors.append("%s: spans must be a non-empty list" % where)
        return 0
    if cap is not None and len(spans) > cap:
        errors.append("%s: %d spans exceed capacity_spans_per_trace %d"
                      % (where, len(spans), cap))
    by_id = {}
    root_id = None
    for index, span in enumerate(spans):
        swhere = "%s.spans[%d]" % (where, index)
        if not isinstance(span, dict):
            errors.append("%s: not an object" % swhere)
            return len(spans)
        for field in SPAN_FIELDS:
            if field not in span:
                errors.append("%s: missing %r" % (swhere, field))
                return len(spans)
        span_id = parse_id(span["span_id"])
        parent_id = parse_id(span["parent_id"])
        if span_id is None or parent_id is None:
            errors.append("%s: ids must be hex strings" % swhere)
            return len(spans)
        if span_id in by_id or span_id == 0:
            errors.append("%s: duplicate or zero span id %s" %
                          (swhere, span["span_id"]))
            return len(spans)
        start, end = span["start_s"], span["end_s"]
        if not isinstance(start, (int, float)) or \
                not isinstance(end, (int, float)) or end < start - EPS:
            errors.append("%s: bad interval [%r, %r]" %
                          (swhere, start, end))
            return len(spans)
        if index == 0:
            if parent_id != 0:
                errors.append("%s: first span must be the root "
                              "(parent_id 0x0)" % swhere)
                return len(spans)
            root_id = span_id
        else:
            parent = by_id.get(parent_id)
            if parent is None:
                errors.append(
                    "%s: parent %s does not precede it" %
                    (swhere, span["parent_id"]))
                return len(spans)
            if start < parent["start_s"] - EPS or \
                    end > parent["end_s"] + EPS:
                errors.append(
                    "%s: [%r, %r] escapes parent [%r, %r]" %
                    (swhere, start, end, parent["start_s"],
                     parent["end_s"]))
        by_id[span_id] = span
    del root_id
    return len(spans)


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Validate a helm-trace-v1 span dump.")
    parser.add_argument("path", help="path to the --trace-out JSON")
    parser.add_argument("--expect-traces", type=int, default=0,
                        metavar="N",
                        help="fail unless at least N traces were "
                             "retained (default: 0)")
    args = parser.parse_args(argv)

    try:
        with open(args.path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
    except (OSError, ValueError) as error:
        print("check_trace: %s: %s" % (args.path, error),
              file=sys.stderr)
        return 1

    errors = []
    if not isinstance(document, dict):
        errors.append("top level is not an object")
        document = {}
    if document.get("schema") != "helm-trace-v1":
        errors.append("schema is %r, expected 'helm-trace-v1'" %
                      document.get("schema"))
    stats = check_stats(document.get("stats"), errors)
    traces = document.get("traces")
    if not isinstance(traces, list):
        errors.append("traces is not a list")
        traces = []

    cap = stats["capacity_spans_per_trace"] if stats else None
    total_spans = 0
    previous_key = None
    for index, trace in enumerate(traces):
        where = "traces[%d]" % index
        if not isinstance(trace, dict):
            errors.append("%s: not an object" % where)
            continue
        kind = trace.get("kind")
        trace_id = trace.get("trace_id")
        if not isinstance(kind, str) or not isinstance(trace_id, int):
            errors.append("%s: missing kind/trace_id" % where)
            continue
        key = (kind, trace_id)
        if previous_key is not None and key <= previous_key:
            errors.append(
                "%s: out of order — (%r, %d) after (%r, %d); the dump "
                "must be sorted by (kind, trace_id)" %
                (where, kind, trace_id, previous_key[0],
                 previous_key[1]))
        previous_key = key
        flags = trace.get("flags")
        if not isinstance(flags, list) or not all(
                isinstance(f, str) for f in flags):
            errors.append("%s: flags must be a list of strings" % where)
        total_spans += check_span_tree(trace, where, cap, errors)

    if stats is not None:
        if len(traces) != stats["retained"]:
            errors.append("traces has %d entries but stats.retained is "
                          "%d" % (len(traces), stats["retained"]))
        if total_spans != stats["retained_spans"]:
            errors.append("traces carry %d spans but "
                          "stats.retained_spans is %d" %
                          (total_spans, stats["retained_spans"]))
        if args.expect_traces > 0 and \
                stats["retained"] < args.expect_traces:
            errors.append("stats.retained %d < expected %d" %
                          (stats["retained"], args.expect_traces))

    for message in errors:
        print("check_trace: %s" % message, file=sys.stderr)
    if not errors:
        print("check_trace: %s OK (%d traces, %d spans, bound %dx%d)" %
              (args.path, len(traces), total_spans,
               stats["capacity_traces"] if stats else 0,
               stats["capacity_spans_per_trace"] if stats else 0))
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
