/**
 * @file
 * helmsim — the command-line front end to the library.
 *
 * Subcommands:
 *   run       simulate one serving configuration, print metrics
 *   serve     request-level serving: an arrival stream through the
 *             FCFS scheduler, per-request SLO metrics
 *   cluster   multi-GPU serving over shared host memory: replica,
 *             pipeline, or tensor parallelism behind shared ports
 *   tune      QoS auto-tuner: best plan for an objective (+ TBT ceiling)
 *   membench  host<->GPU copy bandwidth sweep (Fig. 3 methodology)
 *   models    list the model registry
 *   configs   list the Table II memory configurations
 *
 * Examples:
 *   helmsim run --model OPT-175B --memory NVDRAM --placement HeLM --int4
 *   helmsim run --model LLaMa-2-70B --batch 32 --kv-offload --int4 \
 *       --trace /tmp/trace.json --energy
 *   helmsim serve --rate 4 --duration 60 --placement helm \
 *       --memory nvdram --slo-ttft-ms 20000
 *   helmsim serve --rate 2 --duration 30 --report \
 *       --metrics-out run.json --prom-out run.prom --trace serve.json
 *   helmsim tune --model OPT-175B --memory NVDRAM \
 *       --objective throughput --tbt-ms 4500
 */
#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <deque>
#include <functional>
#include <iostream>
#include <optional>

#include <unistd.h>

#include "common/args.h"
#include "cluster/instrument.h"
#include "core/helm.h"
#include "model/zoo.h"
#include "runtime/backend.h"
#include "runtime/instrument.h"
#include "runtime/step_cache.h"
#include "telemetry/attribution.h"
#include "telemetry/export.h"
#include "telemetry/monitor.h"
#include "telemetry/report.h"
#include "tracing/export.h"
#include "tracing/synthesize.h"
#include "tracing/tracer.h"

namespace {

using namespace helm;

/** Lower-cased copy, so users can type `helm` / `nvdram` / `HeLM`. */
std::string
to_lower(std::string text)
{
    std::transform(text.begin(), text.end(), text.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    return text;
}

int
cmd_models()
{
    AsciiTable table("Model registry");
    table.set_header({"name", "params", "fp16 size", "int4 size",
                      "layers", "kv_heads", "kv/seq@2048"});
    table.align_right_from(1);
    for (const auto &config : model::all_models()) {
        const auto fp16 =
            model::build_layers(config, model::DataType::kFp16);
        const auto int4 =
            model::build_layers(config, model::DataType::kInt4Grouped);
        char params[32];
        std::snprintf(params, sizeof(params), "%.1fB",
                      static_cast<double>(config.parameter_count()) /
                          1e9);
        table.add_row(
            {config.name, params,
             format_bytes(model::model_weight_bytes(fp16)),
             format_bytes(model::model_weight_bytes(int4)),
             std::to_string(config.num_layers()),
             std::to_string(config.effective_kv_heads()),
             format_bytes(model::kv_bytes_total(config, 2048))});
    }
    table.print(std::cout);
    return 0;
}

int
cmd_configs()
{
    AsciiTable table("Memory configurations (paper Table II + III)");
    table.set_header({"label", "host tier", "storage tier",
                      "host->gpu @1GiB", "gpu->host @1GiB"});
    table.align_right_from(3);
    for (auto kind : mem::all_config_kinds()) {
        const auto sys = mem::make_config(kind);
        table.add_row(
            {sys.label(),
             mem::memory_kind_name(sys.host()->kind()),
             sys.has_storage()
                 ? mem::memory_kind_name(sys.storage()->kind())
                 : "-",
             format_bandwidth(sys.host_to_gpu_bw(kGiB)),
             format_bandwidth(sys.gpu_to_host_bw(kGiB))});
    }
    table.print(std::cout);
    return 0;
}

int
cmd_devices()
{
    AsciiTable table("Backend zoo (mem/registry.h)");
    table.set_header({"name", "kind", "tier", "capacity", "read@1MiB",
                      "read@1GiB", "write@1MiB", "write@1GiB",
                      "latency"});
    table.align_right_from(3);
    for (const auto &entry : mem::DeviceRegistry::builtin().devices()) {
        const auto device = entry.make();
        table.add_row(
            {entry.name, mem::memory_kind_name(device->kind()),
             entry.storage_tier ? "storage" : "host",
             format_bytes(device->capacity()),
             format_bandwidth(device->read_bandwidth(kMiB)),
             format_bandwidth(device->read_bandwidth(kGiB)),
             format_bandwidth(device->write_bandwidth(kMiB)),
             format_bandwidth(device->write_bandwidth(kGiB)),
             format_seconds(device->latency())});
    }
    table.print(std::cout);
    std::cout << "`helmsim run --device-zoo <name>` serves weights from "
                 "a zoo device;\n`helmsim zoo` sweeps all of them into "
                 "a cost/latency frontier.\n";
    return 0;
}

Result<placement::ComputeSiteMode>
parse_compute_site(const std::string &name)
{
    for (auto mode : {placement::ComputeSiteMode::kGpuOnly,
                      placement::ComputeSiteMode::kNdpAuto,
                      placement::ComputeSiteMode::kNdpAll}) {
        if (to_lower(name) == placement::compute_site_mode_name(mode))
            return mode;
    }
    return Status::not_found("unknown compute site '" + name +
                             "' (gpu, auto, ndp)");
}

Result<mem::ConfigKind>
parse_memory(const std::string &name)
{
    for (auto kind : mem::all_config_kinds()) {
        if (to_lower(name) == to_lower(mem::config_kind_name(kind)))
            return kind;
    }
    return Status::not_found("unknown memory config: " + name +
                             " (run `helmsim configs`)");
}

Result<placement::PlacementKind>
parse_placement(const std::string &name)
{
    for (auto kind : {placement::PlacementKind::kBaseline,
                      placement::PlacementKind::kHelm,
                      placement::PlacementKind::kBalanced,
                      placement::PlacementKind::kAllCpu}) {
        if (to_lower(name) ==
            to_lower(placement::placement_kind_name(kind)))
            return kind;
    }
    // Accept "all_cpu"/"allcpu" spellings of All-CPU too.
    const std::string plain = to_lower(name);
    if (plain == "all_cpu" || plain == "allcpu")
        return placement::PlacementKind::kAllCpu;
    return Status::not_found("unknown placement scheme: " + name +
                             " (Baseline, HeLM, Balanced, All-CPU)");
}

Result<model::TransformerConfig>
parse_model(const std::string &name)
{
    for (const auto &config : model::all_models()) {
        if (to_lower(name) == to_lower(config.name))
            return config;
    }
    return model::find_model(name); // its not-found message
}

void
add_common_options(ArgParser &parser)
{
    parser.add_option("model", "model name (see `helmsim models`)",
                      "OPT-175B");
    parser.add_option("memory", "memory configuration (see "
                                "`helmsim configs`)",
                      "NVDRAM");
    parser.add_switch("int4", "4-bit group-wise weight quantization");
    parser.add_option("prompt-tokens", "input prompt length", "128");
    parser.add_option("output-tokens", "tokens to generate", "21");
    parser.add_switch("no-step-cache",
                      "disable the steady-state step-schedule cache "
                      "and gateway stream fast-forward (exact but "
                      "slower; the cached path is byte-identical)");
    parser.add_switch("help", "show this help");
}

/** Apply --no-step-cache before any simulation runs. */
void
apply_step_cache_option(const ArgParser &parser)
{
    runtime::set_step_cache_enabled(!parser.is_set("no-step-cache"));
}

void
add_kv_options(ArgParser &parser)
{
    parser.add_switch("kv-offload", "keep the KV cache in host memory");
    parser.add_switch("kv-tiering",
                      "managed tiered KV cache: auto-sized GPU tier "
                      "backed by a host tier (supersedes --kv-offload)");
    parser.add_option("kv-host-gb",
                      "host KV tier capacity in GiB (0 = unbounded)",
                      "0");
    parser.add_option("kv-block-tokens", "tokens per KV block", "16");
    parser.add_option("kv-eviction", "lru | longest-context", "lru");
    parser.add_switch("kv-no-prefetch",
                      "expose the context-fetch latency instead of "
                      "overlapping it with the previous step's compute");
}

/**
 * Reject flag combinations that would otherwise be silently ignored —
 * a mis-typed experiment should fail loudly, not measure the wrong
 * thing.  Returns kInvalidArgument with a one-line diagnostic.
 */
Status
check_kv_flag_conflicts(const ArgParser &parser)
{
    if (!parser.is_set("kv-tiering")) {
        for (const char *flag : {"kv-no-prefetch", "kv-host-gb",
                                 "kv-block-tokens", "kv-eviction"}) {
            if (parser.is_set(flag)) {
                return Status::invalid_argument(
                    std::string("--") + flag +
                    " configures the managed tiered KV cache and "
                    "requires --kv-tiering");
            }
        }
        return Status::ok();
    }
    if (parser.is_set("kv-offload")) {
        return Status::invalid_argument(
            "--kv-offload and --kv-tiering are mutually exclusive: "
            "tiering already keeps the cache in host memory");
    }
    return Status::ok();
}

Status
apply_kv_options(const ArgParser &parser, runtime::ServingSpec *spec)
{
    spec->offload_kv_cache = parser.is_set("kv-offload");
    if (!parser.is_set("kv-tiering"))
        return Status::ok();
    kvcache::KvCacheConfig config = kvcache::KvCacheConfig::tiered(
        static_cast<Bytes>(parser.get_double("kv-host-gb") *
                           static_cast<double>(kGiB)));
    config.block_tokens = parser.get_u64("kv-block-tokens");
    const auto eviction =
        kvcache::parse_eviction_policy(parser.get("kv-eviction"));
    if (!eviction.is_ok())
        return eviction.status();
    config.eviction = *eviction;
    config.prefetch = !parser.is_set("kv-no-prefetch");
    spec->kv_cache = config;
    return Status::ok();
}

/** Scheduler knobs shared by `serve` and `cluster` (the legacy batch
 *  flags --max-batch/--max-queue-delay-ms/... stay per-command). */
void
add_scheduler_options(ArgParser &parser)
{
    parser.add_option("scheduler",
                      "batch scheduler: fcfs | continuous | edf",
                      "fcfs");
    parser.add_option("tenants",
                      "tag arrivals round-robin across this many "
                      "tenants (continuous/edf keep separate queues)",
                      "1");
    parser.add_option("deadline-ms",
                      "completion deadline stamped on arrivals without "
                      "one (0 = none; continuous/edf only)",
                      "0");
    parser.add_option("max-preemptions",
                      "edf: preemptions per request before it pins "
                      "(livelock guard)",
                      "4");
    parser.add_switch("kv-swap-exposed",
                      "serialize preempted-KV promotion before the "
                      "iteration it rejoins instead of overlapping it "
                      "with decode");
}

/** Modulated-arrival knobs shared by `serve` and `cluster`. */
void
add_arrival_shape_options(ArgParser &parser)
{
    parser.add_option("burst-factor",
                      "bursty/diurnal: peak-rate multiplier over the "
                      "base rate",
                      "8");
    parser.add_option("burst-period",
                      "bursty/diurnal: modulation period in seconds",
                      "20");
    parser.add_option("burst-duty",
                      "bursty: fraction of each period at the burst "
                      "rate",
                      "0.25");
}

Result<workload::ArrivalKind>
parse_arrival_kind(const std::string &text)
{
    if (text == "poisson")
        return workload::ArrivalKind::kPoisson;
    if (text == "uniform")
        return workload::ArrivalKind::kUniform;
    if (text == "bursty")
        return workload::ArrivalKind::kBursty;
    if (text == "diurnal")
        return workload::ArrivalKind::kDiurnal;
    return Status::invalid_argument(
        "unknown arrival kind '" + text +
        "' (--arrival takes poisson | uniform | bursty | diurnal)");
}

/**
 * Scheduler-knob conflicts shared by `serve` and `cluster`: the
 * deadline/preemption family needs an iteration-level scheduler, the
 * FCFS batching-delay knob means nothing once batches re-form every
 * iteration, and the burst knobs need a modulated arrival kind.
 */
Status
check_scheduler_flag_conflicts(const ArgParser &parser)
{
    const auto kind =
        runtime::parse_scheduler_kind(to_lower(parser.get("scheduler")));
    if (!kind.is_ok())
        return kind.status();
    if (*kind == runtime::SchedulerKind::kFcfs) {
        for (const char *flag :
             {"deadline-ms", "max-preemptions", "kv-swap-exposed"}) {
            if (parser.is_set(flag)) {
                return Status::invalid_argument(
                    std::string("--") + flag +
                    " configures the iteration-level schedulers and "
                    "requires --scheduler continuous or edf");
            }
        }
    } else if (parser.is_set("max-queue-delay-ms")) {
        return Status::invalid_argument(
            "--max-queue-delay-ms shapes FCFS batch formation; the "
            "continuous schedulers re-form the batch every iteration "
            "(use --scheduler fcfs)");
    }
    const std::string arrival = to_lower(parser.get("arrival"));
    if (arrival != "bursty" && arrival != "diurnal") {
        for (const char *flag :
             {"burst-factor", "burst-period", "burst-duty"}) {
            if (parser.is_set(flag)) {
                return Status::invalid_argument(
                    std::string("--") + flag +
                    " modulates the bursty/diurnal arrival kinds and "
                    "requires --arrival bursty or diurnal");
            }
        }
    } else if (arrival == "diurnal" && parser.is_set("burst-duty")) {
        return Status::invalid_argument(
            "--burst-duty applies to --arrival bursty (diurnal follows "
            "a sinusoid with no duty cycle)");
    }
    return Status::ok();
}

/** The unified ServingConfig from the scheduler flags (field-range
 *  validation happens in Server/ClusterServer create()). */
Result<runtime::ServingConfig>
scheduler_config_from_flags(const ArgParser &parser)
{
    const auto kind =
        runtime::parse_scheduler_kind(to_lower(parser.get("scheduler")));
    if (!kind.is_ok())
        return kind.status();
    runtime::ServingConfig config;
    config.scheduler = *kind;
    config.auto_max_batch = parser.get_u64("max-batch") == 0;
    config.max_batch = parser.get_u64("max-batch");
    config.max_queue_delay =
        parser.get_double("max-queue-delay-ms") * 1e-3;
    config.max_queue_length = parser.get_u64("max-queue");
    config.enforce_ttft = parser.get_double("slo-ttft-ms") > 0.0;
    config.ttft_target = parser.get_double("slo-ttft-ms") * 1e-3;
    config.enforce_e2e = parser.get_double("slo-e2e-ms") > 0.0;
    config.e2e_target = parser.get_double("slo-e2e-ms") * 1e-3;
    config.tenants = parser.get_u64("tenants");
    config.has_default_deadline = parser.get_double("deadline-ms") > 0.0;
    config.default_deadline = parser.get_double("deadline-ms") * 1e-3;
    config.max_preemptions = parser.get_u64("max-preemptions");
    config.overlap_kv_swap = !parser.is_set("kv-swap-exposed");
    return config;
}

/** Synthesize the arrival stream from the shared arrival flags. */
Result<std::vector<workload::TimedRequest>>
arrivals_from_flags(const ArgParser &parser, bool variable_lengths)
{
    const auto kind =
        parse_arrival_kind(to_lower(parser.get("arrival")));
    if (!kind.is_ok())
        return kind.status();
    workload::ArrivalSpec arrivals;
    arrivals.kind = *kind;
    arrivals.rate = parser.get_double("rate");
    arrivals.duration = parser.get_double("duration");
    arrivals.prompt_tokens = parser.get_u64("prompt-tokens");
    arrivals.output_tokens = parser.get_u64("output-tokens");
    arrivals.variable_lengths = variable_lengths;
    arrivals.seed = parser.get_u64("seed");
    arrivals.tenants =
        std::max<std::uint64_t>(1, parser.get_u64("tenants"));
    arrivals.burst_factor = parser.get_double("burst-factor");
    arrivals.burst_period = parser.get_double("burst-period");
    arrivals.burst_duty = parser.get_double("burst-duty");
    return workload::generate_arrivals(arrivals);
}

void
add_telemetry_options(ArgParser &parser)
{
    parser.add_switch("report",
                      "print the time-attribution report (wall time as "
                      "compute / transfer / KV stall / writeback / idle "
                      "per layer type)");
    parser.add_option("metrics-out",
                      "write a JSON metrics snapshot (helm-metrics-v1) "
                      "to this path",
                      "");
    parser.add_option("prom-out",
                      "write a Prometheus text dump to this path", "");
}

/** True when any telemetry artifact (attribution table, JSON snapshot,
 *  Prometheus dump) was requested. */
bool
wants_telemetry(const ArgParser &parser)
{
    return parser.is_set("report") ||
           !parser.get("metrics-out").empty() ||
           !parser.get("prom-out").empty();
}

/** Observability flags shared by serve / cluster / gateway.  All
 *  default-off: an unobserved run's stdout and artifacts stay
 *  byte-identical. */
void
add_observability_options(ArgParser &parser)
{
    parser.add_option("trace-out",
                      "write a helm-trace-v1 span dump (per-request "
                      "span trees retained by the flight recorder) to "
                      "this path",
                      "");
    parser.add_option("flight-recorder",
                      "flight-recorder trace slots: half retain "
                      "flagged outliers (shed / deadline-missed / "
                      "preempted) FIFO, half the slowest-TBT requests",
                      "256");
    parser.add_switch("alerts",
                      "evaluate sliding-window SLO burn-rate alerts "
                      "(fast/slow window pairs) and add them to the "
                      "report and metrics");
}

/** Build the tracer selected by --trace-out / --flight-recorder, or
 *  nullopt when span tracing is off. */
std::optional<tracing::Tracer>
tracer_from_flags(const ArgParser &parser)
{
    if (parser.get("trace-out").empty())
        return std::nullopt;
    tracing::FlightRecorderConfig config;
    config.max_traces = static_cast<std::size_t>(
        std::max<std::uint64_t>(2, parser.get_u64("flight-recorder")));
    return tracing::Tracer(config);
}

/** Write the --trace-out span dump; returns non-zero on I/O failure. */
int
emit_trace_dump(const ArgParser &parser, const tracing::Tracer &tracer)
{
    const std::string path = parser.get("trace-out");
    const Status written = tracing::write_trace_json(tracer, path);
    if (!written.is_ok()) {
        std::cerr << written.to_string() << "\n";
        return 1;
    }
    std::cout << "spans: " << path << "\n";
    return 0;
}

/** Render the --report table and write --metrics-out / --prom-out from
 *  the registry every stdout table was printed from.  Every artifact
 *  also carries the process-wide step-schedule cache counters
 *  (helm_stepcache_*), so a run whose steady-state fast path keeps
 *  missing is diagnosable from its own metrics snapshot. */
int
emit_artifacts(const ArgParser &parser,
               telemetry::MetricsRegistry &registry)
{
    runtime::step_cache().record(registry);
    if (parser.is_set("report")) {
        std::cout << telemetry::TimeAttribution::from_registry(registry)
                         .to_table();
    }
    if (!parser.get("metrics-out").empty()) {
        const Status written = telemetry::write_text_file(
            parser.get("metrics-out"), telemetry::json_snapshot(registry));
        if (!written.is_ok()) {
            std::cerr << written.to_string() << "\n";
            return 1;
        }
        std::cout << "metrics: " << parser.get("metrics-out") << "\n";
    }
    if (!parser.get("prom-out").empty()) {
        const Status written = telemetry::write_text_file(
            parser.get("prom-out"), telemetry::prometheus_text(registry));
        if (!written.is_ok()) {
            std::cerr << written.to_string() << "\n";
            return 1;
        }
        std::cout << "prometheus: " << parser.get("prom-out") << "\n";
    }
    return 0;
}

int
cmd_run(const std::vector<std::string> &args)
{
    ArgParser parser("helmsim run",
                     "simulate one out-of-core serving configuration");
    add_common_options(parser);
    parser.add_option("placement", "Baseline | HeLM | All-CPU",
                      "Baseline");
    parser.add_option("batch", "GPU batch size", "1");
    parser.add_option("micro-batches",
                      "micro-batches per weight load (block schedule)",
                      "1");
    add_kv_options(parser);
    parser.add_option("repeats", "workload repeats (first discarded)",
                      "3");
    parser.add_option("trace", "write a Chrome trace to this path", "");
    add_telemetry_options(parser);
    parser.add_switch("energy", "print the energy breakdown");
    parser.add_option("cxl-gbps",
                      "override the host tier with a custom CXL "
                      "expander of this bandwidth",
                      "0");
    parser.add_option("device-zoo",
                      "serve weights from this backend-zoo device "
                      "(see `helmsim devices`; supersedes --memory)",
                      "");
    parser.add_option("compute-site",
                      "per-layer execution site: gpu | auto | ndp "
                      "(auto/ndp need an NDP-capable --device-zoo)",
                      "gpu");

    const Status status = parser.parse(args);
    if (!status.is_ok() || parser.is_set("help")) {
        std::cerr << status.to_string() << "\n" << parser.help();
        return status.is_ok() ? 0 : 2;
    }
    apply_step_cache_option(parser);
    Status conflicts = check_kv_flag_conflicts(parser);
    if (conflicts.is_ok() && !parser.get("device-zoo").empty()) {
        if (parser.is_set("memory")) {
            conflicts = Status::invalid_argument(
                "--memory and --device-zoo both select the host "
                "memory; pick one");
        } else if (parser.is_set("cxl-gbps")) {
            conflicts = Status::invalid_argument(
                "--cxl-gbps and --device-zoo both replace the host "
                "tier; pick one");
        }
    } else if (conflicts.is_ok() && parser.is_set("compute-site")) {
        conflicts = Status::invalid_argument(
            "--compute-site requires --device-zoo with an NDP-capable "
            "device (e.g. --device-zoo NDP-DIMM)");
    }
    if (!conflicts.is_ok()) {
        std::cerr << conflicts.to_string() << "\n";
        return 2;
    }

    const auto model_config = parse_model(parser.get("model"));
    const auto memory = parse_memory(parser.get("memory"));
    const auto scheme = parse_placement(parser.get("placement"));
    for (const Status &s :
         {model_config.status(), memory.status(), scheme.status()}) {
        if (!s.is_ok()) {
            std::cerr << s.to_string() << "\n";
            return 2;
        }
    }

    runtime::ServingSpec spec;
    spec.model = *model_config;
    spec.memory = *memory;
    spec.placement = *scheme;
    spec.compress_weights = parser.is_set("int4");
    spec.batch = parser.get_u64("batch");
    spec.micro_batches = parser.get_u64("micro-batches");
    const Status kv_status = apply_kv_options(parser, &spec);
    if (!kv_status.is_ok()) {
        std::cerr << kv_status.to_string() << "\n";
        return 2;
    }
    spec.repeats = parser.get_u64("repeats");
    spec.shape.prompt_tokens = parser.get_u64("prompt-tokens");
    spec.shape.output_tokens = parser.get_u64("output-tokens");
    if (parser.get_double("cxl-gbps") > 0.0) {
        spec.custom_cxl_bandwidth =
            Bandwidth::gb_per_s(parser.get_double("cxl-gbps"));
    }
    if (!parser.get("device-zoo").empty()) {
        spec.zoo_device = parser.get("device-zoo");
        const auto site = parse_compute_site(parser.get("compute-site"));
        if (!site.is_ok()) {
            std::cerr << site.status().to_string() << "\n";
            return 2;
        }
        spec.compute_site = *site;
    }

    const auto result = runtime::simulate_inference(spec);
    if (!result.is_ok()) {
        std::cerr << "simulation failed: " << result.status().to_string()
                  << "\n";
        return 1;
    }

    telemetry::MetricsRegistry registry;
    runtime::record_run(registry, spec, *result, "run");
    registry
        .gauge("helm_host_port_rate_bytes_per_s", {},
               "Engine h2d fabric rate the trace utilization counters "
               "are scaled by")
        .set(result->h2d_rate.raw());
    telemetry::print_run_report(std::cout, registry);
    if (result->ndp_steps > 0) {
        std::cout << "near-data: " << result->ndp_steps
                  << " steps executed on the NDP tier ("
                  << format_bytes(result->ndp_bytes)
                  << " of weights kept off the h2d fabric)\n";
    }

    if (parser.is_set("energy")) {
        const auto energy = energy::estimate_energy(
            *result, spec.memory, spec.gpu);
        if (energy.is_ok()) {
            std::cout << "energy: "
                      << format_fixed(energy->joules_per_token(), 1)
                      << " J/token ("
                      << format_fixed(energy->average_watts(), 0)
                      << " W average)\n";
        }
    }
    if (!parser.get("trace").empty()) {
        runtime::TraceCounterOptions counters;
        counters.host_port_rate_bytes_per_s = result->h2d_rate.raw();
        const Status trace_status = runtime::write_chrome_trace(
            result->records, parser.get("trace"), counters);
        if (trace_status.is_ok())
            std::cout << "trace: " << parser.get("trace") << "\n";
        else
            std::cerr << trace_status.to_string() << "\n";
    }
    return emit_artifacts(parser, registry);
}

/** Batch-replay compatibility path of `helmsim serve` (--workload). */
int
serve_workload_file(const runtime::ServingSpec &base,
                    const std::string &path)
{
    const auto batches = workload::load_workload_file(path);
    if (!batches.is_ok()) {
        std::cerr << batches.status().to_string() << "\n";
        return 1;
    }
    const auto result = runtime::serve_workload(base, *batches);
    if (!result.is_ok()) {
        std::cerr << "serving failed: " << result.status().to_string()
                  << "\n";
        return 1;
    }

    AsciiTable table("Workload results");
    table.set_header({"batch", "requests", "prompt", "ttft", "tbt"});
    table.align_right_from(1);
    for (std::size_t b = 0; b < result->per_batch.size(); ++b) {
        table.add_row(
            {std::to_string(b),
             std::to_string((*batches)[b].size()),
             std::to_string((*batches)[b].max_prompt_tokens()),
             format_seconds(result->per_batch[b].ttft),
             format_seconds(result->per_batch[b].tbt)});
    }
    table.print(std::cout);
    std::cout << "aggregate: TTFT "
              << format_seconds(result->aggregate.ttft) << ", TBT "
              << format_seconds(result->aggregate.tbt) << ", "
              << format_fixed(result->aggregate.throughput, 2)
              << " tokens/s over "
              << format_seconds(result->aggregate.total_time)
              << " (padding overhead: " << result->padded_tokens
              << " tokens)\n";
    return 0;
}

/**
 * The serving tail every ServingBackend runs through — `serve` drives a
 * runtime::Server, `cluster` a cluster::ClusterServer, over this one
 * seam: telemetry on/off, submit the stream, serve, record the shared
 * serving metric families plus backend-specific @p extras, print,
 * write the optional Chrome trace, and emit --report/--metrics-out/
 * --prom-out artifacts.
 */
/**
 * Retrospectively drive a ServingMonitor from a finished backend run:
 * completions in completion-time order (the DES never produced them
 * otherwise), port-utilization samples per load window, and KV
 * occupancy at every sampled step.  The backend report carries no
 * rejection timestamps, so availability sheds are gateway-only.
 */
void
feed_monitor_from_report(
    telemetry::ServingMonitor &monitor,
    const runtime::ServingReport &report,
    const std::vector<runtime::LayerStepRecord> &records,
    double port_rate_bytes_per_s)
{
    std::vector<const runtime::RequestMetrics *> done;
    done.reserve(report.requests.size());
    for (const runtime::RequestMetrics &metrics : report.requests)
        done.push_back(&metrics);
    std::sort(done.begin(), done.end(),
              [](const runtime::RequestMetrics *a,
                 const runtime::RequestMetrics *b) {
                  const Seconds ta = a->arrival + a->e2e_latency;
                  const Seconds tb = b->arrival + b->e2e_latency;
                  return ta != tb ? ta < tb : a->id < b->id;
              });
    for (const runtime::RequestMetrics *metrics : done)
        monitor.on_completed(metrics->arrival + metrics->e2e_latency,
                             metrics->output_tokens, metrics->ttft);
    // Records list the same tiers in the same order every step;
    // resolve each list position's monitor handle once and re-resolve
    // only if the name at that position ever changes.
    std::vector<std::pair<std::string,
                          telemetry::ServingMonitor::KvTierHandle>>
        tier_handles;
    for (const auto &rec : records) {
        if (port_rate_bytes_per_s > 0.0 && rec.transfer_time > 0.0) {
            const auto moved = rec.transfer_bytes + rec.kv_read_bytes;
            if (moved > 0)
                monitor.on_port_utilization(
                    rec.transfer_start,
                    static_cast<double>(moved) /
                        (rec.transfer_time * port_rate_bytes_per_s));
        }
        for (std::size_t i = 0; i < rec.kv_occupancy.size(); ++i) {
            const auto &occupancy = rec.kv_occupancy[i];
            if (i >= tier_handles.size())
                tier_handles.emplace_back(
                    occupancy.tier,
                    monitor.kv_tier_handle(occupancy.tier));
            else if (tier_handles[i].first != occupancy.tier)
                tier_handles[i] = {
                    occupancy.tier,
                    monitor.kv_tier_handle(occupancy.tier)};
            monitor.on_kv_occupancy(
                rec.step_end, tier_handles[i].second,
                static_cast<double>(occupancy.bytes) /
                    (1024.0 * 1024.0));
        }
    }
    monitor.finish(report.makespan);
}

int
run_serving_backend(
    const ArgParser &parser, runtime::ServingBackend &backend,
    const std::vector<workload::TimedRequest> &stream,
    const char *command, const std::string &trace_path,
    const char *failure_prefix,
    const std::function<void(telemetry::MetricsRegistry &)> &extras)
{
    std::optional<tracing::Tracer> tracer = tracer_from_flags(parser);
    const bool want_alerts = parser.is_set("alerts");
    // Step records feed the chrome trace, the scheduler span trees,
    // and the monitor's port/KV windows.
    backend.enable_telemetry(!trace_path.empty() ||
                             tracer.has_value() || want_alerts);
    const Status submitted = backend.submit(stream);
    if (!submitted.is_ok()) {
        std::cerr << submitted.to_string() << "\n";
        return 2;
    }
    const auto report = backend.serve();
    if (!report.is_ok()) {
        std::cerr << failure_prefix << report.status().to_string()
                  << "\n";
        return 1;
    }

    telemetry::MetricsRegistry registry;
    runtime::record_serving(registry, backend.serving_spec(),
                            backend.effective_max_batch(),
                            backend.kv_request_slots(), *report,
                            command);
    backend.attribution().record(registry);
    if (extras)
        extras(registry);

    if (tracer.has_value()) {
        tracing::synthesize_serving_traces(*tracer, *report,
                                           backend.serving_records());
        tracer->record(registry);
    }
    if (want_alerts) {
        telemetry::MonitorConfig monitor_config;
        monitor_config.ttft_target =
            parser.get_double("slo-ttft-ms") * 1e-3;
        telemetry::ServingMonitor monitor(monitor_config);
        feed_monitor_from_report(monitor, *report,
                                 backend.serving_records(),
                                 backend.trace_port_rate());
        monitor.record(registry);
    }
    telemetry::print_run_report(std::cout, registry);

    if (!trace_path.empty()) {
        runtime::TraceCounterOptions counters;
        counters.host_port_rate_bytes_per_s = backend.trace_port_rate();
        counters.kv_swaps = report->kv_swap_events;
        if (tracer.has_value())
            counters.flight_recorder = &tracer->recorder();
        const Status trace_status = runtime::write_chrome_trace(
            backend.serving_records(), trace_path, counters);
        if (trace_status.is_ok())
            std::cout << "trace: " << trace_path << "\n";
        else
            std::cerr << trace_status.to_string() << "\n";
    }
    if (tracer.has_value()) {
        const int dumped = emit_trace_dump(parser, *tracer);
        if (dumped != 0)
            return dumped;
    }
    return emit_artifacts(parser, registry);
}

int
cmd_serve(const std::vector<std::string> &args)
{
    ArgParser parser(
        "helmsim serve",
        "request-level serving: an arrival stream through the fcfs, "
        "continuous, or edf scheduler (or --workload for batch replay)");
    add_common_options(parser);
    parser.add_option("placement", "Baseline | HeLM | Balanced | All-CPU",
                      "Baseline");
    parser.add_option("micro-batches", "micro-batches per weight load",
                      "1");
    add_kv_options(parser);
    parser.add_option("rate", "mean request arrivals per second", "4");
    parser.add_option("duration", "arrival horizon in seconds", "60");
    parser.add_option("arrival", "poisson | uniform | bursty | diurnal",
                      "poisson");
    parser.add_option("seed", "arrival stream seed", "42");
    parser.add_switch("variable-lengths",
                      "sample C4-like prompt lengths");
    add_arrival_shape_options(parser);
    add_scheduler_options(parser);
    parser.add_option("arrivals",
                      "replay an arrival trace file instead of "
                      "synthesizing one",
                      "");
    parser.add_option("max-batch",
                      "scheduler batch ceiling (0 = auto-size from the "
                      "GPU budget)",
                      "0");
    parser.add_option("max-queue-delay-ms",
                      "head-of-line wait for batch-mates", "500");
    parser.add_option("max-queue", "admission cap on waiting requests",
                      "1024");
    parser.add_option("slo-ttft-ms", "TTFT target for goodput (0 = off)",
                      "0");
    parser.add_option("slo-e2e-ms",
                      "end-to-end latency target for goodput (0 = off)",
                      "0");
    parser.add_option("workload",
                      "batch-replay mode: workload file '<prompt> "
                      "<output>' per line, blank line = batch boundary",
                      "");
    parser.add_option("trace",
                      "write a Chrome trace of the served batches "
                      "(with host-port utilization and KV-occupancy "
                      "counters) to this path",
                      "");
    add_telemetry_options(parser);
    add_observability_options(parser);

    const Status status = parser.parse(args);
    if (!status.is_ok() || parser.is_set("help")) {
        std::cerr << status.to_string() << "\n" << parser.help();
        return status.is_ok() ? 0 : 2;
    }
    apply_step_cache_option(parser);
    Status conflicts = check_kv_flag_conflicts(parser);
    if (conflicts.is_ok())
        conflicts = check_scheduler_flag_conflicts(parser);
    if (conflicts.is_ok() && !parser.get("workload").empty()) {
        for (const char *flag :
             {"trace", "report", "metrics-out", "prom-out", "scheduler",
              "tenants", "deadline-ms", "max-preemptions",
              "kv-swap-exposed", "trace-out", "flight-recorder",
              "alerts"}) {
            if (parser.is_set(flag)) {
                conflicts = Status::invalid_argument(
                    std::string("--") + flag +
                    " applies to the arrival-stream scheduler and "
                    "conflicts with --workload batch replay");
                break;
            }
        }
    }
    if (conflicts.is_ok() && !parser.get("arrivals").empty()) {
        for (const char *flag :
             {"burst-factor", "burst-period", "burst-duty"}) {
            if (parser.is_set(flag)) {
                conflicts = Status::invalid_argument(
                    std::string("--") + flag +
                    " shapes the synthesized arrival stream and "
                    "conflicts with --arrivals trace replay");
                break;
            }
        }
    }
    if (!conflicts.is_ok()) {
        std::cerr << conflicts.to_string() << "\n";
        return 2;
    }

    const auto model_config = parse_model(parser.get("model"));
    const auto memory = parse_memory(parser.get("memory"));
    const auto scheme = parse_placement(parser.get("placement"));
    for (const Status &s :
         {model_config.status(), memory.status(), scheme.status()}) {
        if (!s.is_ok()) {
            std::cerr << s.to_string() << "\n";
            return 2;
        }
    }

    runtime::ServingSpec base;
    base.model = *model_config;
    base.memory = *memory;
    base.placement = *scheme;
    base.compress_weights = parser.is_set("int4");
    base.micro_batches = parser.get_u64("micro-batches");
    const Status kv_status = apply_kv_options(parser, &base);
    if (!kv_status.is_ok()) {
        std::cerr << kv_status.to_string() << "\n";
        return 2;
    }
    base.shape.prompt_tokens = parser.get_u64("prompt-tokens");
    base.shape.output_tokens = parser.get_u64("output-tokens");

    if (!parser.get("workload").empty())
        return serve_workload_file(base, parser.get("workload"));

    // ---- Arrival stream --------------------------------------------------
    Result<std::vector<workload::TimedRequest>> stream =
        Status::internal("unset");
    if (!parser.get("arrivals").empty())
        stream = workload::load_arrival_trace(parser.get("arrivals"));
    else
        stream =
            arrivals_from_flags(parser, parser.is_set("variable-lengths"));
    if (!stream.is_ok()) {
        std::cerr << stream.status().to_string() << "\n";
        return 1;
    }

    // ---- Scheduler + SLO -------------------------------------------------
    const auto config = scheduler_config_from_flags(parser);
    if (!config.is_ok()) {
        std::cerr << config.status().to_string() << "\n";
        return 2;
    }

    auto server = runtime::Server::create(base, *config);
    if (!server.is_ok()) {
        std::cerr << "invalid serving spec: "
                  << server.status().to_string() << "\n";
        return 2;
    }
    return run_serving_backend(
        parser, *server, *stream, "serve", parser.get("trace"),
        "serving failed: ",
        [&server](telemetry::MetricsRegistry &registry) {
            registry
                .gauge("helm_host_port_rate_bytes_per_s", {},
                       "Engine h2d fabric rate the trace utilization "
                       "counters are scaled by")
                .set(server->h2d_rate().raw());
        });
}

/** The shared read port's pooled rate — what the cluster trace's
 *  host-port utilization counters are scaled by. */
double
cluster_port_rate(const std::vector<cluster::PortStats> &ports)
{
    return ports.empty() ? 0.0 : ports.front().rate.raw();
}

int
cmd_cluster(const std::vector<std::string> &args)
{
    ArgParser parser(
        "helmsim cluster",
        "multi-GPU serving over shared heterogeneous host memory "
        "(replica, pipeline, or tensor parallelism)");
    add_common_options(parser);
    parser.add_option("placement", "Baseline | HeLM | Balanced | All-CPU",
                      "Baseline");
    add_kv_options(parser);
    parser.add_option("gpus", "GPUs sharing the host memory", "1");
    parser.add_option("parallelism", "replica | pipeline | tensor",
                      "replica");
    parser.add_option("router", "replica request routing: rr | jsq | po2",
                      "rr");
    parser.add_option("sockets",
                      "host memory sockets pooled behind the shared "
                      "read/write ports",
                      "2");
    parser.add_option("micro-batches",
                      "pipeline micro-batches in flight (0 = one per "
                      "stage)",
                      "0");
    parser.add_option("rate", "mean request arrivals per second", "4");
    parser.add_option("duration", "arrival horizon in seconds", "60");
    parser.add_option("arrival", "poisson | uniform | bursty | diurnal",
                      "poisson");
    parser.add_option("seed", "arrival stream seed", "42");
    add_arrival_shape_options(parser);
    add_scheduler_options(parser);
    parser.add_option("max-batch",
                      "scheduler batch ceiling (0 = auto-size from the "
                      "GPU budget)",
                      "0");
    parser.add_option("max-queue-delay-ms",
                      "head-of-line wait for batch-mates", "500");
    parser.add_option("max-queue", "admission cap on waiting requests",
                      "1024");
    parser.add_option("slo-ttft-ms", "TTFT target for goodput (0 = off)",
                      "0");
    parser.add_option("slo-e2e-ms",
                      "end-to-end latency target for goodput (0 = off)",
                      "0");
    parser.add_switch("saturate",
                      "closed-loop saturation run (every GPU busy end to "
                      "end) instead of an arrival stream");
    parser.add_option("batch", "saturation: batch size per GPU", "1");
    parser.add_option("repeats",
                      "saturation: back-to-back batches per GPU", "3");
    parser.add_option("trace",
                      "write a Chrome trace with one row per GPU", "");
    add_telemetry_options(parser);
    add_observability_options(parser);

    const Status status = parser.parse(args);
    if (!status.is_ok() || parser.is_set("help")) {
        std::cerr << status.to_string() << "\n" << parser.help();
        return status.is_ok() ? 0 : 2;
    }

    apply_step_cache_option(parser);

    // ---- Flag-conflict diagnostics (fail fast, one line) ---------------
    const auto parallelism =
        cluster::parse_parallelism(to_lower(parser.get("parallelism")));
    if (!parallelism.is_ok()) {
        std::cerr << parallelism.status().to_string() << "\n";
        return 2;
    }
    Status conflicts = check_kv_flag_conflicts(parser);
    if (conflicts.is_ok())
        conflicts = check_scheduler_flag_conflicts(parser);
    if (conflicts.is_ok() && parser.is_set("router") &&
        *parallelism != cluster::Parallelism::kReplica) {
        conflicts = Status::invalid_argument(
            "--router only applies to --parallelism replica (pipeline "
            "and tensor modes have no request router)");
    }
    if (conflicts.is_ok() && parser.is_set("micro-batches") &&
        *parallelism != cluster::Parallelism::kPipeline) {
        conflicts = Status::invalid_argument(
            "--micro-batches only applies to --parallelism pipeline");
    }
    if (conflicts.is_ok() && !parser.is_set("saturate")) {
        for (const char *flag : {"batch", "repeats"}) {
            if (parser.is_set(flag)) {
                conflicts = Status::invalid_argument(
                    std::string("--") + flag +
                    " shapes the closed-loop run and requires "
                    "--saturate (arrival-stream batches are formed by "
                    "the scheduler)");
                break;
            }
        }
    }
    if (conflicts.is_ok() && parser.is_set("saturate")) {
        for (const char *flag :
             {"rate", "duration", "arrival", "seed", "max-batch",
              "max-queue-delay-ms", "max-queue", "slo-ttft-ms",
              "slo-e2e-ms", "scheduler", "tenants", "deadline-ms",
              "max-preemptions", "kv-swap-exposed", "burst-factor",
              "burst-period", "burst-duty", "trace-out",
              "flight-recorder", "alerts"}) {
            if (parser.is_set(flag)) {
                conflicts = Status::invalid_argument(
                    std::string("--") + flag +
                    " configures the arrival stream and conflicts "
                    "with --saturate");
                break;
            }
        }
    }
    if (!conflicts.is_ok()) {
        std::cerr << conflicts.to_string() << "\n";
        return 2;
    }

    const auto model_config = parse_model(parser.get("model"));
    const auto memory = parse_memory(parser.get("memory"));
    const auto scheme = parse_placement(parser.get("placement"));
    const auto router =
        cluster::parse_router_policy(to_lower(parser.get("router")));
    for (const Status &s : {model_config.status(), memory.status(),
                            scheme.status(), router.status()}) {
        if (!s.is_ok()) {
            std::cerr << s.to_string() << "\n";
            return 2;
        }
    }

    cluster::ClusterSpec spec;
    spec.serving.model = *model_config;
    spec.serving.memory = *memory;
    spec.serving.placement = *scheme;
    spec.serving.compress_weights = parser.is_set("int4");
    spec.serving.shape.prompt_tokens = parser.get_u64("prompt-tokens");
    spec.serving.shape.output_tokens = parser.get_u64("output-tokens");
    const Status kv_status = apply_kv_options(parser, &spec.serving);
    if (!kv_status.is_ok()) {
        std::cerr << kv_status.to_string() << "\n";
        return 2;
    }
    spec.gpus = parser.get_u64("gpus");
    spec.parallelism = *parallelism;
    spec.router = *router;
    spec.sockets = parser.get_u64("sockets");
    spec.micro_batches = parser.get_u64("micro-batches");
    const auto config = scheduler_config_from_flags(parser);
    if (!config.is_ok()) {
        std::cerr << config.status().to_string() << "\n";
        return 2;
    }
    spec.config = *config;
    const std::string trace_path = parser.get("trace");

    std::cout << spec.serving.model.name << " x " << spec.gpus
              << " GPU(s), "
              << cluster::parallelism_name(spec.parallelism)
              << " parallelism on "
              << mem::config_kind_name(spec.serving.memory) << " ("
              << spec.sockets << " socket(s))";
    if (spec.parallelism == cluster::Parallelism::kReplica &&
        spec.gpus > 1)
        std::cout << ", router "
                  << cluster::router_policy_name(spec.router);
    std::cout << "\n";

    // ---- Closed-loop saturation --------------------------------------
    if (parser.is_set("saturate")) {
        spec.serving.batch = parser.get_u64("batch");
        spec.serving.repeats = parser.get_u64("repeats");
        const bool want_records =
            !trace_path.empty() || wants_telemetry(parser);
        const auto result = cluster::run_saturated(spec, want_records);
        if (!result.is_ok()) {
            std::cerr << "cluster run failed: "
                      << result.status().to_string() << "\n";
            return 1;
        }
        telemetry::MetricsRegistry registry;
        cluster::record_saturation(registry, *result);
        if (!result->records.empty()) {
            runtime::attribute_records(result->records,
                                       spec.serving.gpu.layer_overhead)
                .record(registry);
        }
        telemetry::print_run_report(std::cout, registry);
        if (!trace_path.empty()) {
            runtime::TraceCounterOptions counters;
            counters.host_port_rate_bytes_per_s =
                cluster_port_rate(result->ports);
            const Status trace_status = runtime::write_chrome_trace(
                result->records, trace_path, counters);
            if (trace_status.is_ok())
                std::cout << "trace: " << trace_path << "\n";
            else
                std::cerr << trace_status.to_string() << "\n";
        }
        return emit_artifacts(parser, registry);
    }

    // ---- Arrival-stream serving --------------------------------------
    const auto stream = arrivals_from_flags(parser, false);
    if (!stream.is_ok()) {
        std::cerr << stream.status().to_string() << "\n";
        return 1;
    }

    spec.serving.keep_records = !trace_path.empty();
    auto server = cluster::ClusterServer::create(spec);
    if (!server.is_ok()) {
        std::cerr << "invalid cluster spec: "
                  << server.status().to_string() << "\n";
        return 2;
    }
    return run_serving_backend(
        parser, *server, *stream, "cluster", trace_path,
        "cluster serving failed: ",
        [&server](telemetry::MetricsRegistry &registry) {
            cluster::record_cluster(registry, server->last_gpus(),
                                    server->last_ports());
        });
}

int
cmd_tune(const std::vector<std::string> &args)
{
    ArgParser parser("helmsim tune",
                     "find the best serving plan for an objective");
    add_common_options(parser);
    parser.add_option("objective", "latency | throughput", "throughput");
    parser.add_option("tbt-ms", "QoS: maximum time between tokens", "0");
    parser.add_option("batch-limit", "search ceiling", "256");
    parser.add_switch("no-kv-offload",
                      "exclude cache-offload candidates");
    parser.add_option("jobs",
                      "worker threads for candidate evaluation (0 = all "
                      "hardware threads, 1 = sequential)",
                      "0");
    parser.add_option("device-zoo",
                      "search on this backend-zoo device (see `helmsim "
                      "devices`; supersedes --memory, NDP devices add "
                      "near-data candidates)",
                      "");

    const Status status = parser.parse(args);
    if (!status.is_ok() || parser.is_set("help")) {
        std::cerr << status.to_string() << "\n" << parser.help();
        return status.is_ok() ? 0 : 2;
    }
    if (!parser.get("device-zoo").empty() && parser.is_set("memory")) {
        std::cerr << "--memory and --device-zoo both select the host "
                     "memory; pick one\n";
        return 2;
    }
    apply_step_cache_option(parser);
    const auto model_config = parse_model(parser.get("model"));
    const auto memory = parse_memory(parser.get("memory"));
    if (!model_config.is_ok() || !memory.is_ok()) {
        std::cerr << model_config.status().to_string() << " "
                  << memory.status().to_string() << "\n";
        return 2;
    }

    runtime::TuneRequest request;
    request.model = *model_config;
    request.memory = *memory;
    if (!parser.get("device-zoo").empty())
        request.zoo_device = parser.get("device-zoo");
    request.compress_weights = parser.is_set("int4");
    request.shape.prompt_tokens = parser.get_u64("prompt-tokens");
    request.shape.output_tokens = parser.get_u64("output-tokens");
    request.objective = parser.get("objective") == "latency"
                            ? runtime::TuneObjective::kLatency
                            : runtime::TuneObjective::kThroughput;
    if (parser.get_double("tbt-ms") > 0.0)
        request.tbt_ceiling = parser.get_double("tbt-ms") * 1e-3;
    request.batch_limit = parser.get_u64("batch-limit");
    request.explore_kv_offload = !parser.is_set("no-kv-offload");

    runtime::TuneExecOptions exec_options;
    exec_options.jobs = exec::resolve_jobs(parser.get_u64("jobs"));
    runtime::SimCache cache;
    exec_options.cache = &cache;
    const auto tuned = runtime::auto_tune(request, exec_options);
    if (!tuned.is_ok()) {
        std::cerr << tuned.status().to_string() << "\n";
        return 1;
    }
    std::cout << "best: " << tuned->best.describe() << "\n"
              << "  TTFT " << format_seconds(tuned->best.metrics.ttft)
              << ", TBT " << format_seconds(tuned->best.metrics.tbt)
              << ", "
              << format_fixed(tuned->best.metrics.throughput, 2)
              << " tokens/s  (" << tuned->explored.size()
              << " candidates explored)\n";
    return 0;
}

int
cmd_zoo(const std::vector<std::string> &args);

/** Split "a,b,c" into {"a","b","c"}. */
std::vector<std::string>
split_csv(const std::string &text)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    while (start <= text.size()) {
        const std::size_t comma = text.find(',', start);
        if (comma == std::string::npos) {
            out.push_back(text.substr(start));
            break;
        }
        out.push_back(text.substr(start, comma - start));
        start = comma + 1;
    }
    return out;
}

int
cmd_sweep(const std::vector<std::string> &args)
{
    ArgParser parser(
        "helmsim sweep",
        "cartesian parameter sweep; repeat --dim name=v1,v2,...");
    parser.add_option("dim",
                      "dimension spec name=v1,v2 (repeatable via "
                      "comma-separated --dims)",
                      "");
    parser.add_option("dims",
                      "semicolon-separated dimension specs, e.g. "
                      "\"memory=NVDRAM,DRAM;batch=1,8\"",
                      "");
    parser.add_option("pivot",
                      "render a pivot table: row,col,value (e.g. "
                      "\"memory,batch,tokens_per_s\")",
                      "");
    parser.add_switch("int4", "compress weights at every point");
    parser.add_option("jobs",
                      "worker threads for point evaluation (0 = all "
                      "hardware threads, 1 = sequential)",
                      "0");
    parser.add_switch("progress",
                      "live done/total counter on stderr (only when "
                      "stderr is a TTY)");
    add_telemetry_options(parser);
    parser.add_switch("help", "show this help");
    const Status status = parser.parse(args);
    if (!status.is_ok() || parser.is_set("help")) {
        std::cerr << status.to_string() << "\n" << parser.help();
        return status.is_ok() ? 0 : 2;
    }

    runtime::ServingSpec base;
    base.model = model::opt_config(model::OptVariant::kOpt175B);
    base.compress_weights = parser.is_set("int4");
    base.repeats = 2;
    sweep::ServingSweep serving_sweep(base);

    std::vector<std::string> specs;
    if (!parser.get("dim").empty())
        specs.push_back(parser.get("dim"));
    if (!parser.get("dims").empty()) {
        std::size_t start = 0;
        const std::string &dims = parser.get("dims");
        while (start <= dims.size()) {
            const std::size_t semi = dims.find(';', start);
            if (semi == std::string::npos) {
                specs.push_back(dims.substr(start));
                break;
            }
            specs.push_back(dims.substr(start, semi - start));
            start = semi + 1;
        }
    }
    if (specs.empty()) {
        std::cerr << "no dimensions given\n" << parser.help();
        return 2;
    }
    for (const std::string &spec_text : specs) {
        const std::size_t eq = spec_text.find('=');
        if (eq == std::string::npos) {
            std::cerr << "bad dimension spec: " << spec_text << "\n";
            return 2;
        }
        const Status added = serving_sweep.add_dimension(
            spec_text.substr(0, eq), split_csv(spec_text.substr(eq + 1)));
        if (!added.is_ok()) {
            std::cerr << added.to_string() << "\n";
            return 2;
        }
    }

    const std::size_t total = serving_sweep.point_count();
    const std::size_t jobs = exec::resolve_jobs(parser.get_u64("jobs"));
    sweep::SweepOptions options;
    options.jobs = jobs;
    const bool show_progress =
        parser.is_set("progress") && isatty(fileno(stderr)) != 0;
    if (show_progress) {
        options.progress = [](std::size_t done, std::size_t count) {
            std::cerr << "\r" << done << "/" << count << std::flush;
        };
    }

    std::cerr << "sweeping " << total << " points...\n";
    runtime::SimCache cache;
    const auto start = std::chrono::steady_clock::now();
    const sweep::Dataset dataset = serving_sweep.run(options, &cache);
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    if (show_progress)
        std::cerr << "\r";
    const double rate =
        static_cast<double>(total) / std::max(elapsed, 1e-9);
    std::cerr << "swept " << total << " points in "
              << format_fixed(elapsed, 3) << " s ("
              << format_fixed(rate, 1) << " points/s, jobs=" << jobs
              << ", cache " << cache.hits() << " hits / "
              << cache.misses() << " misses)\n";
    dataset.write_csv(std::cout);

    if (!parser.get("pivot").empty()) {
        const auto parts = split_csv(parser.get("pivot"));
        if (parts.size() == 3) {
            std::cout << "\n";
            dataset.pivot(parts[0], parts[1], parts[2]).print(std::cout);
        } else {
            std::cerr << "pivot needs row,col,value\n";
        }
    }

    telemetry::MetricsRegistry registry;
    runtime::record_sim_cache(registry, cache);
    registry
        .gauge("helm_sweep_wall_seconds", {},
               "Wall-clock time of the last sweep")
        .set(elapsed);
    registry
        .gauge("helm_sweep_jobs", {}, "Worker threads used by the sweep")
        .set(static_cast<double>(jobs));
    return emit_artifacts(parser, registry);
}

int
cmd_zoo(const std::vector<std::string> &args)
{
    ArgParser parser(
        "helmsim zoo",
        "sweep placements across the backend zoo into a cost/latency "
        "Pareto frontier ($/token vs TBT, paper anchors included)");
    parser.add_option("model", "model of the main grid", "OPT-30B");
    parser.add_switch("fp16", "uncompressed weights (default int4)");
    parser.add_option("batches", "comma-separated batch sizes", "1,8,32");
    parser.add_option("devices",
                      "comma-separated zoo devices (default: all, see "
                      "`helmsim devices`)",
                      "");
    parser.add_option("jobs",
                      "worker threads for point evaluation (0 = all "
                      "hardware threads; the frontier is identical at "
                      "any value)",
                      "0");
    parser.add_switch("no-anchor",
                      "skip the NVDRAM legacy-vs-zoo identity anchor "
                      "(two OPT-175B sims)");
    parser.add_switch("no-hbf",
                      "skip the HBF capacity demonstration (a ~1.9 TB "
                      "fp16 model)");
    parser.add_switch("help", "show this help");

    const Status status = parser.parse(args);
    if (!status.is_ok() || parser.is_set("help")) {
        std::cerr << status.to_string() << "\n" << parser.help();
        return status.is_ok() ? 0 : 2;
    }
    const auto model_config = parse_model(parser.get("model"));
    if (!model_config.is_ok()) {
        std::cerr << model_config.status().to_string() << "\n";
        return 2;
    }

    backendzoo::ExploreOptions options;
    options.model = *model_config;
    options.compress_weights = !parser.is_set("fp16");
    options.batches.clear();
    for (const std::string &text : split_csv(parser.get("batches"))) {
        char *end = nullptr;
        const unsigned long long parsed =
            std::strtoull(text.c_str(), &end, 10);
        if (end == text.c_str() || *end != '\0' || parsed == 0) {
            std::cerr << "bad batch size '" << text << "'\n";
            return 2;
        }
        options.batches.push_back(parsed);
    }
    if (!parser.get("devices").empty())
        options.devices = split_csv(parser.get("devices"));
    options.jobs = exec::resolve_jobs(parser.get_u64("jobs"));
    options.include_anchor = !parser.is_set("no-anchor");
    options.include_hbf_exclusive = !parser.is_set("no-hbf");

    const auto report = backendzoo::explore(options);
    if (!report.is_ok()) {
        std::cerr << report.status().to_string() << "\n";
        return 2;
    }
    std::cout << backendzoo::report_text(*report);
    return 0;
}

int
cmd_membench(const std::vector<std::string> &args)
{
    ArgParser parser("helmsim membench",
                     "host<->GPU copy bandwidth sweep (Fig. 3)");
    parser.add_option("config",
                      "single configuration to sweep (default: all "
                      "host-memory configs)",
                      "");
    parser.add_switch("help", "show this help");
    const Status status = parser.parse(args);
    if (!status.is_ok() || parser.is_set("help")) {
        std::cerr << status.to_string() << "\n" << parser.help();
        return status.is_ok() ? 0 : 2;
    }

    std::vector<mem::ConfigKind> kinds;
    if (parser.get("config").empty()) {
        kinds = {mem::ConfigKind::kDram, mem::ConfigKind::kNvdram,
                 mem::ConfigKind::kMemoryMode};
    } else {
        const auto kind = parse_memory(parser.get("config"));
        if (!kind.is_ok()) {
            std::cerr << kind.status().to_string() << "\n";
            return 2;
        }
        kinds = {*kind};
    }
    AsciiTable table("Copy bandwidth (GB/s)");
    table.set_header({"config", "node", "buffer", "h2d", "d2h"});
    table.align_right_from(1);
    const auto measurements =
        membench::sweep(kinds, membench::default_buffer_sweep());
    for (const auto &m : measurements) {
        if (m.direction != membench::CopyDirection::kHostToGpu)
            continue;
        for (const auto &n : measurements) {
            if (n.direction == membench::CopyDirection::kGpuToHost &&
                n.config == m.config && n.numa_node == m.numa_node &&
                n.buffer == m.buffer) {
                table.add_row(
                    {m.config, std::to_string(m.numa_node),
                     format_bytes(m.buffer),
                     format_fixed(m.bandwidth.as_gb_per_s(), 2),
                     format_fixed(n.bandwidth.as_gb_per_s(), 2)});
            }
        }
    }
    table.print(std::cout);
    return 0;
}

int
cmd_gateway(const std::vector<std::string> &args)
{
    ArgParser parser(
        "helmsim gateway",
        "closed-loop serving gateway: client sessions, per-token "
        "streaming, admission control, and replica routing in front "
        "of ServingBackend replicas");
    add_common_options(parser);
    parser.add_option("placement", "Baseline | HeLM | Balanced | All-CPU",
                      "Baseline");
    parser.add_option("micro-batches", "micro-batches per weight load",
                      "1");
    parser.add_option("scheduler",
                      "per-replica backend scheduler: fcfs | continuous "
                      "| edf",
                      "fcfs");
    parser.add_option("replicas",
                      "ServingBackend replicas behind the gateway", "2");
    parser.add_option("clients", "concurrent closed-loop clients",
                      "256");
    parser.add_option("requests",
                      "completed turns to drive before clients park",
                      "10000");
    parser.add_option("turns",
                      "turns per session (context grows every turn)",
                      "4");
    parser.add_option("think-ms",
                      "mean client think time between turns", "250");
    parser.add_option("router", "session routing: rr | least | hash",
                      "rr");
    parser.add_option("accept-queue",
                      "accepted-but-undispatched turns allowed per "
                      "replica",
                      "256");
    parser.add_option("max-sessions", "concurrent session cap", "65536");
    parser.add_option("max-context",
                      "per-session context budget in tokens", "4096");
    parser.add_option("context-block",
                      "context rounding block in tokens (memo-friendly "
                      "batch shapes)",
                      "64");
    parser.add_option("dispatch-batch",
                      "turns per dispatch window (0 = the replica's "
                      "batch ceiling)",
                      "0");
    parser.add_option("max-batch",
                      "backend batch ceiling (0 = auto-size from the "
                      "GPU budget)",
                      "0");
    parser.add_switch("coalesce-tokens",
                      "deliver only first token + completion instead "
                      "of every token (fewer DES events)");
    parser.add_option("seed", "driver RNG seed", "42");
    add_telemetry_options(parser);
    add_observability_options(parser);

    const Status status = parser.parse(args);
    if (!status.is_ok() || parser.is_set("help")) {
        std::cerr << status.to_string() << "\n" << parser.help();
        return status.is_ok() ? 0 : 2;
    }

    apply_step_cache_option(parser);
    const auto model_config = parse_model(parser.get("model"));
    const auto memory = parse_memory(parser.get("memory"));
    const auto scheme = parse_placement(parser.get("placement"));
    const auto scheduler =
        runtime::parse_scheduler_kind(to_lower(parser.get("scheduler")));
    const auto router =
        gateway::parse_router_policy(to_lower(parser.get("router")));
    for (const Status &s :
         {model_config.status(), memory.status(), scheme.status(),
          scheduler.status(), router.status()}) {
        if (!s.is_ok()) {
            std::cerr << s.to_string() << "\n";
            return 2;
        }
    }

    runtime::ServingSpec base;
    base.model = *model_config;
    base.memory = *memory;
    base.placement = *scheme;
    base.compress_weights = parser.is_set("int4");
    base.micro_batches = parser.get_u64("micro-batches");
    // Size the planner for the worst admissible turn: admission caps
    // the context-grown, block-rounded prompt at --max-context, so the
    // auto batch ceiling must leave KV room for that, not just for the
    // first-turn prompt.
    base.shape.prompt_tokens = std::max(parser.get_u64("prompt-tokens"),
                                        parser.get_u64("max-context"));
    base.shape.output_tokens = parser.get_u64("output-tokens");

    runtime::ServingConfig backend_config;
    backend_config.scheduler = *scheduler;
    backend_config.auto_max_batch = parser.get_u64("max-batch") == 0;
    backend_config.max_batch = parser.get_u64("max-batch");
    // The gateway pre-forms dispatch windows and sheds load itself:
    // backends dispatch greedily and never reject on queue depth.
    backend_config.max_queue_delay = 0.0;
    backend_config.max_queue_length = 1u << 20;

    const std::uint64_t replica_count =
        std::max<std::uint64_t>(1, parser.get_u64("replicas"));
    std::deque<runtime::Server> servers;
    std::vector<runtime::ServingBackend *> backends;
    for (std::uint64_t r = 0; r < replica_count; ++r) {
        auto created = runtime::Server::create(base, backend_config);
        if (!created.is_ok()) {
            std::cerr << "invalid serving spec: "
                      << created.status().to_string() << "\n";
            return 2;
        }
        servers.push_back(std::move(*created));
        backends.push_back(&servers.back());
    }

    gateway::GatewayConfig gateway_config;
    gateway_config.admission.accept_queue =
        parser.get_u64("accept-queue");
    gateway_config.admission.max_sessions =
        parser.get_u64("max-sessions");
    gateway_config.admission.max_context = parser.get_u64("max-context");
    gateway_config.admission.context_block =
        parser.get_u64("context-block");
    gateway_config.router = *router;
    gateway_config.dispatch_batch = parser.get_u64("dispatch-batch");
    gateway_config.per_token_stream = !parser.is_set("coalesce-tokens");
    const Status gateway_valid = gateway_config.validate();
    if (!gateway_valid.is_ok()) {
        std::cerr << gateway_valid.to_string() << "\n";
        return 2;
    }

    gateway::DriverConfig driver_config;
    driver_config.clients = parser.get_u64("clients");
    driver_config.target_requests = parser.get_u64("requests");
    driver_config.turns_per_session = parser.get_u64("turns");
    driver_config.mean_think = parser.get_double("think-ms") * 1e-3;
    driver_config.prompt_tokens = parser.get_u64("prompt-tokens");
    driver_config.output_tokens = parser.get_u64("output-tokens");
    driver_config.seed = parser.get_u64("seed");

    sim::Simulator sim;
    gateway::Gateway gate(sim, gateway_config, backends);
    std::optional<tracing::Tracer> tracer = tracer_from_flags(parser);
    std::optional<telemetry::ServingMonitor> monitor;
    if (parser.is_set("alerts"))
        monitor.emplace(telemetry::MonitorConfig{});
    if (tracer.has_value() || monitor.has_value()) {
        gateway::GatewayObservability obs;
        obs.tracer = tracer.has_value() ? &*tracer : nullptr;
        obs.monitor = monitor.has_value() ? &*monitor : nullptr;
        gate.set_observability(obs);
    }
    const auto report =
        gateway::run_closed_loop(sim, gate, driver_config);
    if (!report.is_ok()) {
        std::cerr << "gateway run failed: "
                  << report.status().to_string() << "\n";
        return 1;
    }

    const gateway::GatewayStats &stats = gate.stats();
    AsciiTable table("Gateway results");
    table.set_header({"metric", "value"});
    table.align_right_from(1);
    table.add_row({"replicas", std::to_string(replica_count)});
    table.add_row({"clients", std::to_string(report->clients)});
    table.add_row({"sessions opened",
                   std::to_string(gate.sessions().opened_total())});
    table.add_row({"turns completed",
                   std::to_string(report->completed) + " / " +
                       std::to_string(report->target_requests)});
    table.add_row({"turns shed", std::to_string(stats.turns_shed)});
    table.add_row({"retries", std::to_string(report->retries)});
    table.add_row(
        {"dispatch windows", std::to_string(stats.dispatch_windows)});
    table.add_row({"tokens delivered",
                   std::to_string(stats.tokens_delivered)});
    table.add_row({"TTFT p50 / p99",
                   format_seconds(percentile_nearest_rank(
                       report->ttft, 50.0)) +
                       " / " +
                       format_seconds(percentile_nearest_rank(
                           report->ttft, 99.0))});
    table.add_row({"TBT p50", format_seconds(percentile_nearest_rank(
                                  report->tbt, 50.0))});
    table.add_row({"E2E p50 / p99",
                   format_seconds(percentile_nearest_rank(
                       report->e2e, 50.0)) +
                       " / " +
                       format_seconds(percentile_nearest_rank(
                           report->e2e, 99.0))});
    table.add_row({"queue wait p95",
                   format_seconds(percentile_nearest_rank(
                       report->queue_wait, 95.0))});
    table.add_row({"sim makespan", format_seconds(report->sim_makespan)});
    table.add_row(
        {"DES events", std::to_string(report->events_executed)});
    table.add_row({"events/s (host)",
                   format_fixed(report->events_per_second / 1e6, 2) +
                       "M"});
    table.add_row({"requests/s (host)",
                   format_fixed(report->requests_per_second, 0)});
    table.print(std::cout);

    for (std::size_t i = 0; i < gateway::kRejectReasonCount; ++i) {
        const std::uint64_t count = gate.admission().rejects()[i];
        if (count > 0)
            std::cout << "shed[" << gateway::reject_reason_name(
                             static_cast<gateway::RejectReason>(i))
                      << "]: " << count << "\n";
    }

    telemetry::MetricsRegistry registry;
    gateway::record_gateway(registry, gate, *report);
    if (monitor.has_value()) {
        monitor->finish(report->sim_makespan);
        monitor->record(registry);
    }
    if (tracer.has_value())
        tracer->record(registry);
    if (monitor.has_value() || tracer.has_value()) {
        // Only the new observability sections match gateway families,
        // so unobserved stdout is untouched.
        telemetry::print_run_report(std::cout, registry);
    }
    if (tracer.has_value()) {
        const int dumped = emit_trace_dump(parser, *tracer);
        if (dumped != 0)
            return dumped;
    }
    const int artifacts = emit_artifacts(parser, registry);
    if (artifacts != 0)
        return artifacts;
    if (report->completed < report->target_requests) {
        std::cerr << "gateway run fell short of the target: "
                  << report->completed << " < "
                  << report->target_requests
                  << " (attempt budget exhausted)\n";
        return 1;
    }
    return 0;
}

void
usage()
{
    std::cout
        << "helmsim — out-of-core LLM inference on heterogeneous "
           "host memory (IISWC'25 reproduction)\n\n"
           "subcommands:\n"
           "  run       simulate one serving configuration\n"
           "  serve     request-level serving: arrival stream through "
           "the FCFS scheduler\n"
           "  cluster   multi-GPU serving over shared host memory "
           "(replica | pipeline | tensor)\n"
           "  gateway   closed-loop client gateway: sessions, "
           "streaming, admission, routing across replicas\n"
           "  sweep     cartesian parameter sweep with pivot tables\n"
           "  tune      QoS auto-tuner\n"
           "  zoo       cost/latency Pareto frontier across the "
           "backend zoo\n"
           "  membench  copy bandwidth sweep (Fig. 3)\n"
           "  models    list the model registry\n"
           "  configs   list memory configurations\n"
           "  devices   list the backend-zoo device registry\n\n"
           "`helmsim <subcommand> --help` for options.\n";
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        usage();
        return 2;
    }
    const std::string command = argv[1];
    std::vector<std::string> rest;
    for (int i = 2; i < argc; ++i)
        rest.emplace_back(argv[i]);

    if (command == "run")
        return cmd_run(rest);
    if (command == "sweep")
        return cmd_sweep(rest);
    if (command == "serve")
        return cmd_serve(rest);
    if (command == "cluster")
        return cmd_cluster(rest);
    if (command == "gateway")
        return cmd_gateway(rest);
    if (command == "tune")
        return cmd_tune(rest);
    if (command == "zoo")
        return cmd_zoo(rest);
    if (command == "membench")
        return cmd_membench(rest);
    if (command == "models")
        return cmd_models();
    if (command == "configs")
        return cmd_configs();
    if (command == "devices")
        return cmd_devices();
    if (command == "--help" || command == "help") {
        usage();
        return 0;
    }
    std::cerr << "unknown subcommand: " << command << "\n\n";
    usage();
    return 2;
}
