#!/usr/bin/env python3
"""Validate a helm bench JSON artifact, dispatching on its ``schema``.

Standard library only — this is the CI gate for the bench artifacts,
so it must run anywhere python3 does.

Supported schemas:

helm-bench-parallel-v1 (bench_wall)
  * ``jobs`` and the sweep/tune/simcache sections are present with
    every required field a finite number of the right sign;
  * ``sweep.identical`` and ``tune.identical`` are ``true`` — the
    parallel run must be byte-identical to the sequential run.
  The measured speedups are recorded, NOT gated: they depend on the
  runner's core count (a 1-core machine legitimately reports ~1.0).
  ``--min-speedup X`` turns the sweep speedup into a gate for runners
  with known parallelism.

helm-bench-core-v1 (bench_core)
  * ``queue.identical`` is ``true`` — the two-tier slab kernel must
    fire the exact same event trace as the legacy priority_queue
    kernel on the session-timer workload;
  * queue/gateway numbers are present, finite, and non-negative, and
    ``gateway.requests_completed`` is at least 1.
  The measured speedup and events/sec are recorded, NOT gated, by
  default (they depend on the runner).  ``--min-speedup X`` gates
  ``queue.speedup`` and ``--min-events-per-sec X`` gates
  ``queue.indexed_events_per_s`` for runners with known performance.

helm-bench-scheduler-v1 (bench_scheduler)
  * ``fcfs_identity.identical`` is ``true`` — the single-GPU Server
    and the 1-GPU replica ClusterServer (which documents wholesale
    delegation) must produce byte-identical FCFS reports;
  * ``bursty`` carries fcfs/continuous/edf sections with finite
    goodput/p99-TTFT numbers, and edf goodput exceeds fcfs goodput on
    the bursty multi-tenant mix;
  * ``preemption`` shows at least one preemption with matching
    nonzero demoted/promoted KV byte counts and resumes ==
    preemptions — every swapped-out request came back.

helm-bench-pareto-v1 (bench_pareto)
  * ``jobs_identical`` is true — the frontier must be byte-identical
    between --jobs 1 and --jobs N;
  * the ``on_frontier`` marks are re-derived from ``points``: every
    marked point must be non-dominated on (cost_per_mtok, tbt_s) among
    the ok+feasible points, and ``frontier_size`` must match;
  * ``anchor`` ran and is ``identical`` — the zoo's NVDRAM entry
    reproduces the legacy configuration path exactly;
  * ``ndp_vs_dram`` is valid with ``ndp_dominates`` true — near-data
    decode strictly beats the All-CPU DRAM point on TBT;
  * ``hbf_exclusive`` ran with ``only_hbf`` true — the giant model is
    admitted by exactly one device, the flash tier.

helm-bench-engine-v1 (bench_engine)
  * ``serve.identical`` is ``true`` — replaying the memoized OPT-175B
    All-CPU run must serialize byte-identically to simulating it;
  * ``gateway.report_identical``, ``gateway.metrics_identical``, and
    ``gateway.trace_identical`` are all ``true`` — the cached-stream
    fast-forward must reproduce the driver report (every latency
    sample), the metrics snapshot, and the chrome-trace bit for bit;
  * serve/gateway walls and throughput numbers are present and finite.
  The measured speedups are recorded, NOT gated, by default (they
  depend on the runner).  ``--min-speedup X`` gates
  ``gateway.speedup`` for runners with known performance.

helm-bench-trace-v1 (bench_trace)
  * ``identity.report_identical`` and ``identity.metrics_identical``
    are true — with the tracer and monitor attached (recording into a
    side registry) the serve report text and metrics artifact are
    byte-identical to the plain run;
  * ``overhead.overhead_ratio`` is below the ceiling (default 0.05,
    ``--max-overhead X`` overrides) — synthesizing spans for a
    closed-loop gateway drive costs < 5 % wall time;
  * ``recorder`` held the memory bound under a drive much larger than
    its capacity: ``retained <= capacity_traces``,
    ``retained_spans <= retained * capacity_spans_per_trace``, and
    every retained span tree passed validate_trace (``validated``).

Exit status 0 when the document passes, 1 otherwise (one message per
problem on stderr).

Usage:
  python3 tools/check_bench.py BENCH_parallel.json
  python3 tools/check_bench.py BENCH_parallel.json --min-speedup 3.0
  python3 tools/check_bench.py BENCH_scheduler.json
  python3 tools/check_bench.py BENCH_trace.json --max-overhead 0.05
"""

import argparse
import json
import math
import sys

PARALLEL_NUMBERS = {
    "sweep": ("points", "seq_seconds", "par_seconds", "points_per_s_seq",
              "points_per_s_par", "speedup"),
    "tune": ("candidates", "seq_seconds", "par_seconds", "speedup"),
    "simcache": ("hits", "misses", "hit_rate"),
}

CORE_NUMBERS = {
    "queue": ("outstanding", "events", "baseline_events_per_s",
              "indexed_events_per_s", "speedup"),
    "gateway": ("requests_completed", "requests_shed", "requests_per_s",
                "events_per_s"),
}

SCHEDULER_NUMBERS = {
    "bursty.fcfs": ("goodput_tps", "p99_ttft_s", "slo_attainment",
                    "deadline_misses", "preemptions"),
    "bursty.continuous": ("goodput_tps", "p99_ttft_s", "slo_attainment",
                          "deadline_misses", "preemptions"),
    "bursty.edf": ("goodput_tps", "p99_ttft_s", "slo_attainment",
                   "deadline_misses", "preemptions"),
    "preemption": ("preemptions", "resumes", "kv_demoted_bytes",
                   "kv_promoted_bytes", "kv_swap_exposed_seconds",
                   "deadline_misses"),
}


def is_finite_number(value):
    return (isinstance(value, (int, float)) and
            not isinstance(value, bool) and math.isfinite(value))


def lookup(doc, dotted):
    body = doc
    for part in dotted.split("."):
        if not isinstance(body, dict):
            return None
        body = body.get(part)
    return body


def check_numbers(doc, required, errors):
    for section, keys in required.items():
        body = lookup(doc, section)
        if not isinstance(body, dict):
            errors.append("missing section %r" % section)
            continue
        for key in keys:
            value = body.get(key)
            if not is_finite_number(value):
                errors.append("%s.%s: expected a finite number, got %r" %
                              (section, key, value))
            elif value < 0:
                errors.append("%s.%s: negative value %r" %
                              (section, key, value))


def check_parallel(doc, args, errors):
    if not is_finite_number(doc.get("jobs")) or doc.get("jobs", 0) < 1:
        errors.append("jobs: expected a number >= 1, got %r" %
                      doc.get("jobs"))
    check_numbers(doc, PARALLEL_NUMBERS, errors)
    for section in ("sweep", "tune"):
        body = doc.get(section)
        if isinstance(body, dict) and body.get("identical") is not True:
            errors.append(
                "%s.identical is %r: parallel output must be "
                "byte-identical to the sequential run" %
                (section, body.get("identical")))
    if not errors and args.min_speedup > 0.0:
        speedup = doc["sweep"]["speedup"]
        if speedup < args.min_speedup:
            errors.append("sweep.speedup %.3f < required %.3f" %
                          (speedup, args.min_speedup))
    if not errors:
        sweep = doc["sweep"]
        print("ok: %d points, sweep x%.2f, tune x%.2f, hit rate %.2f "
              "(jobs=%d)" % (sweep["points"], sweep["speedup"],
                             doc["tune"]["speedup"],
                             doc["simcache"]["hit_rate"], doc["jobs"]))


def check_core(doc, args, errors):
    queue = doc.get("queue")
    if not isinstance(queue, dict) or queue.get("identical") is not True:
        errors.append(
            "queue.identical must be true: the two-tier kernel's fire "
            "trace diverged from the legacy priority_queue kernel")
    check_numbers(doc, CORE_NUMBERS, errors)
    if errors:
        return
    if doc["gateway"]["requests_completed"] < 1:
        errors.append("gateway.requests_completed must be >= 1")
    if args.min_speedup > 0.0 and \
            doc["queue"]["speedup"] < args.min_speedup:
        errors.append("queue.speedup %.3f < required %.3f" %
                      (doc["queue"]["speedup"], args.min_speedup))
    if args.min_events_per_sec > 0.0 and \
            doc["queue"]["indexed_events_per_s"] < \
            args.min_events_per_sec:
        errors.append(
            "queue.indexed_events_per_s %.0f < required %.0f" %
            (doc["queue"]["indexed_events_per_s"],
             args.min_events_per_sec))
    if not errors:
        print("ok: identical over %d events at %d outstanding, "
              "queue x%.2f (%.2fM events/s), gateway %d requests "
              "(%.0f requests/s)" %
              (doc["queue"]["events"], doc["queue"]["outstanding"],
               doc["queue"]["speedup"],
               doc["queue"]["indexed_events_per_s"] / 1e6,
               doc["gateway"]["requests_completed"],
               doc["gateway"]["requests_per_s"]))


def check_scheduler(doc, _args, errors):
    identity = doc.get("fcfs_identity")
    if not isinstance(identity, dict) or identity.get("identical") \
            is not True:
        errors.append(
            "fcfs_identity.identical must be true: the 1-GPU replica "
            "ClusterServer diverged from the single-GPU Server on the "
            "same FCFS stream")
    check_numbers(doc, SCHEDULER_NUMBERS, errors)
    if errors:
        return
    fcfs = doc["bursty"]["fcfs"]
    edf = doc["bursty"]["edf"]
    if not edf["goodput_tps"] > fcfs["goodput_tps"]:
        errors.append(
            "bursty: edf goodput %.3f must exceed fcfs goodput %.3f" %
            (edf["goodput_tps"], fcfs["goodput_tps"]))
    preemption = doc["preemption"]
    if preemption["preemptions"] < 1:
        errors.append("preemption.preemptions must be >= 1")
    if preemption["resumes"] != preemption["preemptions"]:
        errors.append(
            "preemption: resumes %r != preemptions %r — a swapped-out "
            "request never came back" %
            (preemption["resumes"], preemption["preemptions"]))
    if preemption["kv_demoted_bytes"] <= 0 or \
            preemption["kv_demoted_bytes"] != \
            preemption["kv_promoted_bytes"]:
        errors.append(
            "preemption: demoted bytes %r must be positive and equal "
            "promoted bytes %r" % (preemption["kv_demoted_bytes"],
                                   preemption["kv_promoted_bytes"]))
    if not errors:
        print("ok: fcfs identical over %s requests, edf goodput %.2f > "
              "fcfs %.2f tok/s, %d preemptions (%d bytes swapped each "
              "way)" % (doc["fcfs_identity"].get("requests", "?"),
                        edf["goodput_tps"], fcfs["goodput_tps"],
                        preemption["preemptions"],
                        preemption["kv_demoted_bytes"]))


PARETO_POINT_KEYS = ("device", "placement", "site", "batch", "ok",
                     "feasible", "ttft_s", "tbt_s", "tokens_per_s",
                     "system_dollars", "cost_per_mtok", "ndp_steps",
                     "on_frontier")

PARETO_NUMBERS = {
    "anchor": ("legacy_ttft_s", "legacy_tbt_s", "legacy_tokens_per_s",
               "zoo_ttft_s", "zoo_tbt_s", "zoo_tokens_per_s"),
    "ndp_vs_dram": ("batch", "dram_tbt_s", "ndp_tbt_s"),
    "hbf_exclusive": ("weight_bytes", "admitting", "devices", "tbt_s",
                      "tokens_per_s", "endurance_budget_bytes",
                      "installs_supported"),
}


def is_set(value):
    """bench_pareto writes booleans as 0/1 numbers."""
    return value is True or value == 1


def check_pareto(doc, _args, errors):
    points = doc.get("points")
    if not isinstance(points, list) or not points:
        errors.append("points: expected a non-empty list")
        return
    for i, point in enumerate(points):
        for key in PARETO_POINT_KEYS:
            if key not in point:
                errors.append("points[%d]: missing key %r" % (i, key))
    check_numbers(doc, PARETO_NUMBERS, errors)
    if errors:
        return

    # Re-derive the frontier: a marked point must be non-dominated on
    # (cost_per_mtok, tbt_s) among the ok+feasible points.
    usable = [p for p in points
              if is_set(p["ok"]) and is_set(p["feasible"])]
    marked = 0
    for p in points:
        if not is_set(p["on_frontier"]):
            continue
        marked += 1
        if p not in usable:
            errors.append("frontier point %s/%s b=%s is not ok+feasible"
                          % (p["device"], p["placement"], p["batch"]))
            continue
        for q in usable:
            if q is p:
                continue
            if (q["cost_per_mtok"] <= p["cost_per_mtok"] and
                    q["tbt_s"] <= p["tbt_s"] and
                    (q["cost_per_mtok"] < p["cost_per_mtok"] or
                     q["tbt_s"] < p["tbt_s"])):
                errors.append(
                    "frontier point %s/%s b=%s is dominated by "
                    "%s/%s b=%s" %
                    (p["device"], p["placement"], p["batch"],
                     q["device"], q["placement"], q["batch"]))
    if marked < 1:
        errors.append("frontier is empty")
    if marked != doc.get("frontier_size"):
        errors.append("frontier_size %r != %d marked points" %
                      (doc.get("frontier_size"), marked))

    anchor = doc["anchor"]
    if not is_set(anchor.get("ran")) or not is_set(anchor.get("identical")):
        errors.append(
            "anchor: the zoo's NVDRAM entry must reproduce the legacy "
            "configuration path exactly (ran=%r identical=%r)" %
            (anchor.get("ran"), anchor.get("identical")))
    ndp = doc["ndp_vs_dram"]
    if not is_set(ndp.get("valid")) or not is_set(ndp.get("ndp_dominates")):
        errors.append(
            "ndp_vs_dram: near-data decode must strictly beat the "
            "All-CPU DRAM point on TBT (valid=%r dominates=%r)" %
            (ndp.get("valid"), ndp.get("ndp_dominates")))
    elif not ndp["ndp_tbt_s"] < ndp["dram_tbt_s"]:
        errors.append("ndp_vs_dram: ndp_tbt_s %r is not below "
                      "dram_tbt_s %r" %
                      (ndp["ndp_tbt_s"], ndp["dram_tbt_s"]))
    hbf = doc["hbf_exclusive"]
    if not is_set(hbf.get("ran")) or not is_set(hbf.get("only_hbf")):
        errors.append(
            "hbf_exclusive: the giant model must be admitted by the "
            "flash tier alone (ran=%r only_hbf=%r)" %
            (hbf.get("ran"), hbf.get("only_hbf")))
    elif hbf["admitting"] != 1:
        errors.append("hbf_exclusive: admitting %r != 1" %
                      hbf["admitting"])
    if not is_set(doc.get("jobs_identical")):
        errors.append(
            "jobs_identical is %r: the frontier must be byte-identical "
            "between --jobs 1 and --jobs N" % doc.get("jobs_identical"))
    if not errors:
        print("ok: %d points, frontier %d, anchor identical, NDP TBT "
              "%.3fs < DRAM %.3fs, HBF sole fit for %s (%d/%d devices)"
              % (len(points), marked, ndp["ndp_tbt_s"],
                 ndp["dram_tbt_s"], hbf.get("model", "?"),
                 hbf["admitting"], hbf["devices"]))


TRACE_NUMBERS = {
    "identity": ("requests",),
    "overhead": ("requests", "plain_seconds", "traced_seconds",
                 "overhead_ratio", "traces_seen"),
    "recorder": ("requests", "traces_seen", "spans_seen", "retained",
                 "retained_spans", "capacity_traces",
                 "capacity_spans_per_trace", "evicted"),
}


def check_trace(doc, args, errors):
    check_numbers(doc, TRACE_NUMBERS, errors)
    identity = doc.get("identity")
    if isinstance(identity, dict):
        for key in ("report_identical", "metrics_identical"):
            if not is_set(identity.get(key)):
                errors.append(
                    "identity.%s is %r: attaching the tracer/monitor "
                    "must leave the report and metrics byte-identical"
                    % (key, identity.get(key)))
    recorder = doc.get("recorder")
    if isinstance(recorder, dict) and not errors:
        if recorder["retained"] > recorder["capacity_traces"]:
            errors.append(
                "recorder: retained %r exceeds capacity_traces %r — "
                "the flight-recorder bound did not hold" %
                (recorder["retained"], recorder["capacity_traces"]))
        bound = recorder["retained"] * \
            recorder["capacity_spans_per_trace"]
        if recorder["retained_spans"] > bound:
            errors.append(
                "recorder: retained_spans %r exceeds retained x "
                "spans-per-trace bound %r" %
                (recorder["retained_spans"], bound))
        if recorder["traces_seen"] <= recorder["capacity_traces"]:
            errors.append(
                "recorder: traces_seen %r must exceed capacity_traces "
                "%r for the bound to be exercised" %
                (recorder["traces_seen"], recorder["capacity_traces"]))
        if not is_set(recorder.get("validated")):
            errors.append(
                "recorder.validated is %r: every retained span tree "
                "must pass validate_trace" % recorder.get("validated"))
    if not errors:
        ratio = doc["overhead"]["overhead_ratio"]
        if ratio >= args.max_overhead:
            errors.append(
                "overhead.overhead_ratio %.4f >= allowed %.4f" %
                (ratio, args.max_overhead))
    if not errors:
        print("ok: identical with observers attached over %d requests, "
              "overhead %.2f%% over %d requests, recorder %d/%d traces "
              "(%d spans) from %d seen" %
              (doc["identity"]["requests"],
               100.0 * doc["overhead"]["overhead_ratio"],
               doc["overhead"]["requests"], recorder["retained"],
               recorder["capacity_traces"], recorder["retained_spans"],
               recorder["traces_seen"]))


ENGINE_NUMBERS = {
    "serve": ("batch", "speedup"),
    "serve.off_wall": ("min_seconds", "median_seconds", "runs"),
    "serve.on_wall": ("min_seconds", "median_seconds", "runs"),
    "gateway": ("requests", "completed", "off_events", "on_events",
                "off_events_per_s", "on_events_per_s", "requests_per_s",
                "speedup"),
    "gateway.off_wall": ("min_seconds", "median_seconds", "runs"),
    "gateway.on_wall": ("min_seconds", "median_seconds", "runs"),
}


def check_engine(doc, args, errors):
    check_numbers(doc, ENGINE_NUMBERS, errors)
    serve = doc.get("serve")
    if isinstance(serve, dict) and not is_set(serve.get("identical")):
        errors.append(
            "serve.identical is %r: replaying the memoized run must "
            "serialize byte-identically to simulating it" %
            serve.get("identical"))
    gateway = doc.get("gateway")
    if isinstance(gateway, dict):
        for key in ("report_identical", "metrics_identical",
                    "trace_identical"):
            if not is_set(gateway.get(key)):
                errors.append(
                    "gateway.%s is %r: the cached-stream fast-forward "
                    "must reproduce the artifact bit for bit" %
                    (key, gateway.get(key)))
    if errors:
        return
    if gateway["completed"] < 1:
        errors.append("gateway.completed must be >= 1")
    if args.min_speedup > 0.0 and \
            gateway["speedup"] < args.min_speedup:
        errors.append("gateway.speedup %.3f < required %.3f" %
                      (gateway["speedup"], args.min_speedup))
    if not errors:
        print("ok: serve x%.1f identical, gateway %d turns x%.2f "
              "(%.2fM events/s cached vs %.2fM uncached), artifacts "
              "identical" %
              (serve["speedup"], gateway["completed"],
               gateway["speedup"], gateway["on_events_per_s"] / 1e6,
               gateway["off_events_per_s"] / 1e6))


CHECKERS = {
    "helm-bench-parallel-v1": check_parallel,
    "helm-bench-core-v1": check_core,
    "helm-bench-scheduler-v1": check_scheduler,
    "helm-bench-pareto-v1": check_pareto,
    "helm-bench-trace-v1": check_trace,
    "helm-bench-engine-v1": check_engine,
}


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("path", help="bench JSON document to validate")
    parser.add_argument("--min-speedup", type=float, default=0.0,
                        help="parallel-v1: gate sweep.speedup; core-v1: "
                             "gate queue.speedup (default: record only)")
    parser.add_argument("--min-events-per-sec", type=float, default=0.0,
                        help="core-v1 only: also gate "
                             "queue.indexed_events_per_s >= this value "
                             "(default: record only)")
    parser.add_argument("--max-overhead", type=float, default=0.05,
                        help="trace-v1 only: ceiling for "
                             "overhead.overhead_ratio (default: 0.05)")
    args = parser.parse_args()

    try:
        with open(args.path) as handle:
            doc = json.load(handle)
    except (OSError, ValueError) as error:
        print("%s: %s" % (args.path, error), file=sys.stderr)
        return 1

    errors = []
    checker = CHECKERS.get(doc.get("schema"))
    if checker is None:
        errors.append("schema is %r, expected one of %s" %
                      (doc.get("schema"), sorted(CHECKERS)))
    else:
        checker(doc, args, errors)

    for message in errors:
        print("%s: %s" % (args.path, message), file=sys.stderr)
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
