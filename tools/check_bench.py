#!/usr/bin/env python3
"""Validate a helm-bench-parallel-v1 JSON document (bench_wall).

Standard library only — this is the CI gate for the parallel-engine
bench artifact, so it must run anywhere python3 does.

Gating checks:
  * the document parses and carries ``"schema": "helm-bench-parallel-v1"``;
  * ``jobs`` and the sweep/tune/simcache sections are present with
    every required field a finite number of the right sign;
  * ``sweep.identical`` and ``tune.identical`` are ``true`` — the
    parallel run must be byte-identical to the sequential run.

The measured speedups are recorded, NOT gated: they depend on the
runner's core count (a 1-core machine legitimately reports ~1.0).
``--min-speedup X`` turns the sweep speedup into a gate for runners
with known parallelism.

Exit status 0 when the document passes, 1 otherwise (one message per
problem on stderr).

Usage:
  python3 tools/check_bench.py BENCH_parallel.json
  python3 tools/check_bench.py BENCH_parallel.json --min-speedup 3.0
"""

import argparse
import json
import math
import sys

REQUIRED_NUMBERS = {
    "sweep": ("points", "seq_seconds", "par_seconds", "points_per_s_seq",
              "points_per_s_par", "speedup"),
    "tune": ("candidates", "seq_seconds", "par_seconds", "speedup"),
    "simcache": ("hits", "misses", "hit_rate"),
}


def is_finite_number(value):
    return (isinstance(value, (int, float)) and
            not isinstance(value, bool) and math.isfinite(value))


def check_section(doc, section, errors):
    body = doc.get(section)
    if not isinstance(body, dict):
        errors.append("missing section %r" % section)
        return
    for key in REQUIRED_NUMBERS[section]:
        value = body.get(key)
        if not is_finite_number(value):
            errors.append("%s.%s: expected a finite number, got %r" %
                          (section, key, value))
        elif value < 0:
            errors.append("%s.%s: negative value %r" %
                          (section, key, value))
    if section in ("sweep", "tune") and body.get("identical") is not True:
        errors.append(
            "%s.identical is %r: parallel output must be byte-identical "
            "to the sequential run" % (section, body.get("identical")))


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("path", help="BENCH_parallel.json to validate")
    parser.add_argument("--min-speedup", type=float, default=0.0,
                        help="also gate sweep.speedup >= this value "
                             "(default: record only)")
    args = parser.parse_args()

    try:
        with open(args.path) as handle:
            doc = json.load(handle)
    except (OSError, ValueError) as error:
        print("%s: %s" % (args.path, error), file=sys.stderr)
        return 1

    errors = []
    if doc.get("schema") != "helm-bench-parallel-v1":
        errors.append("schema is %r, expected 'helm-bench-parallel-v1'" %
                      doc.get("schema"))
    if not is_finite_number(doc.get("jobs")) or doc.get("jobs", 0) < 1:
        errors.append("jobs: expected a number >= 1, got %r" %
                      doc.get("jobs"))
    for section in REQUIRED_NUMBERS:
        check_section(doc, section, errors)

    if not errors and args.min_speedup > 0.0:
        speedup = doc["sweep"]["speedup"]
        if speedup < args.min_speedup:
            errors.append("sweep.speedup %.3f < required %.3f" %
                          (speedup, args.min_speedup))

    for message in errors:
        print("%s: %s" % (args.path, message), file=sys.stderr)
    if not errors:
        sweep = doc["sweep"]
        print("ok: %d points, sweep x%.2f, tune x%.2f, hit rate %.2f "
              "(jobs=%d)" % (sweep["points"], sweep["speedup"],
                             doc["tune"]["speedup"],
                             doc["simcache"]["hit_rate"], doc["jobs"]))
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
